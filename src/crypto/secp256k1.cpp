#include "crypto/secp256k1.hpp"

#include <algorithm>
#include <string>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "crypto/hmac.hpp"

namespace dlt::crypto::secp256k1 {

namespace {

// Curve constants are function-local statics (initialized on first use) so
// other translation units' dynamic initializers can safely call into this
// module — a namespace-scope constant here would be subject to the static
// initialization order fiasco.

// p = 2^256 - 2^32 - 977
const U256& P() {
    static const U256 v = U256::from_hex(std::string(48, 'f') + "fffffffefffffc2f");
    return v;
}

// n = group order
const U256& N() {
    static const U256 v =
        U256::from_hex(std::string(31, 'f') + "ebaaedce6af48a03bbfd25e8cd0364141");
    return v;
}

// 2^256 mod p = 2^32 + 977
constexpr std::uint64_t kPComplement = 0x1000003D1ull;

const U256& Gx() {
    static const U256 v = U256::from_hex(
        "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
    return v;
}

const U256& Gy() {
    static const U256 v = U256::from_hex(
        "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");
    return v;
}

/// Reduce a value known to be < 2p into [0, p).
U256 fe_normalize(const U256& a) { return a >= P() ? a - P() : a; }

} // namespace

const U256& field_prime() { return P(); }
const U256& group_order() { return N(); }

U256 fe_add(const U256& a, const U256& b) {
    bool carry = false;
    U256 sum = a.add(b, &carry);
    if (carry) {
        // sum_actual = 2^256 + sum ≡ sum + kPComplement (mod p)
        bool c2 = false;
        sum = sum.add(U256(kPComplement), &c2);
        // a,b < p < 2^256 - 2^32 - 976 so no second carry is possible here.
    }
    return fe_normalize(sum);
}

U256 fe_sub(const U256& a, const U256& b) {
    if (a >= b) return a - b;
    return a + (P() - b);
}

U256 fe_mul(const U256& a, const U256& b) {
    const U256::Wide prod = a.mul_wide(b);
    // prod = hi*2^256 + lo ≡ hi*(2^32+977) + lo (mod p). hi*(2^32+977) fits in
    // 256+34 bits; fold the overflow once more.
    std::uint64_t carry1 = 0;
    U256 folded = prod.hi.mul_u64(kPComplement, &carry1);
    bool carry2 = false;
    U256 acc = folded.add(prod.lo, &carry2);
    std::uint64_t overflow = carry1 + (carry2 ? 1 : 0);
    while (overflow != 0) {
        // overflow*2^256 ≡ overflow*(2^32+977); overflow ≤ 2^34 so this terminates
        // after one iteration in practice.
        const U256::Wide fold2 = U256(overflow).mul_wide(U256(kPComplement));
        bool c = false;
        acc = acc.add(fold2.lo, &c);
        overflow = (c ? 1 : 0) + fold2.hi.low64();
    }
    while (acc >= P()) acc = acc - P();
    return acc;
}

U256 fe_sqr(const U256& a) { return fe_mul(a, a); }

namespace {
U256 fe_pow(const U256& base, const U256& exp) {
    U256 result = U256::one();
    U256 acc = fe_normalize(base);
    const int top = exp.highest_bit();
    for (int i = 0; i <= top; ++i) {
        if (exp.bit(static_cast<unsigned>(i))) result = fe_mul(result, acc);
        acc = fe_sqr(acc);
    }
    return result;
}
} // namespace

U256 fe_inv(const U256& a) {
    DLT_EXPECTS(!(a % P()).is_zero());
    return fe_pow(a, P() - U256(2));
}

std::optional<U256> fe_sqrt(const U256& a) {
    // p ≡ 3 (mod 4): candidate = a^((p+1)/4).
    const U256 exp = (P() + U256::one()) >> 2;
    const U256 candidate = fe_pow(a, exp);
    if (fe_sqr(candidate) != fe_normalize(a)) return std::nullopt;
    return candidate;
}

namespace {
// d = 2^256 - n (fits well under 2^129), the special form that lets us reduce
// 512-bit products mod n with three folds instead of bit-by-bit division.
const U256& NComplement() {
    static const U256 v = (U256::max() - N()) + U256::one();
    return v;
}

/// Reduce hi*2^256 + lo mod n using hi*2^256 ≡ hi*d (mod n).
U256 sc_reduce_wide(const U256::Wide& p) {
    // Fold 1: hi*d is at most ~385 bits.
    const U256::Wide f1 = p.hi.mul_wide(NComplement());
    bool c1 = false;
    U256 acc = p.lo.add(f1.lo, &c1);
    U256 rem = f1.hi + (c1 ? U256::one() : U256::zero()); // < 2^130

    // Fold 2: rem*d is at most ~259 bits.
    const U256::Wide f2 = rem.mul_wide(NComplement());
    bool c2 = false;
    acc = acc.add(f2.lo, &c2);
    rem = f2.hi + (c2 ? U256::one() : U256::zero()); // tiny

    // Fold 3: rem*d now fits comfortably in 256 bits.
    bool c3 = false;
    acc = acc.add(rem.mul_wide(NComplement()).lo, &c3);
    if (c3) acc = acc + NComplement(); // acc wrapped: add 2^256 mod n once more
    while (acc >= N()) acc = acc - N();
    return acc;
}
} // namespace

U256 sc_reduce(const U256& a) { return a >= N() ? a - N() : a; }

U256 sc_add(const U256& a, const U256& b) {
    bool carry = false;
    U256 sum = a.add(b, &carry);
    if (carry) {
        // actual = 2^256 + sum; 2^256 mod n = 2^256 - n.
        sum = sum.add(U256::max() - N() + U256::one(), nullptr);
    }
    return sum % N();
}

U256 sc_mul(const U256& a, const U256& b) { return sc_reduce_wide(a.mul_wide(b)); }

U256 sc_inv(const U256& a) {
    DLT_EXPECTS(!sc_reduce(a).is_zero());
    // Fermat: a^(n-2) mod n.
    U256 result = U256::one();
    U256 acc = sc_reduce(a);
    const U256 exp = N() - U256(2);
    const int top = exp.highest_bit();
    for (int i = 0; i <= top; ++i) {
        if (exp.bit(static_cast<unsigned>(i))) result = sc_mul(result, acc);
        acc = sc_mul(acc, acc);
    }
    return result;
}

// --- Jacobian point arithmetic ---------------------------------------------------

namespace {

struct Jacobian {
    U256 x;
    U256 y;
    U256 z; // z == 0 means infinity
};

Jacobian to_jacobian(const Point& p) {
    if (p.infinity) return Jacobian{U256::one(), U256::one(), U256::zero()};
    return Jacobian{p.x, p.y, U256::one()};
}

Point to_affine(const Jacobian& j) {
    if (j.z.is_zero()) return Point{};
    const U256 zinv = fe_inv(j.z);
    const U256 zinv2 = fe_sqr(zinv);
    const U256 zinv3 = fe_mul(zinv2, zinv);
    return Point{fe_mul(j.x, zinv2), fe_mul(j.y, zinv3), false};
}

Jacobian jac_double(const Jacobian& p) {
    if (p.z.is_zero() || p.y.is_zero())
        return Jacobian{U256::one(), U256::one(), U256::zero()};
    // Standard dbl-2007-bl style formulas for a=0 curves.
    const U256 a2 = fe_sqr(p.x);                      // X^2
    const U256 b = fe_sqr(p.y);                       // Y^2
    const U256 c = fe_sqr(b);                         // Y^4
    U256 d = fe_mul(p.x, b);                          // X*Y^2
    d = fe_add(d, d);
    d = fe_add(d, d);                                 // 4*X*Y^2
    U256 e = fe_add(a2, fe_add(a2, a2));              // 3*X^2
    const U256 f = fe_sqr(e);
    U256 x3 = fe_sub(f, fe_add(d, d));
    U256 y3 = fe_mul(e, fe_sub(d, x3));
    U256 c8 = fe_add(c, c);
    c8 = fe_add(c8, c8);
    c8 = fe_add(c8, c8);                              // 8*Y^4
    y3 = fe_sub(y3, c8);
    U256 z3 = fe_mul(p.y, p.z);
    z3 = fe_add(z3, z3);
    return Jacobian{x3, y3, z3};
}

Jacobian jac_add(const Jacobian& p, const Jacobian& q) {
    if (p.z.is_zero()) return q;
    if (q.z.is_zero()) return p;
    const U256 z1z1 = fe_sqr(p.z);
    const U256 z2z2 = fe_sqr(q.z);
    const U256 u1 = fe_mul(p.x, z2z2);
    const U256 u2 = fe_mul(q.x, z1z1);
    const U256 s1 = fe_mul(p.y, fe_mul(z2z2, q.z));
    const U256 s2 = fe_mul(q.y, fe_mul(z1z1, p.z));
    if (u1 == u2) {
        if (s1 == s2) return jac_double(p);
        return Jacobian{U256::one(), U256::one(), U256::zero()}; // P + (-P) = O
    }
    const U256 h = fe_sub(u2, u1);
    U256 i = fe_add(h, h);
    i = fe_sqr(i);
    const U256 j = fe_mul(h, i);
    U256 r = fe_sub(s2, s1);
    r = fe_add(r, r);
    const U256 v = fe_mul(u1, i);
    U256 x3 = fe_sub(fe_sub(fe_sqr(r), j), fe_add(v, v));
    U256 s1j = fe_mul(s1, j);
    U256 y3 = fe_sub(fe_mul(r, fe_sub(v, x3)), fe_add(s1j, s1j));
    U256 z3 = fe_mul(fe_mul(p.z, q.z), h);
    z3 = fe_add(z3, z3);
    return Jacobian{x3, y3, z3};
}

Jacobian jac_negate(const Jacobian& p) {
    if (p.z.is_zero() || p.y.is_zero()) return p;
    return Jacobian{p.x, P() - p.y, p.z};
}

/// Affine point for precomputed tables. Mixed addition against an affine
/// operand (Z2 = 1) drops the Z2 normalization work of the general Jacobian
/// add: 8M+3S instead of 12M+4S.
struct Affine {
    U256 x;
    U256 y;
    bool infinity = true;
};

/// p + q with q affine (madd-2007-bl, Z2 = 1).
Jacobian jac_add_affine(const Jacobian& p, const Affine& q) {
    if (q.infinity) return p;
    if (p.z.is_zero()) return Jacobian{q.x, q.y, U256::one()};
    const U256 z1z1 = fe_sqr(p.z);
    const U256 u2 = fe_mul(q.x, z1z1);
    const U256 s2 = fe_mul(q.y, fe_mul(z1z1, p.z));
    if (u2 == p.x) {
        if (s2 == p.y) return jac_double(p);
        return Jacobian{U256::one(), U256::one(), U256::zero()}; // P + (-P) = O
    }
    const U256 h = fe_sub(u2, p.x);
    const U256 hh = fe_sqr(h);
    U256 i = fe_add(hh, hh);
    i = fe_add(i, i); // 4*H^2
    const U256 j = fe_mul(h, i);
    U256 r = fe_sub(s2, p.y);
    r = fe_add(r, r);
    const U256 v = fe_mul(p.x, i);
    const U256 x3 = fe_sub(fe_sub(fe_sqr(r), j), fe_add(v, v));
    const U256 yj = fe_mul(p.y, j);
    const U256 y3 = fe_sub(fe_mul(r, fe_sub(v, x3)), fe_add(yj, yj));
    U256 z3 = fe_mul(p.z, h);
    z3 = fe_add(z3, z3);
    return Jacobian{x3, y3, z3};
}

/// Width-4 non-adjacent form, least-significant digit first. Nonzero digits
/// are odd, lie in {±1, ±3, ±5, ±7}, and average one per ~5 bits, so a generic
/// 256-bit multiply needs ~51 additions instead of the ~128 of plain
/// double-and-add. Returns the digit count (≤ 257 for scalars < 2^256).
int wnaf_digits(const U256& k, std::int8_t out[260]) {
    U256 d = k;
    int len = 0;
    while (!d.is_zero()) {
        std::int8_t digit = 0;
        if (d.is_odd()) {
            const int word = static_cast<int>(d.low64() & 0xF); // mod 2^4
            digit = static_cast<std::int8_t>(word < 8 ? word : word - 16);
            if (digit > 0)
                d = d - U256(static_cast<std::uint64_t>(digit));
            else
                d = d + U256(static_cast<std::uint64_t>(-digit));
        }
        out[len++] = digit;
        d = d >> 1;
    }
    return len;
}

Jacobian jac_multiply(const U256& k, const Jacobian& p) {
    const Jacobian identity{U256::one(), U256::one(), U256::zero()};
    const U256 scalar = sc_reduce(k);
    if (scalar.is_zero() || p.z.is_zero()) return identity;

    std::int8_t naf[260];
    const int len = wnaf_digits(scalar, naf);

    // Odd multiples 1P, 3P, 5P, 7P.
    Jacobian odd[4];
    odd[0] = p;
    const Jacobian twop = jac_double(p);
    for (int i = 1; i < 4; ++i) odd[i] = jac_add(odd[i - 1], twop);

    Jacobian result = identity;
    for (int i = len - 1; i >= 0; --i) {
        result = jac_double(result);
        const int d = naf[i];
        if (d > 0)
            result = jac_add(result, odd[(d - 1) / 2]);
        else if (d < 0)
            result = jac_add(result, jac_negate(odd[(-d - 1) / 2]));
    }
    return result;
}

/// Fixed-base window-4 comb table for the generator, stored in affine form:
/// table[16*i + j] = j * 2^(4i) * G. Signing is dominated by k*G; the table
/// turns 256 doubles + ~128 adds into 64 mixed additions with no doublings at
/// all. Built lazily once per process: the Jacobian working table is converted
/// to affine with a single batched field inversion (Montgomery's trick), so
/// startup pays one fe_inv instead of 1008.
const std::vector<Affine>& base_table() {
    static const std::vector<Affine> table = [] {
        const Jacobian identity{U256::one(), U256::one(), U256::zero()};
        std::vector<Jacobian> jac(64 * 16, identity);
        Jacobian power{Gx(), Gy(), U256::one()}; // 2^(4i) * G
        for (int i = 0; i < 64; ++i) {
            for (int j = 1; j < 16; ++j)
                jac[static_cast<std::size_t>(16 * i + j)] =
                    jac_add(jac[static_cast<std::size_t>(16 * i + j - 1)], power);
            for (int d = 0; d < 4; ++d) power = jac_double(power);
        }

        // Batch inversion: prefix[k] holds the product of all previous z's, so
        // after one inversion of the grand product each z's inverse peels off
        // with two multiplications.
        std::vector<std::size_t> live;
        std::vector<U256> prefix;
        live.reserve(jac.size());
        prefix.reserve(jac.size());
        U256 acc = U256::one();
        for (std::size_t i = 0; i < jac.size(); ++i) {
            if (jac[i].z.is_zero()) continue;
            live.push_back(i);
            prefix.push_back(acc);
            acc = fe_mul(acc, jac[i].z);
        }
        U256 inv = fe_inv(acc);

        std::vector<Affine> t(jac.size());
        for (std::size_t k = live.size(); k-- > 0;) {
            const Jacobian& src = jac[live[k]];
            const U256 zinv = fe_mul(inv, prefix[k]);
            inv = fe_mul(inv, src.z);
            const U256 zinv2 = fe_sqr(zinv);
            t[live[k]] = Affine{fe_mul(src.x, zinv2),
                                fe_mul(src.y, fe_mul(zinv2, zinv)), false};
        }
        return t;
    }();
    return table;
}

Jacobian jac_multiply_base(const U256& k) {
    Jacobian result{U256::one(), U256::one(), U256::zero()};
    const U256 scalar = sc_reduce(k);
    for (int i = 0; i < 64; ++i) {
        const unsigned nibble = static_cast<unsigned>(
            (scalar.limbs[static_cast<std::size_t>(i / 16)] >> (4 * (i % 16))) & 0xF);
        if (nibble != 0)
            result = jac_add_affine(
                result,
                base_table()[static_cast<std::size_t>(16 * i + static_cast<int>(nibble))]);
    }
    return result;
}

} // namespace

const Point& generator() {
    static const Point g{Gx(), Gy(), false};
    return g;
}

bool is_on_curve(const Point& p) {
    if (p.infinity) return true;
    if (p.x >= P() || p.y >= P()) return false;
    const U256 lhs = fe_sqr(p.y);
    const U256 rhs = fe_add(fe_mul(fe_sqr(p.x), p.x), U256(7));
    return lhs == rhs;
}

Point add(const Point& a, const Point& b) {
    return to_affine(jac_add(to_jacobian(a), to_jacobian(b)));
}

Point negate(const Point& p) {
    if (p.infinity) return p;
    return Point{p.x, P() - p.y, false};
}

Point multiply(const U256& k, const Point& p) {
    if (p == generator()) return to_affine(jac_multiply_base(k));
    return to_affine(jac_multiply(k, to_jacobian(p)));
}

Point double_multiply(const U256& u1, const U256& u2, const Point& p) {
    const Jacobian sum =
        jac_add(jac_multiply_base(u1), jac_multiply(u2, to_jacobian(p)));
    return to_affine(sum);
}

Bytes encode_compressed(const Point& p) {
    if (p.infinity) throw CryptoError("cannot encode point at infinity");
    Bytes out;
    out.reserve(33);
    out.push_back(p.y.is_odd() ? 0x03 : 0x02);
    const Hash256 x = p.x.to_be_bytes();
    append(out, x.view());
    return out;
}

Point decode_compressed(ByteView bytes33) {
    if (bytes33.size() != 33 || (bytes33[0] != 0x02 && bytes33[0] != 0x03))
        throw CryptoError("malformed compressed point");
    const U256 x = U256::from_be_bytes(bytes33.subspan(1));
    if (x >= P()) throw CryptoError("point x out of range");
    const U256 rhs = fe_add(fe_mul(fe_sqr(x), x), U256(7));
    const std::optional<U256> y = fe_sqrt(rhs);
    if (!y) throw CryptoError("x is not on the curve");
    U256 y_final = *y;
    const bool want_odd = bytes33[0] == 0x03;
    if (y_final.is_odd() != want_odd) y_final = P() - y_final;
    return Point{x, y_final, false};
}

Bytes Signature::encode() const {
    Bytes out;
    out.reserve(64);
    append(out, r.to_be_bytes().view());
    append(out, s.to_be_bytes().view());
    return out;
}

Signature Signature::decode(ByteView bytes64) {
    if (bytes64.size() != 64) throw CryptoError("signature must be 64 bytes");
    return Signature{U256::from_be_bytes(bytes64.subspan(0, 32)),
                     U256::from_be_bytes(bytes64.subspan(32, 32))};
}

U256 rfc6979_nonce(const U256& priv, const Hash256& msg_hash) {
    // RFC 6979 §3.2 with HMAC-SHA256; qlen == hlen == 256 so bits2octets is a
    // plain reduction mod n.
    const Hash256 x = priv.to_be_bytes();
    const Hash256 h1 = sc_reduce(U256::from_hash(msg_hash)).to_be_bytes();

    std::uint8_t v_bytes[32];
    std::uint8_t k_bytes[32];
    std::fill(std::begin(v_bytes), std::end(v_bytes), 0x01);
    std::fill(std::begin(k_bytes), std::end(k_bytes), 0x00);
    auto v = ByteView{v_bytes, 32};
    auto k = ByteView{k_bytes, 32};

    auto hmac3 = [](ByteView key, ByteView a, ByteView b, ByteView c) {
        Bytes joined;
        joined.reserve(a.size() + b.size() + c.size());
        append(joined, a);
        append(joined, b);
        append(joined, c);
        return hmac_sha256(key, joined);
    };

    Hash256 kd = hmac3(k, v, Bytes{0x00}, [&] {
        Bytes seed;
        append(seed, x.view());
        append(seed, h1.view());
        return seed;
    }());
    std::copy(kd.data.begin(), kd.data.end(), k_bytes);
    Hash256 vd = hmac_sha256(k, v);
    std::copy(vd.data.begin(), vd.data.end(), v_bytes);

    kd = hmac3(k, v, Bytes{0x01}, [&] {
        Bytes seed;
        append(seed, x.view());
        append(seed, h1.view());
        return seed;
    }());
    std::copy(kd.data.begin(), kd.data.end(), k_bytes);
    vd = hmac_sha256(k, v);
    std::copy(vd.data.begin(), vd.data.end(), v_bytes);

    for (;;) {
        vd = hmac_sha256(k, v);
        std::copy(vd.data.begin(), vd.data.end(), v_bytes);
        const U256 candidate = U256::from_be_bytes(v);
        if (!candidate.is_zero() && candidate < N()) return candidate;
        kd = hmac_sha256(k, v, Bytes{0x00});
        std::copy(kd.data.begin(), kd.data.end(), k_bytes);
        vd = hmac_sha256(k, v);
        std::copy(vd.data.begin(), vd.data.end(), v_bytes);
    }
}

Signature sign(const U256& priv, const Hash256& msg_hash) {
    DLT_EXPECTS(!priv.is_zero() && priv < N());
    const U256 z = sc_reduce(U256::from_hash(msg_hash));
    U256 k = rfc6979_nonce(priv, msg_hash);
    for (;;) {
        const Point rp = multiply(k, generator());
        const U256 r = sc_reduce(rp.x);
        if (r.is_zero()) {
            k = sc_add(k, U256::one());
            continue;
        }
        U256 s = sc_mul(sc_inv(k), sc_add(z, sc_mul(r, priv)));
        if (s.is_zero()) {
            k = sc_add(k, U256::one());
            continue;
        }
        // Low-s normalization (BIP-62): accept the lexicographically smaller of
        // s and n-s so signatures are non-malleable.
        if (s > N() >> 1) s = N() - s;
        return Signature{r, s};
    }
}

bool verify(const Point& pub, const Hash256& msg_hash, const Signature& sig) {
    if (pub.infinity || !is_on_curve(pub)) return false;
    if (sig.r.is_zero() || sig.r >= N() || sig.s.is_zero() || sig.s >= N()) return false;
    const U256 z = sc_reduce(U256::from_hash(msg_hash));
    const U256 sinv = sc_inv(sig.s);
    const U256 u1 = sc_mul(z, sinv);
    const U256 u2 = sc_mul(sig.r, sinv);
    const Point rp = double_multiply(u1, u2, pub);
    if (rp.infinity) return false;
    return sc_reduce(rp.x) == sig.r;
}

Point derive_public(const U256& priv) {
    DLT_EXPECTS(!priv.is_zero() && priv < N());
    return multiply(priv, generator());
}

} // namespace dlt::crypto::secp256k1
