#include "crypto/ripemd160.hpp"

#include <cstring>

#include "crypto/sha256.hpp"

namespace dlt::crypto {

namespace {

std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

std::uint32_t f(int j, std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    if (j < 16) return x ^ y ^ z;
    if (j < 32) return (x & y) | (~x & z);
    if (j < 48) return (x | ~y) ^ z;
    if (j < 64) return (x & z) | (y & ~z);
    return x ^ (y | ~z);
}

constexpr std::uint32_t K1[5] = {0x00000000, 0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC,
                                 0xA953FD4E};
constexpr std::uint32_t K2[5] = {0x50A28BE6, 0x5C4DD124, 0x6D703EF3, 0x7A6D76E9,
                                 0x00000000};

constexpr int R1[80] = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15,
                        7,  4,  13, 1,  10, 6,  15, 3,  12, 0,  9,  5,  2,  14, 11, 8,
                        3,  10, 14, 4,  9,  15, 8,  1,  2,  7,  0,  6,  13, 11, 5,  12,
                        1,  9,  11, 10, 0,  8,  12, 4,  13, 3,  7,  15, 14, 5,  6,  2,
                        4,  0,  5,  9,  7,  12, 2,  10, 14, 1,  3,  8,  11, 6,  15, 13};

constexpr int R2[80] = {5,  14, 7,  0,  9,  2,  11, 4,  13, 6,  15, 8,  1,  10, 3,  12,
                        6,  11, 3,  7,  0,  13, 5,  10, 14, 15, 8,  12, 4,  9,  1,  2,
                        15, 5,  1,  3,  7,  14, 6,  9,  11, 8,  12, 2,  10, 0,  4,  13,
                        8,  6,  4,  1,  3,  11, 15, 0,  5,  12, 2,  13, 9,  7,  10, 14,
                        12, 15, 10, 4,  1,  5,  8,  7,  6,  2,  13, 14, 0,  3,  9,  11};

constexpr int S1[80] = {11, 14, 15, 12, 5,  8,  7,  9,  11, 13, 14, 15, 6,  7,  9,  8,
                        7,  6,  8,  13, 11, 9,  7,  15, 7,  12, 15, 9,  11, 7,  13, 12,
                        11, 13, 6,  7,  14, 9,  13, 15, 14, 8,  13, 6,  5,  12, 7,  5,
                        11, 12, 14, 15, 14, 15, 9,  8,  9,  14, 5,  6,  8,  6,  5,  12,
                        9,  15, 5,  11, 6,  8,  13, 12, 5,  12, 13, 14, 11, 8,  5,  6};

constexpr int S2[80] = {8,  9,  9,  11, 13, 15, 15, 5,  7,  7,  8,  11, 14, 14, 12, 6,
                        9,  13, 15, 7,  12, 8,  9,  11, 7,  7,  12, 7,  6,  15, 13, 11,
                        9,  7,  15, 11, 8,  6,  6,  14, 12, 13, 5,  14, 13, 13, 7,  5,
                        15, 5,  8,  11, 14, 14, 6,  14, 6,  9,  12, 9,  12, 5,  15, 8,
                        8,  5,  12, 9,  12, 5,  14, 6,  8,  13, 6,  5,  15, 13, 11, 11};

void compress(std::uint32_t state[5], const std::uint8_t* block) {
    std::uint32_t x[16];
    for (int i = 0; i < 16; ++i) {
        x[i] = std::uint32_t(block[4 * i]) | (std::uint32_t(block[4 * i + 1]) << 8) |
               (std::uint32_t(block[4 * i + 2]) << 16) |
               (std::uint32_t(block[4 * i + 3]) << 24);
    }

    std::uint32_t a1 = state[0], b1 = state[1], c1 = state[2], d1 = state[3],
                  e1 = state[4];
    std::uint32_t a2 = a1, b2 = b1, c2 = c1, d2 = d1, e2 = e1;

    for (int j = 0; j < 80; ++j) {
        std::uint32_t t = rotl(a1 + f(j, b1, c1, d1) + x[R1[j]] + K1[j / 16], S1[j]) + e1;
        a1 = e1;
        e1 = d1;
        d1 = rotl(c1, 10);
        c1 = b1;
        b1 = t;

        t = rotl(a2 + f(79 - j, b2, c2, d2) + x[R2[j]] + K2[j / 16], S2[j]) + e2;
        a2 = e2;
        e2 = d2;
        d2 = rotl(c2, 10);
        c2 = b2;
        b2 = t;
    }

    const std::uint32_t t = state[1] + c1 + d2;
    state[1] = state[2] + d1 + e2;
    state[2] = state[3] + e1 + a2;
    state[3] = state[4] + a1 + b2;
    state[4] = state[0] + b1 + c2;
    state[0] = t;
}

} // namespace

Hash160 ripemd160(ByteView data) {
    std::uint32_t state[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                              0xC3D2E1F0};

    std::size_t offset = 0;
    while (offset + 64 <= data.size()) {
        compress(state, data.data() + offset);
        offset += 64;
    }

    // Final block(s) with padding and 64-bit little-endian bit length.
    std::uint8_t tail[128] = {0};
    const std::size_t rem = data.size() - offset;
    if (rem > 0) std::memcpy(tail, data.data() + offset, rem);
    tail[rem] = 0x80;
    const std::size_t tail_blocks = (rem + 9 <= 64) ? 1 : 2;
    const std::uint64_t bit_len = std::uint64_t(data.size()) * 8;
    for (int i = 0; i < 8; ++i)
        tail[tail_blocks * 64 - 8 + i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
    compress(state, tail);
    if (tail_blocks == 2) compress(state, tail + 64);

    Hash160 digest;
    for (int i = 0; i < 5; ++i) {
        digest[4 * i] = static_cast<std::uint8_t>(state[i]);
        digest[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 8);
        digest[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 16);
        digest[4 * i + 3] = static_cast<std::uint8_t>(state[i] >> 24);
    }
    return digest;
}

Hash160 hash160(ByteView data) {
    const Hash256 sha = sha256(data);
    return ripemd160(sha.view());
}

} // namespace dlt::crypto
