// RIPEMD-160, used (as in Bitcoin) to derive compact 20-byte addresses from
// public keys: address = ripemd160(sha256(pubkey)).
#pragma once

#include "common/bytes.hpp"

namespace dlt::crypto {

/// One-shot RIPEMD-160.
Hash160 ripemd160(ByteView data);

/// Bitcoin-style hash160: ripemd160(sha256(data)).
Hash160 hash160(ByteView data);

} // namespace dlt::crypto
