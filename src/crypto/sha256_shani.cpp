// SHA-256 compression using the x86 SHA New Instructions (SHA-NI): the
// message schedule and round function run in hardware via sha256msg1/msg2 and
// sha256rnds2. Selected at runtime (crypto/sha256.cpp dispatch) when the CPU
// reports SHA + SSE4.1 support; every other build path compiles this file to
// a stub that reports "unavailable". Digests are bit-identical to the scalar
// transform — test_crypto cross-checks the two on randomized inputs.
#include "crypto/sha256.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define DLT_SHANI_BUILD 1
#include <immintrin.h>
#else
#define DLT_SHANI_BUILD 0
#endif

namespace dlt::crypto::detail {

#if DLT_SHANI_BUILD

namespace {

// Four rounds: add the round constants to the schedule words in MSG_, run two
// sha256rnds2 (each consumes two rounds' worth from the low lanes).
#define DLT_SHA_QROUND(S0, S1, MSG_, K_HI, K_LO)                              \
    do {                                                                      \
        __m128i wk_ = _mm_add_epi32(                                          \
            MSG_, _mm_set_epi64x(static_cast<long long>(K_HI),                \
                                 static_cast<long long>(K_LO)));              \
        S1 = _mm_sha256rnds2_epu32(S1, S0, wk_);                              \
        wk_ = _mm_shuffle_epi32(wk_, 0x0E);                                   \
        S0 = _mm_sha256rnds2_epu32(S0, S1, wk_);                              \
    } while (0)

// Message-schedule expansion: MA += alignr(MD, MC, 4); MA = msg2(MA, MD).
#define DLT_SHA_EXPAND(MA, MC, MD)                                            \
    do {                                                                      \
        const __m128i tmp_ = _mm_alignr_epi8(MD, MC, 4);                      \
        MA = _mm_add_epi32(MA, tmp_);                                         \
        MA = _mm_sha256msg2_epu32(MA, MD);                                    \
    } while (0)

__attribute__((target("sha,sse4.1")))
void transform_shani(std::uint32_t state[8], const std::uint8_t* blocks,
                     std::size_t nblocks) {
    // Big-endian load shuffle for the 16 message words.
    const __m128i kByteSwap =
        _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

    // Repack {a..h} into the ABEF/CDGH register layout sha256rnds2 expects.
    __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
    __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
    tmp = _mm_shuffle_epi32(tmp, 0xB1);       // CDAB
    state1 = _mm_shuffle_epi32(state1, 0x1B); // EFGH
    __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);     // ABEF
    state1 = _mm_blend_epi16(state1, tmp, 0xF0);          // CDGH

    for (std::size_t blk = 0; blk < nblocks; ++blk, blocks += 64) {
        const __m128i abef_save = state0;
        const __m128i cdgh_save = state1;

        __m128i msg0 = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 0)), kByteSwap);
        __m128i msg1 = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)), kByteSwap);
        __m128i msg2 = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)), kByteSwap);
        __m128i msg3 = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)), kByteSwap);

        // Rounds 0-15: the raw message words.
        DLT_SHA_QROUND(state0, state1, msg0, 0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL);
        DLT_SHA_QROUND(state0, state1, msg1, 0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        DLT_SHA_QROUND(state0, state1, msg2, 0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        DLT_SHA_QROUND(state0, state1, msg3, 0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL);
        DLT_SHA_EXPAND(msg0, msg2, msg3);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);

        // Rounds 16-47: schedule expansion interleaved with the rounds.
        DLT_SHA_QROUND(state0, state1, msg0, 0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL);
        DLT_SHA_EXPAND(msg1, msg3, msg0);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);
        DLT_SHA_QROUND(state0, state1, msg1, 0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL);
        DLT_SHA_EXPAND(msg2, msg0, msg1);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        DLT_SHA_QROUND(state0, state1, msg2, 0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL);
        DLT_SHA_EXPAND(msg3, msg1, msg2);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        DLT_SHA_QROUND(state0, state1, msg3, 0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL);
        DLT_SHA_EXPAND(msg0, msg2, msg3);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);
        DLT_SHA_QROUND(state0, state1, msg0, 0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL);
        DLT_SHA_EXPAND(msg1, msg3, msg0);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);
        DLT_SHA_QROUND(state0, state1, msg1, 0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL);
        DLT_SHA_EXPAND(msg2, msg0, msg1);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        DLT_SHA_QROUND(state0, state1, msg2, 0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL);
        DLT_SHA_EXPAND(msg3, msg1, msg2);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        DLT_SHA_QROUND(state0, state1, msg3, 0x106AA070F40E3585ULL, 0xD6990624D192E819ULL);
        DLT_SHA_EXPAND(msg0, msg2, msg3);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);

        // Rounds 48-63: the remaining expansions. W60-63 still needs msg3's
        // sigma0 feed from W48-51, so one last sha256msg1 rides along here.
        DLT_SHA_QROUND(state0, state1, msg0, 0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL);
        DLT_SHA_EXPAND(msg1, msg3, msg0);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);
        DLT_SHA_QROUND(state0, state1, msg1, 0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL);
        DLT_SHA_EXPAND(msg2, msg0, msg1);
        DLT_SHA_QROUND(state0, state1, msg2, 0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL);
        DLT_SHA_EXPAND(msg3, msg1, msg2);
        DLT_SHA_QROUND(state0, state1, msg3, 0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL);

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);
    }

    // Unpack ABEF/CDGH back to {a..h}.
    tmp = _mm_shuffle_epi32(state0, 0x1B);    // FEBA
    state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
    state0 = _mm_blend_epi16(tmp, state1, 0xF0);          // DCBA
    state1 = _mm_alignr_epi8(state1, tmp, 8);             // HGFE
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#undef DLT_SHA_QROUND
#undef DLT_SHA_EXPAND

} // namespace

Sha256Transform sha256_transform_shani() {
    if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1"))
        return &transform_shani;
    return nullptr;
}

#else

Sha256Transform sha256_transform_shani() { return nullptr; }

#endif

} // namespace dlt::crypto::detail
