#include "crypto/uint256.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace dlt::crypto {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

U256 U256::from_be_bytes(ByteView bytes32) {
    if (bytes32.size() != 32) throw DecodeError("U256 requires exactly 32 bytes");
    U256 out;
    for (int limb = 0; limb < 4; ++limb) {
        u64 v = 0;
        for (int b = 0; b < 8; ++b)
            v = (v << 8) | bytes32[static_cast<std::size_t>((3 - limb) * 8 + b)];
        out.limbs[static_cast<std::size_t>(limb)] = v;
    }
    return out;
}

U256 U256::from_hex(std::string_view hex) {
    DLT_EXPECTS(hex.size() <= 64);
    std::string padded(64 - hex.size(), '0');
    padded.append(hex);
    const Bytes raw = dlt::from_hex(padded);
    return from_be_bytes(raw);
}

Hash256 U256::to_be_bytes() const {
    Hash256 out;
    for (int limb = 0; limb < 4; ++limb) {
        const u64 v = limbs[static_cast<std::size_t>(limb)];
        for (int b = 0; b < 8; ++b)
            out[static_cast<std::size_t>((3 - limb) * 8 + b)] =
                static_cast<std::uint8_t>(v >> (56 - 8 * b));
    }
    return out;
}

std::string U256::hex() const { return to_be_bytes().hex(); }

int U256::highest_bit() const {
    for (int limb = 3; limb >= 0; --limb) {
        const u64 v = limbs[static_cast<std::size_t>(limb)];
        if (v != 0) return limb * 64 + (63 - std::countl_zero(v));
    }
    return -1;
}

std::strong_ordering U256::operator<=>(const U256& other) const {
    for (int i = 3; i >= 0; --i) {
        const auto a = limbs[static_cast<std::size_t>(i)];
        const auto b = other.limbs[static_cast<std::size_t>(i)];
        if (a != b) return a < b ? std::strong_ordering::less : std::strong_ordering::greater;
    }
    return std::strong_ordering::equal;
}

U256 U256::add(const U256& other, bool* carry) const {
    U256 out;
    u128 acc = 0;
    for (int i = 0; i < 4; ++i) {
        acc += static_cast<u128>(limbs[static_cast<std::size_t>(i)]) +
               other.limbs[static_cast<std::size_t>(i)];
        out.limbs[static_cast<std::size_t>(i)] = static_cast<u64>(acc);
        acc >>= 64;
    }
    if (carry != nullptr) *carry = acc != 0;
    return out;
}

U256 U256::sub(const U256& other, bool* borrow) const {
    U256 out;
    u128 acc = 0;
    for (int i = 0; i < 4; ++i) {
        const u128 lhs = limbs[static_cast<std::size_t>(i)];
        const u128 rhs = static_cast<u128>(other.limbs[static_cast<std::size_t>(i)]) + acc;
        if (lhs >= rhs) {
            out.limbs[static_cast<std::size_t>(i)] = static_cast<u64>(lhs - rhs);
            acc = 0;
        } else {
            out.limbs[static_cast<std::size_t>(i)] =
                static_cast<u64>((u128(1) << 64) + lhs - rhs);
            acc = 1;
        }
    }
    if (borrow != nullptr) *borrow = acc != 0;
    return out;
}

U256 U256::operator<<(unsigned n) const {
    if (n >= 256) return U256{};
    U256 out;
    const unsigned limb_shift = n / 64;
    const unsigned bit_shift = n % 64;
    for (int i = 3; i >= 0; --i) {
        const int src = i - static_cast<int>(limb_shift);
        u64 v = 0;
        if (src >= 0) {
            v = limbs[static_cast<std::size_t>(src)] << bit_shift;
            if (bit_shift != 0 && src - 1 >= 0)
                v |= limbs[static_cast<std::size_t>(src - 1)] >> (64 - bit_shift);
        }
        out.limbs[static_cast<std::size_t>(i)] = v;
    }
    return out;
}

U256 U256::operator>>(unsigned n) const {
    if (n >= 256) return U256{};
    U256 out;
    const unsigned limb_shift = n / 64;
    const unsigned bit_shift = n % 64;
    for (int i = 0; i < 4; ++i) {
        const int src = i + static_cast<int>(limb_shift);
        u64 v = 0;
        if (src <= 3) {
            v = limbs[static_cast<std::size_t>(src)] >> bit_shift;
            if (bit_shift != 0 && src + 1 <= 3)
                v |= limbs[static_cast<std::size_t>(src + 1)] << (64 - bit_shift);
        }
        out.limbs[static_cast<std::size_t>(i)] = v;
    }
    return out;
}

U256 U256::operator&(const U256& o) const {
    U256 out;
    for (int i = 0; i < 4; ++i)
        out.limbs[static_cast<std::size_t>(i)] =
            limbs[static_cast<std::size_t>(i)] & o.limbs[static_cast<std::size_t>(i)];
    return out;
}

U256 U256::operator|(const U256& o) const {
    U256 out;
    for (int i = 0; i < 4; ++i)
        out.limbs[static_cast<std::size_t>(i)] =
            limbs[static_cast<std::size_t>(i)] | o.limbs[static_cast<std::size_t>(i)];
    return out;
}

U256::Wide U256::mul_wide(const U256& other) const {
    u64 prod[8] = {0};
    for (int i = 0; i < 4; ++i) {
        u64 carry = 0;
        for (int j = 0; j < 4; ++j) {
            const u128 cur = static_cast<u128>(limbs[static_cast<std::size_t>(i)]) *
                                 other.limbs[static_cast<std::size_t>(j)] +
                             prod[i + j] + carry;
            prod[i + j] = static_cast<u64>(cur);
            carry = static_cast<u64>(cur >> 64);
        }
        prod[i + 4] = carry;
    }
    Wide out;
    for (int i = 0; i < 4; ++i) {
        out.lo.limbs[static_cast<std::size_t>(i)] = prod[i];
        out.hi.limbs[static_cast<std::size_t>(i)] = prod[i + 4];
    }
    return out;
}

U256 U256::mul_u64(u64 m, u64* carry_out) const {
    U256 out;
    u64 carry = 0;
    for (int i = 0; i < 4; ++i) {
        const u128 cur =
            static_cast<u128>(limbs[static_cast<std::size_t>(i)]) * m + carry;
        out.limbs[static_cast<std::size_t>(i)] = static_cast<u64>(cur);
        carry = static_cast<u64>(cur >> 64);
    }
    if (carry_out != nullptr) *carry_out = carry;
    return out;
}

U256 U256::operator*(const U256& o) const { return mul_wide(o).lo; }

U256::DivMod U256::divmod(const U256& divisor) const {
    DLT_EXPECTS(!divisor.is_zero());
    DivMod out;
    if (*this < divisor) {
        out.remainder = *this;
        return out;
    }
    const int shift = highest_bit() - divisor.highest_bit();
    U256 den = divisor << static_cast<unsigned>(shift);
    U256 rem = *this;
    for (int i = shift; i >= 0; --i) {
        if (den <= rem) {
            rem = rem - den;
            out.quotient.limbs[static_cast<std::size_t>(i / 64)] |= u64(1)
                                                                    << (i % 64);
        }
        den = den >> 1;
    }
    out.remainder = rem;
    return out;
}

const U256& U256::zero() {
    static const U256 v{};
    return v;
}

const U256& U256::one() {
    static const U256 v{1};
    return v;
}

const U256& U256::max() {
    static const U256 v{~u64(0), ~u64(0), ~u64(0), ~u64(0)};
    return v;
}

U256 mod_wide(const U256::Wide& value, const U256& m) {
    DLT_EXPECTS(!m.is_zero());
    // Process the 512-bit value as hi*2^256 + lo with bit-by-bit long division.
    // Start with the remainder of hi, then shift in the 256 bits of lo.
    U256 rem = value.hi % m;
    for (int i = 255; i >= 0; --i) {
        // rem = rem*2 + bit; rem stays < 2m so a single conditional subtract works,
        // but rem*2 may overflow 256 bits; detect via the carry.
        bool carry = false;
        rem = rem.add(rem, &carry);
        if (value.lo.bit(static_cast<unsigned>(i))) rem = rem + U256::one();
        if (carry || rem >= m) rem = rem - m;
        if (rem >= m) rem = rem - m;
    }
    return rem;
}

} // namespace dlt::crypto
