// Bounded signature-verification cache, modeled on Bitcoin Core's sigcache: a
// process-wide memo of ECDSA verification outcomes keyed by a salted hash of
// (pubkey, message hash, signature). In the simulator every one of the N
// simulated nodes validates the same gossiped block, so without this cache the
// host pays for the same expensive verification N times; with it, the first
// node pays and the rest hit the cache. Negative outcomes (bad signatures,
// malformed keys) are cached too, so a block full of garbage is cheap to reject
// repeatedly. Observable behaviour is unchanged: verification is a pure
// function of (pubkey, msg_hash, sig).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"

namespace dlt::crypto {

struct SigCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
};

/// Fixed-capacity map from entry key to verification outcome with FIFO
/// eviction (oldest insertion evicted first). Single-threaded, like the rest
/// of the simulator.
class SigCache {
public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    explicit SigCache(std::size_t capacity = kDefaultCapacity);

    /// Salted digest binding the full verification question. Using a hash as
    /// the key bounds entry size regardless of input sizes.
    static Hash256 entry_key(ByteView pubkey, const Hash256& msg_hash, ByteView sig);

    /// Cached outcome for a key; counts a hit or miss.
    std::optional<bool> lookup(const Hash256& key);

    /// Record an outcome. A key already present is left untouched (outcomes are
    /// deterministic, so the stored value is necessarily identical).
    void insert(const Hash256& key, bool valid);

    std::size_t size() const { return map_.size(); }
    std::size_t capacity() const { return capacity_; }

    /// Drop all entries and reset the FIFO; optionally change capacity.
    void clear();
    void set_capacity(std::size_t capacity);

    const SigCacheStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

    /// The process-wide instance used by transaction validation.
    static SigCache& global();

private:
    std::size_t capacity_;
    std::unordered_map<Hash256, bool> map_;
    std::vector<Hash256> fifo_; // ring buffer of inserted keys, oldest at head_
    std::size_t head_ = 0;
    SigCacheStats stats_;
};

/// Verify `sig64` (64-byte r||s) by `pubkey33` (compressed SEC1) over
/// `msg_hash`, consulting the global SigCache first. On a hit nothing is
/// decoded — point decompression is itself a field exponentiation, so cache
/// hits skip that cost too. Malformed inputs verify as false (and the negative
/// outcome is cached) instead of throwing.
bool verify_signature_cached(ByteView pubkey33, const Hash256& msg_hash,
                             ByteView sig64);

} // namespace dlt::crypto
