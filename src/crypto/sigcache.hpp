// Bounded signature-verification cache, modeled on Bitcoin Core's sigcache: a
// process-wide memo of ECDSA verification outcomes keyed by a salted hash of
// (pubkey, message hash, signature). In the simulator every one of the N
// simulated nodes validates the same gossiped block, so without this cache the
// host pays for the same expensive verification N times; with it, the first
// node pays and the rest hit the cache. Negative outcomes (bad signatures,
// malformed keys) are cached too, so a block full of garbage is cheap to reject
// repeatedly. Observable behaviour is unchanged: verification is a pure
// function of (pubkey, msg_hash, sig).
//
// The cache is thread-safe and striped: the key space is split across
// kStripes independent (mutex, map, FIFO) shards selected by the low bits of
// the entry hash, so parallel validation workers hitting the cache contend
// only when they land on the same stripe. Hit/miss counters are atomics and
// never take a lock.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "obs/metrics.hpp"

namespace dlt::crypto {

/// By-value snapshot of the counters. Taken with relaxed atomics, so under
/// concurrent use the fields are individually exact but not mutually atomic.
struct SigCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
};

/// Fixed-capacity map from entry key to verification outcome, split into
/// kStripes lock stripes. Each stripe evicts FIFO (oldest insertion first)
/// within its own share of the capacity; the entry key is a salted hash, so
/// keys spread uniformly across stripes.
class SigCache {
public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;
    static constexpr std::size_t kStripes = 16;

    /// When `registry` is given, the hit/miss/insert/evict tallies are the
    /// registry's sigcache_* counters (shared process-wide handles); otherwise
    /// the instance owns its counters. The global() cache registers; test
    /// instances default to private counters so their stats stay isolated.
    explicit SigCache(std::size_t capacity = kDefaultCapacity,
                      obs::MetricsRegistry* registry = nullptr);

    /// Salted digest binding the full verification question. Using a hash as
    /// the key bounds entry size regardless of input sizes.
    static Hash256 entry_key(ByteView pubkey, const Hash256& msg_hash, ByteView sig);

    /// Stripe an entry key lands in (exposed for the eviction tests).
    static std::size_t stripe_index(const Hash256& key) {
        return key.data[0] & (kStripes - 1);
    }

    /// Cached outcome for a key; counts a hit or miss.
    std::optional<bool> lookup(const Hash256& key);

    /// Record an outcome. A key already present is left untouched (outcomes are
    /// deterministic, so the stored value is necessarily identical).
    void insert(const Hash256& key, bool valid);

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    /// Entries a single stripe holds before evicting: max(1, capacity/kStripes).
    std::size_t stripe_capacity() const { return stripe_capacity_; }

    /// Drop all entries and reset the FIFOs; optionally change capacity.
    void clear();
    void set_capacity(std::size_t capacity);

    SigCacheStats stats() const;
    void reset_stats();

    /// The process-wide instance used by transaction validation.
    static SigCache& global();

private:
    struct Stripe {
        mutable std::mutex m;
        std::unordered_map<Hash256, bool> map;
        std::vector<Hash256> fifo; // ring buffer of inserted keys, oldest at head
        std::size_t head = 0;
    };

    std::size_t capacity_;
    std::size_t stripe_capacity_;
    Stripe stripes_[kStripes];
    /// Instance-owned fallback counters (used when no registry was given).
    struct OwnCounters {
        obs::Counter hits, misses, insertions, evictions;
    };
    OwnCounters own_;
    obs::Counter* hits_ = &own_.hits;
    obs::Counter* misses_ = &own_.misses;
    obs::Counter* insertions_ = &own_.insertions;
    obs::Counter* evictions_ = &own_.evictions;
};

/// Verify `sig64` (64-byte r||s) by `pubkey33` (compressed SEC1) over
/// `msg_hash`, consulting the global SigCache first. On a hit nothing is
/// decoded — point decompression is itself a field exponentiation, so cache
/// hits skip that cost too. Malformed inputs verify as false (and the negative
/// outcome is cached) instead of throwing. Safe to call from CheckQueue
/// workers: the cache is striped and the pubkey memo takes a shared lock.
bool verify_signature_cached(ByteView pubkey33, const Hash256& msg_hash,
                             ByteView sig64);

/// One deferred signature check: the unit of work a CheckQueue batch carries.
/// Views must outlive the batch (they point into the transaction being
/// validated); the sighash is precomputed on the coordinating thread so the
/// call operator is a pure function safe to run on any worker.
struct SigCheckJob {
    ByteView pubkey;
    Hash256 msg_hash;
    ByteView sig;

    bool operator()() const { return verify_signature_cached(pubkey, msg_hash, sig); }
};

} // namespace dlt::crypto
