// 256-bit unsigned integer arithmetic, the substrate for proof-of-work difficulty
// targets and secp256k1 field/scalar arithmetic. Little-endian 64-bit limbs.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace dlt::crypto {

struct U256Wide;
struct U256DivMod;

struct U256 {
    // limbs[0] is least significant.
    std::array<std::uint64_t, 4> limbs{};

    constexpr U256() = default;
    constexpr explicit U256(std::uint64_t v) : limbs{v, 0, 0, 0} {}
    constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2,
                   std::uint64_t l3)
        : limbs{l0, l1, l2, l3} {}

    static U256 from_be_bytes(ByteView bytes32);
    static U256 from_hash(const Hash256& h) { return from_be_bytes(h.view()); }
    static U256 from_hex(std::string_view hex);

    Hash256 to_be_bytes() const;
    std::string hex() const;

    bool is_zero() const { return (limbs[0] | limbs[1] | limbs[2] | limbs[3]) == 0; }
    bool bit(unsigned i) const { return (limbs[i / 64] >> (i % 64)) & 1; }
    /// Index of the highest set bit, or -1 when zero.
    int highest_bit() const;
    bool is_odd() const { return limbs[0] & 1; }
    std::uint64_t low64() const { return limbs[0]; }

    friend bool operator==(const U256&, const U256&) = default;
    std::strong_ordering operator<=>(const U256& other) const;

    /// Sum; *carry (if non-null) receives the carry-out bit.
    U256 add(const U256& other, bool* carry = nullptr) const;
    /// Difference; *borrow (if non-null) receives the borrow-out bit.
    U256 sub(const U256& other, bool* borrow = nullptr) const;

    U256 operator+(const U256& o) const { return add(o); }
    U256 operator-(const U256& o) const { return sub(o); }

    U256 operator<<(unsigned n) const;
    U256 operator>>(unsigned n) const;
    U256 operator&(const U256& o) const;
    U256 operator|(const U256& o) const;

    /// Full 512-bit product (lo, hi halves).
    using Wide = U256Wide;
    Wide mul_wide(const U256& other) const;

    /// Product with a 64-bit multiplier; returns low 256 bits, *carry_out (if
    /// non-null) receives the overflowing 64 bits.
    U256 mul_u64(std::uint64_t m, std::uint64_t* carry_out = nullptr) const;

    /// Truncated 256-bit product (asserts no overflow in debug contract mode).
    U256 operator*(const U256& o) const;

    /// Quotient and remainder by binary long division; divisor must be non-zero.
    using DivMod = U256DivMod;
    DivMod divmod(const U256& divisor) const;

    U256 operator/(const U256& o) const;
    U256 operator%(const U256& o) const;

    static const U256& zero();
    static const U256& one();
    static const U256& max();
};

struct U256Wide {
    U256 lo;
    U256 hi;
};

struct U256DivMod {
    U256 quotient;
    U256 remainder;
};

inline U256 U256::operator/(const U256& o) const { return divmod(o).quotient; }
inline U256 U256::operator%(const U256& o) const { return divmod(o).remainder; }

/// Reduce a 512-bit value mod m by binary long division. Exposed for scalar
/// arithmetic (mod n) where no special-form reduction applies.
U256 mod_wide(const U256::Wide& value, const U256& m);

} // namespace dlt::crypto
