#include "crypto/hmac.hpp"

#include <cstring>

#include "crypto/sha256.hpp"

namespace dlt::crypto {

namespace {
struct HmacKeyPads {
    std::uint8_t ipad[64];
    std::uint8_t opad[64];
};

HmacKeyPads derive_pads(ByteView key) {
    std::uint8_t key_block[64] = {0};
    if (key.size() > 64) {
        const Hash256 digest = sha256(key);
        std::memcpy(key_block, digest.data.data(), 32);
    } else {
        if (!key.empty()) std::memcpy(key_block, key.data(), key.size());
    }
    HmacKeyPads pads;
    for (int i = 0; i < 64; ++i) {
        pads.ipad[i] = key_block[i] ^ 0x36;
        pads.opad[i] = key_block[i] ^ 0x5C;
    }
    return pads;
}
} // namespace

Hash256 hmac_sha256(ByteView key, ByteView data) {
    return hmac_sha256(key, data, ByteView{});
}

Hash256 hmac_sha256(ByteView key, ByteView data1, ByteView data2) {
    const HmacKeyPads pads = derive_pads(key);
    Sha256 inner;
    inner.update(ByteView{pads.ipad, 64}).update(data1).update(data2);
    const Hash256 inner_digest = inner.finalize();

    Sha256 outer;
    outer.update(ByteView{pads.opad, 64}).update(inner_digest.view());
    return outer.finalize();
}

} // namespace dlt::crypto
