#include "crypto/sigcache.hpp"

#include <string>
#include <unordered_map>

#include "common/error.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"

namespace dlt::crypto {

SigCache::SigCache(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) capacity_ = 1;
    map_.reserve(capacity_);
    fifo_.reserve(capacity_);
}

Hash256 SigCache::entry_key(ByteView pubkey, const Hash256& msg_hash, ByteView sig) {
    Bytes preimage;
    preimage.reserve(pubkey.size() + msg_hash.size() + sig.size());
    preimage.insert(preimage.end(), pubkey.begin(), pubkey.end());
    preimage.insert(preimage.end(), msg_hash.data.begin(), msg_hash.data.end());
    preimage.insert(preimage.end(), sig.begin(), sig.end());
    return tagged_hash("dlt/sigcache", preimage);
}

std::optional<bool> SigCache::lookup(const Hash256& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    return it->second;
}

void SigCache::insert(const Hash256& key, bool valid) {
    if (map_.size() >= capacity_ && map_.find(key) == map_.end()) {
        // Evict the oldest insertion to make room.
        map_.erase(fifo_[head_]);
        fifo_[head_] = key; // reuse the ring slot for the newcomer
        head_ = (head_ + 1) % fifo_.size();
        map_.emplace(key, valid);
        ++stats_.evictions;
        ++stats_.insertions;
        return;
    }
    if (map_.emplace(key, valid).second) {
        fifo_.push_back(key);
        ++stats_.insertions;
    }
}

void SigCache::clear() {
    map_.clear();
    fifo_.clear();
    head_ = 0;
}

void SigCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity == 0 ? 1 : capacity;
    clear();
    map_.reserve(capacity_);
    fifo_.reserve(capacity_);
}

SigCache& SigCache::global() {
    static SigCache cache;
    return cache;
}

namespace {

// Decompressing a SEC1 key costs a field square root, and the simulator reuses
// a handful of signer keys across thousands of signatures — memoize the decode.
// Decoding is pure, so this is invisible apart from the saved work.
const secp256k1::Point& decode_pubkey_memoized(ByteView pubkey33) {
    static std::unordered_map<std::string, secp256k1::Point> memo;
    constexpr std::size_t kMaxEntries = 1 << 12;
    std::string key(reinterpret_cast<const char*>(pubkey33.data()), pubkey33.size());
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    if (memo.size() >= kMaxEntries) memo.clear(); // rare; refills immediately
    const secp256k1::Point point = secp256k1::decode_compressed(pubkey33);
    return memo.emplace(std::move(key), point).first->second;
}

} // namespace

bool verify_signature_cached(ByteView pubkey33, const Hash256& msg_hash,
                             ByteView sig64) {
    SigCache& cache = SigCache::global();
    const Hash256 key = SigCache::entry_key(pubkey33, msg_hash, sig64);
    if (const auto cached = cache.lookup(key)) return *cached;

    bool valid = false;
    try {
        const secp256k1::Point& pubkey = decode_pubkey_memoized(pubkey33);
        valid = secp256k1::verify(pubkey, msg_hash,
                                  secp256k1::Signature::decode(sig64));
    } catch (const CryptoError&) {
        valid = false; // malformed key or signature: definitively invalid
    }
    cache.insert(key, valid);
    return valid;
}

} // namespace dlt::crypto
