#include "crypto/sigcache.hpp"

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/error.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"

namespace dlt::crypto {

SigCache::SigCache(std::size_t capacity, obs::MetricsRegistry* registry) {
    if (registry != nullptr) {
        hits_ = &registry->counter("sigcache_hits_total",
                                   "Signature-cache lookup hits");
        misses_ = &registry->counter("sigcache_misses_total",
                                     "Signature-cache lookup misses");
        insertions_ = &registry->counter("sigcache_insertions_total",
                                         "Signature-cache entries inserted");
        evictions_ = &registry->counter("sigcache_evictions_total",
                                        "Signature-cache FIFO evictions");
    }
    set_capacity(capacity);
}

Hash256 SigCache::entry_key(ByteView pubkey, const Hash256& msg_hash, ByteView sig) {
    Bytes preimage;
    preimage.reserve(pubkey.size() + msg_hash.size() + sig.size());
    preimage.insert(preimage.end(), pubkey.begin(), pubkey.end());
    preimage.insert(preimage.end(), msg_hash.data.begin(), msg_hash.data.end());
    preimage.insert(preimage.end(), sig.begin(), sig.end());
    return tagged_hash("dlt/sigcache", preimage);
}

std::optional<bool> SigCache::lookup(const Hash256& key) {
    Stripe& stripe = stripes_[stripe_index(key)];
    std::lock_guard lock(stripe.m);
    const auto it = stripe.map.find(key);
    if (it == stripe.map.end()) {
        misses_->inc();
        return std::nullopt;
    }
    hits_->inc();
    return it->second;
}

void SigCache::insert(const Hash256& key, bool valid) {
    Stripe& stripe = stripes_[stripe_index(key)];
    std::lock_guard lock(stripe.m);
    if (stripe.map.size() >= stripe_capacity_ &&
        stripe.map.find(key) == stripe.map.end()) {
        // Evict the stripe's oldest insertion to make room.
        stripe.map.erase(stripe.fifo[stripe.head]);
        stripe.fifo[stripe.head] = key; // reuse the ring slot for the newcomer
        stripe.head = (stripe.head + 1) % stripe.fifo.size();
        stripe.map.emplace(key, valid);
        evictions_->inc();
        insertions_->inc();
        return;
    }
    if (stripe.map.emplace(key, valid).second) {
        stripe.fifo.push_back(key);
        insertions_->inc();
    }
}

std::size_t SigCache::size() const {
    std::size_t total = 0;
    for (const Stripe& stripe : stripes_) {
        std::lock_guard lock(stripe.m);
        total += stripe.map.size();
    }
    return total;
}

void SigCache::clear() {
    for (Stripe& stripe : stripes_) {
        std::lock_guard lock(stripe.m);
        stripe.map.clear();
        stripe.fifo.clear();
        stripe.head = 0;
    }
}

void SigCache::set_capacity(std::size_t capacity) {
    capacity_ = capacity == 0 ? 1 : capacity;
    stripe_capacity_ = capacity_ / kStripes;
    if (stripe_capacity_ == 0) stripe_capacity_ = 1;
    clear();
    for (Stripe& stripe : stripes_) {
        std::lock_guard lock(stripe.m);
        stripe.map.reserve(stripe_capacity_);
        stripe.fifo.reserve(stripe_capacity_);
    }
}

SigCacheStats SigCache::stats() const {
    SigCacheStats s;
    s.hits = hits_->value();
    s.misses = misses_->value();
    s.insertions = insertions_->value();
    s.evictions = evictions_->value();
    return s;
}

void SigCache::reset_stats() {
    hits_->reset();
    misses_->reset();
    insertions_->reset();
    evictions_->reset();
}

SigCache& SigCache::global() {
    static SigCache cache(kDefaultCapacity, &obs::MetricsRegistry::global());
    return cache;
}

namespace {

// Decompressing a SEC1 key costs a field square root, and the simulator reuses
// a handful of signer keys across thousands of signatures — memoize the decode.
// Decoding is pure, so this is invisible apart from the saved work. Entries
// are shared_ptr so a caller's point stays alive across the rare full clear;
// reads take the shared lock and run concurrently.
std::shared_ptr<const secp256k1::Point> decode_pubkey_memoized(ByteView pubkey33) {
    static std::shared_mutex memo_mutex;
    static std::unordered_map<std::string, std::shared_ptr<const secp256k1::Point>> memo;
    constexpr std::size_t kMaxEntries = 1 << 12;

    std::string key(reinterpret_cast<const char*>(pubkey33.data()), pubkey33.size());
    {
        std::shared_lock lock(memo_mutex);
        if (const auto it = memo.find(key); it != memo.end()) return it->second;
    }
    // Decode outside any lock: several threads may race to decode the same
    // key, but decoding is pure and the first emplace wins.
    auto point = std::make_shared<const secp256k1::Point>(
        secp256k1::decode_compressed(pubkey33));
    std::unique_lock lock(memo_mutex);
    if (memo.size() >= kMaxEntries) memo.clear(); // rare; refills immediately
    return memo.emplace(std::move(key), std::move(point)).first->second;
}

} // namespace

bool verify_signature_cached(ByteView pubkey33, const Hash256& msg_hash,
                             ByteView sig64) {
    SigCache& cache = SigCache::global();
    const Hash256 key = SigCache::entry_key(pubkey33, msg_hash, sig64);
    if (const auto cached = cache.lookup(key)) return *cached;

    bool valid = false;
    try {
        const auto pubkey = decode_pubkey_memoized(pubkey33);
        valid = secp256k1::verify(*pubkey, msg_hash,
                                  secp256k1::Signature::decode(sig64));
    } catch (const CryptoError&) {
        valid = false; // malformed key or signature: definitively invalid
    }
    cache.insert(key, valid);
    return valid;
}

} // namespace dlt::crypto
