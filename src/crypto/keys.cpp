#include "crypto/keys.hpp"

#include "common/error.hpp"
#include "crypto/ripemd160.hpp"
#include "crypto/sha256.hpp"

namespace dlt::crypto {

PublicKey::PublicKey(secp256k1::Point point) : point_(point) {
    if (point_.infinity || !secp256k1::is_on_curve(point_))
        throw CryptoError("invalid public key point");
}

PublicKey PublicKey::decode(ByteView bytes33) {
    return PublicKey(secp256k1::decode_compressed(bytes33));
}

Address PublicKey::address() const { return hash160(encode()); }

PrivateKey::PrivateKey(U256 secret) : secret_(secret) {
    if (secret_.is_zero() || secret_ >= secp256k1::group_order())
        throw CryptoError("private key out of range");
}

PrivateKey PrivateKey::generate(Rng& rng) {
    for (;;) {
        Hash256 raw;
        for (auto& b : raw.data) b = static_cast<std::uint8_t>(rng.next());
        const U256 candidate = U256::from_hash(raw);
        if (!candidate.is_zero() && candidate < secp256k1::group_order())
            return PrivateKey(candidate);
    }
}

PrivateKey PrivateKey::from_seed(std::string_view label) {
    Hash256 digest = tagged_hash("dlt/privkey", to_bytes(label));
    for (;;) {
        const U256 candidate = U256::from_hash(digest);
        if (!candidate.is_zero() && candidate < secp256k1::group_order())
            return PrivateKey(candidate);
        digest = sha256(digest.view());
    }
}

PublicKey PrivateKey::public_key() const {
    return PublicKey(secp256k1::derive_public(secret_));
}

} // namespace dlt::crypto
