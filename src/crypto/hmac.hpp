// HMAC-SHA256 (RFC 2104), used by the RFC-6979 deterministic ECDSA nonce
// derivation and by commitment schemes in the privacy module.
#pragma once

#include "common/bytes.hpp"

namespace dlt::crypto {

/// HMAC-SHA256 over `data` with the given key.
Hash256 hmac_sha256(ByteView key, ByteView data);

/// HMAC-SHA256 over the concatenation of two segments (avoids a copy at the
/// RFC-6979 call sites).
Hash256 hmac_sha256(ByteView key, ByteView data1, ByteView data2);

} // namespace dlt::crypto
