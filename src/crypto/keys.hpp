// Key management: value-type private keys, public keys, and 20-byte addresses.
// This is the identity layer used by wallets, transaction signing, PoS stake
// lotteries, and PBFT replica authentication.
#pragma once

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/secp256k1.hpp"

namespace dlt::crypto {

/// 20-byte account / wallet address (hash160 of the compressed public key).
using Address = Hash160;

class PublicKey {
public:
    /// Wraps a curve point; throws CryptoError unless it is a valid non-infinity
    /// curve point.
    explicit PublicKey(secp256k1::Point point);

    /// Decode the 33-byte compressed SEC1 form.
    static PublicKey decode(ByteView bytes33);

    const secp256k1::Point& point() const { return point_; }
    Bytes encode() const { return secp256k1::encode_compressed(point_); }

    /// hash160(compressed encoding) — the account address.
    Address address() const;

    bool verify(const Hash256& msg_hash, const secp256k1::Signature& sig) const {
        return secp256k1::verify(point_, msg_hash, sig);
    }

    friend bool operator==(const PublicKey&, const PublicKey&) = default;

private:
    secp256k1::Point point_;
};

class PrivateKey {
public:
    /// Wraps a scalar; throws CryptoError unless in [1, n).
    explicit PrivateKey(U256 secret);

    /// Draw a uniformly random key from the given deterministic stream.
    static PrivateKey generate(Rng& rng);

    /// Deterministic key for tests/examples: derived by hashing a label.
    static PrivateKey from_seed(std::string_view label);

    const U256& secret() const { return secret_; }
    PublicKey public_key() const;
    Address address() const { return public_key().address(); }

    secp256k1::Signature sign(const Hash256& msg_hash) const {
        return secp256k1::sign(secret_, msg_hash);
    }

private:
    U256 secret_;
};

} // namespace dlt::crypto
