// SHA-256 (FIPS 180-4), implemented from scratch: streaming context plus one-shot
// helpers, including Bitcoin's double-SHA256 and BIP-340-style tagged hashes.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace dlt::crypto {

class Sha256 {
public:
    Sha256() { reset(); }

    void reset();
    Sha256& update(ByteView data);
    /// Finalize and return the 32-byte digest. The context is left finalized;
    /// call reset() to reuse.
    Hash256 finalize();

private:
    void compress(const std::uint8_t* block);

    std::uint32_t state_[8];
    std::uint8_t buffer_[64];
    std::uint64_t total_len_ = 0;
    std::size_t buffer_len_ = 0;
};

/// One-shot SHA-256.
Hash256 sha256(ByteView data);

/// Bitcoin-style double SHA-256: sha256(sha256(data)).
Hash256 sha256d(ByteView data);

/// Tagged hash: sha256(sha256(tag) || sha256(tag) || data). Domain-separates
/// different uses of the hash function (block ids, tx ids, commitments, ...).
Hash256 tagged_hash(std::string_view tag, ByteView data);

/// Hash the concatenation of two digests (Merkle-tree inner nodes, Fig. 2).
Hash256 hash_pair(const Hash256& left, const Hash256& right);

} // namespace dlt::crypto
