// SHA-256 (FIPS 180-4), implemented from scratch: streaming context plus one-shot
// helpers, including Bitcoin's double-SHA256 and BIP-340-style tagged hashes.
// The compression function is runtime-dispatched: on x86-64 CPUs with the SHA
// extensions (SHA-NI) a hardware-accelerated transform is selected at first
// use, with the portable scalar implementation as the fallback (and available
// for cross-checking — see sha256_force_scalar()). Both produce identical
// digests; dispatch changes wall-clock only.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace dlt::crypto {

namespace detail {

/// Compress `nblocks` consecutive 64-byte message blocks into `state`.
using Sha256Transform = void (*)(std::uint32_t state[8], const std::uint8_t* blocks,
                                 std::size_t nblocks);

/// Portable scalar transform (always available).
void sha256_transform_scalar(std::uint32_t state[8], const std::uint8_t* blocks,
                             std::size_t nblocks);

/// SHA-NI transform, or nullptr when the CPU or build lacks support.
Sha256Transform sha256_transform_shani();

/// The transform active right now (SHA-NI when supported unless forced scalar).
Sha256Transform sha256_active_transform();

} // namespace detail

/// Name of the active compression backend: "sha-ni" or "scalar".
const char* sha256_backend();

/// Force the scalar backend on (true) or restore auto-dispatch (false). Used
/// by benches and the SIMD-vs-scalar property tests; call from one thread
/// before hashing work is in flight.
void sha256_force_scalar(bool force);

class Sha256 {
public:
    Sha256() { reset(); }

    void reset();
    Sha256& update(ByteView data);
    /// Finalize and return the 32-byte digest. The context is left finalized;
    /// call reset() to reuse.
    Hash256 finalize();

private:
    std::uint32_t state_[8];
    std::uint8_t buffer_[64];
    std::uint64_t total_len_ = 0;
    std::size_t buffer_len_ = 0;
};

/// One-shot SHA-256.
Hash256 sha256(ByteView data);

/// Bitcoin-style double SHA-256: sha256(sha256(data)). Reuses a single
/// context and takes the sha256d_64 fast path for 64-byte inputs.
Hash256 sha256d(ByteView data);

/// Single SHA-256 of exactly 64 bytes: two compression calls, no streaming
/// buffer copies. This is the Merkle inner-node shape (two concatenated
/// 32-byte digests) — see hash_pair().
Hash256 sha256_64(const std::uint8_t* data64);

/// Double SHA-256 of exactly 64 bytes: a single three-compression chain with
/// no intermediate Hash256 copy (Bitcoin's merkle/txid inner shape).
Hash256 sha256d_64(const std::uint8_t* data64);

/// Tagged hash: sha256(sha256(tag) || sha256(tag) || data). Domain-separates
/// different uses of the hash function (block ids, tx ids, commitments, ...).
Hash256 tagged_hash(std::string_view tag, ByteView data);

/// Hash the concatenation of two digests (Merkle-tree inner nodes, Fig. 2).
Hash256 hash_pair(const Hash256& left, const Hash256& right);

} // namespace dlt::crypto
