#include "crypto/sha256.hpp"

#include <array>
#include <atomic>
#include <cstring>

namespace dlt::crypto {

namespace {
constexpr std::uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                                    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

/// Padding block for a message of exactly 64 bytes: 0x80, zeros, then the
/// 512-bit length in big-endian — a compile-time constant, so the 64-byte
/// fast paths skip all padding bookkeeping.
constexpr std::array<std::uint8_t, 64> make_pad64() {
    std::array<std::uint8_t, 64> p{};
    p[0] = 0x80;
    p[62] = 0x02; // 512 = 0x0200 bits, big-endian in bytes 56..63
    return p;
}
constexpr std::array<std::uint8_t, 64> kPad64Array = make_pad64();
constexpr const std::uint8_t* kPad64 = kPad64Array.data();

void write_be32(std::uint8_t* out, std::uint32_t v) {
    out[0] = static_cast<std::uint8_t>(v >> 24);
    out[1] = static_cast<std::uint8_t>(v >> 16);
    out[2] = static_cast<std::uint8_t>(v >> 8);
    out[3] = static_cast<std::uint8_t>(v);
}

Hash256 digest_of(const std::uint32_t state[8]) {
    Hash256 digest;
    for (int i = 0; i < 8; ++i) write_be32(&digest[4 * static_cast<std::size_t>(i)], state[i]);
    return digest;
}

} // namespace

namespace detail {

void sha256_transform_scalar(std::uint32_t state[8], const std::uint8_t* blocks,
                             std::size_t nblocks) {
    for (std::size_t blk = 0; blk < nblocks; ++blk, blocks += 64) {
        std::uint32_t w[64];
        for (int i = 0; i < 16; ++i) {
            w[i] = (std::uint32_t(blocks[4 * i]) << 24) |
                   (std::uint32_t(blocks[4 * i + 1]) << 16) |
                   (std::uint32_t(blocks[4 * i + 2]) << 8) |
                   std::uint32_t(blocks[4 * i + 3]);
        }
        for (int i = 16; i < 64; ++i) {
            const std::uint32_t s0 =
                rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
            const std::uint32_t s1 =
                rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16] + s0 + w[i - 7] + s1;
        }

        std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
        std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

        for (int i = 0; i < 64; ++i) {
            const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
            const std::uint32_t ch = (e & f) ^ (~e & g);
            const std::uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
            const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
            const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
            const std::uint32_t t2 = s0 + maj;
            h = g;
            g = f;
            f = e;
            e = d + t1;
            d = c;
            c = b;
            b = a;
            a = t1 + t2;
        }

        state[0] += a;
        state[1] += b;
        state[2] += c;
        state[3] += d;
        state[4] += e;
        state[5] += f;
        state[6] += g;
        state[7] += h;
    }
}

namespace {

Sha256Transform pick_transform() {
    if (const Sha256Transform shani = sha256_transform_shani()) return shani;
    return &sha256_transform_scalar;
}

// The active transform. Relaxed ordering is fine: both candidates compute the
// same function, so readers that race a force_scalar() toggle still hash
// correctly — only the backend choice is approximate during the switch.
std::atomic<Sha256Transform>& active_slot() {
    static std::atomic<Sha256Transform> slot{pick_transform()};
    return slot;
}

} // namespace

Sha256Transform sha256_active_transform() {
    return active_slot().load(std::memory_order_relaxed);
}

} // namespace detail

const char* sha256_backend() {
    return detail::sha256_active_transform() == &detail::sha256_transform_scalar
               ? "scalar"
               : "sha-ni";
}

void sha256_force_scalar(bool force) {
    detail::active_slot().store(force ? &detail::sha256_transform_scalar
                                      : detail::pick_transform(),
                                std::memory_order_relaxed);
}

void Sha256::reset() {
    std::memcpy(state_, kInit, sizeof state_);
    total_len_ = 0;
    buffer_len_ = 0;
}

Sha256& Sha256::update(ByteView data) {
    if (data.empty()) return *this; // empty views may carry a null data()
    const detail::Sha256Transform transform = detail::sha256_active_transform();
    total_len_ += data.size();
    std::size_t offset = 0;

    if (buffer_len_ > 0) {
        const std::size_t need = 64 - buffer_len_;
        const std::size_t take = data.size() < need ? data.size() : need;
        std::memcpy(buffer_ + buffer_len_, data.data(), take);
        buffer_len_ += take;
        offset += take;
        if (buffer_len_ == 64) {
            transform(state_, buffer_, 1);
            buffer_len_ = 0;
        }
    }

    if (offset + 64 <= data.size()) {
        const std::size_t nblocks = (data.size() - offset) / 64;
        transform(state_, data.data() + offset, nblocks);
        offset += nblocks * 64;
    }

    if (offset < data.size()) {
        buffer_len_ = data.size() - offset;
        std::memcpy(buffer_, data.data() + offset, buffer_len_);
    }
    return *this;
}

Hash256 Sha256::finalize() {
    const std::uint64_t bit_len = total_len_ * 8;

    // Padding: 0x80 then zeros until 8 bytes remain in the block, then the length.
    std::uint8_t pad = 0x80;
    update(ByteView{&pad, 1});
    const std::uint8_t zero = 0x00;
    while (buffer_len_ != 56) update(ByteView{&zero, 1});

    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i)
        len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    // Write the length directly so total_len_ bookkeeping doesn't matter anymore.
    std::memcpy(buffer_ + 56, len_bytes, 8);
    detail::sha256_active_transform()(state_, buffer_, 1);
    buffer_len_ = 0;

    return digest_of(state_);
}

Hash256 sha256(ByteView data) { return Sha256().update(data).finalize(); }

Hash256 sha256_64(const std::uint8_t* data64) {
    const detail::Sha256Transform transform = detail::sha256_active_transform();
    std::uint32_t state[8];
    std::memcpy(state, kInit, sizeof state);
    transform(state, data64, 1);
    transform(state, kPad64, 1);
    return digest_of(state);
}

Hash256 sha256d_64(const std::uint8_t* data64) {
    const detail::Sha256Transform transform = detail::sha256_active_transform();
    std::uint32_t state[8];
    std::memcpy(state, kInit, sizeof state);
    transform(state, data64, 1);
    transform(state, kPad64, 1);

    // Second hash: the 32-byte digest padded to one block (length 256 bits),
    // serialized straight into a stack block — no intermediate Hash256.
    std::uint8_t block[64] = {};
    for (int i = 0; i < 8; ++i) write_be32(&block[4 * static_cast<std::size_t>(i)], state[i]);
    block[32] = 0x80;
    block[62] = 0x01; // 256 = 0x0100 bits, big-endian in bytes 56..63
    std::memcpy(state, kInit, sizeof state);
    transform(state, block, 1);
    return digest_of(state);
}

Hash256 sha256d(ByteView data) {
    if (data.size() == 64) return sha256d_64(data.data());
    // One context reused across both passes (the old free-function path built
    // two Sha256 objects and re-buffered the intermediate digest).
    Sha256 ctx;
    ctx.update(data);
    const Hash256 first = ctx.finalize();
    ctx.reset();
    ctx.update(first.view());
    return ctx.finalize();
}

Hash256 tagged_hash(std::string_view tag, ByteView data) {
    const Hash256 tag_hash =
        sha256(ByteView{reinterpret_cast<const std::uint8_t*>(tag.data()), tag.size()});
    Sha256 ctx;
    ctx.update(tag_hash.view()).update(tag_hash.view()).update(data);
    return ctx.finalize();
}

Hash256 hash_pair(const Hash256& left, const Hash256& right) {
    std::uint8_t buf[64];
    std::memcpy(buf, left.data.data(), 32);
    std::memcpy(buf + 32, right.data.data(), 32);
    return sha256_64(buf);
}

} // namespace dlt::crypto
