# Empty dependencies file for bench_e08_dcs_tradeoff.
# This may be replaced when dependencies are built.
