
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e08_dcs_tradeoff.cpp" "bench/CMakeFiles/bench_e08_dcs_tradeoff.dir/bench_e08_dcs_tradeoff.cpp.o" "gcc" "bench/CMakeFiles/bench_e08_dcs_tradeoff.dir/bench_e08_dcs_tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dlt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_scaling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_contract.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_datastruct.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
