# Empty dependencies file for bench_e14_bootstrap.
# This may be replaced when dependencies are built.
