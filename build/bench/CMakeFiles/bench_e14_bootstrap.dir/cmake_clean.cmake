file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_bootstrap.dir/bench_e14_bootstrap.cpp.o"
  "CMakeFiles/bench_e14_bootstrap.dir/bench_e14_bootstrap.cpp.o.d"
  "bench_e14_bootstrap"
  "bench_e14_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
