# Empty dependencies file for bench_e05_pos_vs_pow.
# This may be replaced when dependencies are built.
