file(REMOVE_RECURSE
  "CMakeFiles/bench_e05_pos_vs_pow.dir/bench_e05_pos_vs_pow.cpp.o"
  "CMakeFiles/bench_e05_pos_vs_pow.dir/bench_e05_pos_vs_pow.cpp.o.d"
  "bench_e05_pos_vs_pow"
  "bench_e05_pos_vs_pow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e05_pos_vs_pow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
