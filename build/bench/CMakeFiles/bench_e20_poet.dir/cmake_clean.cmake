file(REMOVE_RECURSE
  "CMakeFiles/bench_e20_poet.dir/bench_e20_poet.cpp.o"
  "CMakeFiles/bench_e20_poet.dir/bench_e20_poet.cpp.o.d"
  "bench_e20_poet"
  "bench_e20_poet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e20_poet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
