file(REMOVE_RECURSE
  "CMakeFiles/bench_e09_bitcoin_ng.dir/bench_e09_bitcoin_ng.cpp.o"
  "CMakeFiles/bench_e09_bitcoin_ng.dir/bench_e09_bitcoin_ng.cpp.o.d"
  "bench_e09_bitcoin_ng"
  "bench_e09_bitcoin_ng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e09_bitcoin_ng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
