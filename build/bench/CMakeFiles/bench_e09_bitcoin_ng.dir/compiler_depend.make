# Empty compiler generated dependencies file for bench_e09_bitcoin_ng.
# This may be replaced when dependencies are built.
