file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_gossip.dir/bench_e18_gossip.cpp.o"
  "CMakeFiles/bench_e18_gossip.dir/bench_e18_gossip.cpp.o.d"
  "bench_e18_gossip"
  "bench_e18_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
