# Empty dependencies file for bench_e19_generations.
# This may be replaced when dependencies are built.
