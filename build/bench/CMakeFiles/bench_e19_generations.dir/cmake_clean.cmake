file(REMOVE_RECURSE
  "CMakeFiles/bench_e19_generations.dir/bench_e19_generations.cpp.o"
  "CMakeFiles/bench_e19_generations.dir/bench_e19_generations.cpp.o.d"
  "bench_e19_generations"
  "bench_e19_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e19_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
