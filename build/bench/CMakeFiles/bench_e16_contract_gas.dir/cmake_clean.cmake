file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_contract_gas.dir/bench_e16_contract_gas.cpp.o"
  "CMakeFiles/bench_e16_contract_gas.dir/bench_e16_contract_gas.cpp.o.d"
  "bench_e16_contract_gas"
  "bench_e16_contract_gas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_contract_gas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
