# Empty compiler generated dependencies file for bench_e16_contract_gas.
# This may be replaced when dependencies are built.
