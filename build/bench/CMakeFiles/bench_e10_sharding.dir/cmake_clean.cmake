file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_sharding.dir/bench_e10_sharding.cpp.o"
  "CMakeFiles/bench_e10_sharding.dir/bench_e10_sharding.cpp.o.d"
  "bench_e10_sharding"
  "bench_e10_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
