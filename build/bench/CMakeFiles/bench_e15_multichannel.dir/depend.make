# Empty dependencies file for bench_e15_multichannel.
# This may be replaced when dependencies are built.
