file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_multichannel.dir/bench_e15_multichannel.cpp.o"
  "CMakeFiles/bench_e15_multichannel.dir/bench_e15_multichannel.cpp.o.d"
  "bench_e15_multichannel"
  "bench_e15_multichannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_multichannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
