# Empty compiler generated dependencies file for bench_e04_ordering_pbft.
# This may be replaced when dependencies are built.
