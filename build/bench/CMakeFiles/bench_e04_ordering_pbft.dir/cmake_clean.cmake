file(REMOVE_RECURSE
  "CMakeFiles/bench_e04_ordering_pbft.dir/bench_e04_ordering_pbft.cpp.o"
  "CMakeFiles/bench_e04_ordering_pbft.dir/bench_e04_ordering_pbft.cpp.o.d"
  "bench_e04_ordering_pbft"
  "bench_e04_ordering_pbft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e04_ordering_pbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
