# Empty dependencies file for bench_e02_bitcoin_throughput.
# This may be replaced when dependencies are built.
