# Empty dependencies file for bench_e11_payment_channels.
# This may be replaced when dependencies are built.
