file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_payment_channels.dir/bench_e11_payment_channels.cpp.o"
  "CMakeFiles/bench_e11_payment_channels.dir/bench_e11_payment_channels.cpp.o.d"
  "bench_e11_payment_channels"
  "bench_e11_payment_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_payment_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
