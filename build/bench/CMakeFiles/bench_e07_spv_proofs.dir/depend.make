# Empty dependencies file for bench_e07_spv_proofs.
# This may be replaced when dependencies are built.
