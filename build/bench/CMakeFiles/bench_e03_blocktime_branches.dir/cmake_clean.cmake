file(REMOVE_RECURSE
  "CMakeFiles/bench_e03_blocktime_branches.dir/bench_e03_blocktime_branches.cpp.o"
  "CMakeFiles/bench_e03_blocktime_branches.dir/bench_e03_blocktime_branches.cpp.o.d"
  "bench_e03_blocktime_branches"
  "bench_e03_blocktime_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e03_blocktime_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
