# Empty dependencies file for bench_e03_blocktime_branches.
# This may be replaced when dependencies are built.
