# Empty dependencies file for bench_e06_attack51.
# This may be replaced when dependencies are built.
