file(REMOVE_RECURSE
  "CMakeFiles/bench_e06_attack51.dir/bench_e06_attack51.cpp.o"
  "CMakeFiles/bench_e06_attack51.dir/bench_e06_attack51.cpp.o.d"
  "bench_e06_attack51"
  "bench_e06_attack51.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e06_attack51.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
