file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_state_structures.dir/bench_e13_state_structures.cpp.o"
  "CMakeFiles/bench_e13_state_structures.dir/bench_e13_state_structures.cpp.o.d"
  "bench_e13_state_structures"
  "bench_e13_state_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_state_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
