# Empty dependencies file for bench_e13_state_structures.
# This may be replaced when dependencies are built.
