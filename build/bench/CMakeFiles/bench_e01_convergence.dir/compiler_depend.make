# Empty compiler generated dependencies file for bench_e01_convergence.
# This may be replaced when dependencies are built.
