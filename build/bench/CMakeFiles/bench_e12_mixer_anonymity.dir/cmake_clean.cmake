file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_mixer_anonymity.dir/bench_e12_mixer_anonymity.cpp.o"
  "CMakeFiles/bench_e12_mixer_anonymity.dir/bench_e12_mixer_anonymity.cpp.o.d"
  "bench_e12_mixer_anonymity"
  "bench_e12_mixer_anonymity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_mixer_anonymity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
