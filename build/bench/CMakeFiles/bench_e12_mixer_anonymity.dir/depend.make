# Empty dependencies file for bench_e12_mixer_anonymity.
# This may be replaced when dependencies are built.
