file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_pbft_faults.dir/bench_e17_pbft_faults.cpp.o"
  "CMakeFiles/bench_e17_pbft_faults.dir/bench_e17_pbft_faults.cpp.o.d"
  "bench_e17_pbft_faults"
  "bench_e17_pbft_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_pbft_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
