# Empty compiler generated dependencies file for bench_e17_pbft_faults.
# This may be replaced when dependencies are built.
