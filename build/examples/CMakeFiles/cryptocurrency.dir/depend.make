# Empty dependencies file for cryptocurrency.
# This may be replaced when dependencies are built.
