file(REMOVE_RECURSE
  "CMakeFiles/cryptocurrency.dir/cryptocurrency.cpp.o"
  "CMakeFiles/cryptocurrency.dir/cryptocurrency.cpp.o.d"
  "cryptocurrency"
  "cryptocurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptocurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
