# Empty dependencies file for dapp_crowdfund.
# This may be replaced when dependencies are built.
