file(REMOVE_RECURSE
  "CMakeFiles/dapp_crowdfund.dir/dapp_crowdfund.cpp.o"
  "CMakeFiles/dapp_crowdfund.dir/dapp_crowdfund.cpp.o.d"
  "dapp_crowdfund"
  "dapp_crowdfund.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapp_crowdfund.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
