# Empty compiler generated dependencies file for payment_channels.
# This may be replaced when dependencies are built.
