file(REMOVE_RECURSE
  "CMakeFiles/payment_channels.dir/payment_channels.cpp.o"
  "CMakeFiles/payment_channels.dir/payment_channels.cpp.o.d"
  "payment_channels"
  "payment_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payment_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
