file(REMOVE_RECURSE
  "CMakeFiles/cross_chain_exchange.dir/cross_chain_exchange.cpp.o"
  "CMakeFiles/cross_chain_exchange.dir/cross_chain_exchange.cpp.o.d"
  "cross_chain_exchange"
  "cross_chain_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_chain_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
