# Empty dependencies file for cross_chain_exchange.
# This may be replaced when dependencies are built.
