# Empty compiler generated dependencies file for test_nakamoto.
# This may be replaced when dependencies are built.
