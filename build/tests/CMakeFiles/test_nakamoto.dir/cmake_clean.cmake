file(REMOVE_RECURSE
  "CMakeFiles/test_nakamoto.dir/test_nakamoto.cpp.o"
  "CMakeFiles/test_nakamoto.dir/test_nakamoto.cpp.o.d"
  "test_nakamoto"
  "test_nakamoto.pdb"
  "test_nakamoto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nakamoto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
