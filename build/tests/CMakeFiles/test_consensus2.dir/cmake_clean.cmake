file(REMOVE_RECURSE
  "CMakeFiles/test_consensus2.dir/test_consensus2.cpp.o"
  "CMakeFiles/test_consensus2.dir/test_consensus2.cpp.o.d"
  "test_consensus2"
  "test_consensus2.pdb"
  "test_consensus2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consensus2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
