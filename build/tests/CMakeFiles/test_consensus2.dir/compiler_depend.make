# Empty compiler generated dependencies file for test_consensus2.
# This may be replaced when dependencies are built.
