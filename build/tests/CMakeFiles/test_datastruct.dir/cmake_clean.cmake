file(REMOVE_RECURSE
  "CMakeFiles/test_datastruct.dir/test_datastruct.cpp.o"
  "CMakeFiles/test_datastruct.dir/test_datastruct.cpp.o.d"
  "test_datastruct"
  "test_datastruct.pdb"
  "test_datastruct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datastruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
