# Empty compiler generated dependencies file for test_datastruct.
# This may be replaced when dependencies are built.
