# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_datastruct[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_ledger[1]_include.cmake")
include("/root/repo/build/tests/test_nakamoto[1]_include.cmake")
include("/root/repo/build/tests/test_consensus2[1]_include.cmake")
include("/root/repo/build/tests/test_contract[1]_include.cmake")
include("/root/repo/build/tests/test_privacy[1]_include.cmake")
include("/root/repo/build/tests/test_scaling[1]_include.cmake")
include("/root/repo/build/tests/test_core_app[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_middleware[1]_include.cmake")
include("/root/repo/build/tests/test_sweeps[1]_include.cmake")
