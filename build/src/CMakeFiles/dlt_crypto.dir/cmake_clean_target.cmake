file(REMOVE_RECURSE
  "libdlt_crypto.a"
)
