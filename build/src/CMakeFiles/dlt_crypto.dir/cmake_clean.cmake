file(REMOVE_RECURSE
  "CMakeFiles/dlt_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/dlt_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/dlt_crypto.dir/crypto/keys.cpp.o"
  "CMakeFiles/dlt_crypto.dir/crypto/keys.cpp.o.d"
  "CMakeFiles/dlt_crypto.dir/crypto/ripemd160.cpp.o"
  "CMakeFiles/dlt_crypto.dir/crypto/ripemd160.cpp.o.d"
  "CMakeFiles/dlt_crypto.dir/crypto/secp256k1.cpp.o"
  "CMakeFiles/dlt_crypto.dir/crypto/secp256k1.cpp.o.d"
  "CMakeFiles/dlt_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/dlt_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/dlt_crypto.dir/crypto/uint256.cpp.o"
  "CMakeFiles/dlt_crypto.dir/crypto/uint256.cpp.o.d"
  "libdlt_crypto.a"
  "libdlt_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
