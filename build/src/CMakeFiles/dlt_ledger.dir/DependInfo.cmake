
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ledger/block.cpp" "src/CMakeFiles/dlt_ledger.dir/ledger/block.cpp.o" "gcc" "src/CMakeFiles/dlt_ledger.dir/ledger/block.cpp.o.d"
  "/root/repo/src/ledger/chain.cpp" "src/CMakeFiles/dlt_ledger.dir/ledger/chain.cpp.o" "gcc" "src/CMakeFiles/dlt_ledger.dir/ledger/chain.cpp.o.d"
  "/root/repo/src/ledger/difficulty.cpp" "src/CMakeFiles/dlt_ledger.dir/ledger/difficulty.cpp.o" "gcc" "src/CMakeFiles/dlt_ledger.dir/ledger/difficulty.cpp.o.d"
  "/root/repo/src/ledger/mempool.cpp" "src/CMakeFiles/dlt_ledger.dir/ledger/mempool.cpp.o" "gcc" "src/CMakeFiles/dlt_ledger.dir/ledger/mempool.cpp.o.d"
  "/root/repo/src/ledger/offchain.cpp" "src/CMakeFiles/dlt_ledger.dir/ledger/offchain.cpp.o" "gcc" "src/CMakeFiles/dlt_ledger.dir/ledger/offchain.cpp.o.d"
  "/root/repo/src/ledger/spv.cpp" "src/CMakeFiles/dlt_ledger.dir/ledger/spv.cpp.o" "gcc" "src/CMakeFiles/dlt_ledger.dir/ledger/spv.cpp.o.d"
  "/root/repo/src/ledger/transaction.cpp" "src/CMakeFiles/dlt_ledger.dir/ledger/transaction.cpp.o" "gcc" "src/CMakeFiles/dlt_ledger.dir/ledger/transaction.cpp.o.d"
  "/root/repo/src/ledger/utxo.cpp" "src/CMakeFiles/dlt_ledger.dir/ledger/utxo.cpp.o" "gcc" "src/CMakeFiles/dlt_ledger.dir/ledger/utxo.cpp.o.d"
  "/root/repo/src/ledger/validation.cpp" "src/CMakeFiles/dlt_ledger.dir/ledger/validation.cpp.o" "gcc" "src/CMakeFiles/dlt_ledger.dir/ledger/validation.cpp.o.d"
  "/root/repo/src/ledger/wallet.cpp" "src/CMakeFiles/dlt_ledger.dir/ledger/wallet.cpp.o" "gcc" "src/CMakeFiles/dlt_ledger.dir/ledger/wallet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dlt_datastruct.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
