file(REMOVE_RECURSE
  "CMakeFiles/dlt_ledger.dir/ledger/block.cpp.o"
  "CMakeFiles/dlt_ledger.dir/ledger/block.cpp.o.d"
  "CMakeFiles/dlt_ledger.dir/ledger/chain.cpp.o"
  "CMakeFiles/dlt_ledger.dir/ledger/chain.cpp.o.d"
  "CMakeFiles/dlt_ledger.dir/ledger/difficulty.cpp.o"
  "CMakeFiles/dlt_ledger.dir/ledger/difficulty.cpp.o.d"
  "CMakeFiles/dlt_ledger.dir/ledger/mempool.cpp.o"
  "CMakeFiles/dlt_ledger.dir/ledger/mempool.cpp.o.d"
  "CMakeFiles/dlt_ledger.dir/ledger/offchain.cpp.o"
  "CMakeFiles/dlt_ledger.dir/ledger/offchain.cpp.o.d"
  "CMakeFiles/dlt_ledger.dir/ledger/spv.cpp.o"
  "CMakeFiles/dlt_ledger.dir/ledger/spv.cpp.o.d"
  "CMakeFiles/dlt_ledger.dir/ledger/transaction.cpp.o"
  "CMakeFiles/dlt_ledger.dir/ledger/transaction.cpp.o.d"
  "CMakeFiles/dlt_ledger.dir/ledger/utxo.cpp.o"
  "CMakeFiles/dlt_ledger.dir/ledger/utxo.cpp.o.d"
  "CMakeFiles/dlt_ledger.dir/ledger/validation.cpp.o"
  "CMakeFiles/dlt_ledger.dir/ledger/validation.cpp.o.d"
  "CMakeFiles/dlt_ledger.dir/ledger/wallet.cpp.o"
  "CMakeFiles/dlt_ledger.dir/ledger/wallet.cpp.o.d"
  "libdlt_ledger.a"
  "libdlt_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
