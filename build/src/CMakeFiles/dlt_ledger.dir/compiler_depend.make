# Empty compiler generated dependencies file for dlt_ledger.
# This may be replaced when dependencies are built.
