file(REMOVE_RECURSE
  "libdlt_ledger.a"
)
