file(REMOVE_RECURSE
  "CMakeFiles/dlt_privacy.dir/privacy/commitment.cpp.o"
  "CMakeFiles/dlt_privacy.dir/privacy/commitment.cpp.o.d"
  "CMakeFiles/dlt_privacy.dir/privacy/mixer.cpp.o"
  "CMakeFiles/dlt_privacy.dir/privacy/mixer.cpp.o.d"
  "CMakeFiles/dlt_privacy.dir/privacy/multichannel.cpp.o"
  "CMakeFiles/dlt_privacy.dir/privacy/multichannel.cpp.o.d"
  "CMakeFiles/dlt_privacy.dir/privacy/taint.cpp.o"
  "CMakeFiles/dlt_privacy.dir/privacy/taint.cpp.o.d"
  "libdlt_privacy.a"
  "libdlt_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
