# Empty compiler generated dependencies file for dlt_privacy.
# This may be replaced when dependencies are built.
