file(REMOVE_RECURSE
  "libdlt_privacy.a"
)
