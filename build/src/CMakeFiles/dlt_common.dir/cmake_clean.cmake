file(REMOVE_RECURSE
  "CMakeFiles/dlt_common.dir/common/bytes.cpp.o"
  "CMakeFiles/dlt_common.dir/common/bytes.cpp.o.d"
  "CMakeFiles/dlt_common.dir/common/log.cpp.o"
  "CMakeFiles/dlt_common.dir/common/log.cpp.o.d"
  "CMakeFiles/dlt_common.dir/common/rng.cpp.o"
  "CMakeFiles/dlt_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/dlt_common.dir/common/serialize.cpp.o"
  "CMakeFiles/dlt_common.dir/common/serialize.cpp.o.d"
  "libdlt_common.a"
  "libdlt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
