# Empty dependencies file for dlt_common.
# This may be replaced when dependencies are built.
