file(REMOVE_RECURSE
  "libdlt_common.a"
)
