file(REMOVE_RECURSE
  "CMakeFiles/dlt_contract.dir/contract/assembler.cpp.o"
  "CMakeFiles/dlt_contract.dir/contract/assembler.cpp.o.d"
  "CMakeFiles/dlt_contract.dir/contract/engine.cpp.o"
  "CMakeFiles/dlt_contract.dir/contract/engine.cpp.o.d"
  "CMakeFiles/dlt_contract.dir/contract/events.cpp.o"
  "CMakeFiles/dlt_contract.dir/contract/events.cpp.o.d"
  "CMakeFiles/dlt_contract.dir/contract/minisol.cpp.o"
  "CMakeFiles/dlt_contract.dir/contract/minisol.cpp.o.d"
  "CMakeFiles/dlt_contract.dir/contract/stdlib.cpp.o"
  "CMakeFiles/dlt_contract.dir/contract/stdlib.cpp.o.d"
  "CMakeFiles/dlt_contract.dir/contract/vm.cpp.o"
  "CMakeFiles/dlt_contract.dir/contract/vm.cpp.o.d"
  "libdlt_contract.a"
  "libdlt_contract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
