# Empty dependencies file for dlt_contract.
# This may be replaced when dependencies are built.
