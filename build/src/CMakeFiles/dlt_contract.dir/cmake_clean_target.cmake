file(REMOVE_RECURSE
  "libdlt_contract.a"
)
