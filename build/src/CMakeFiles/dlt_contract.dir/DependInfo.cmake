
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contract/assembler.cpp" "src/CMakeFiles/dlt_contract.dir/contract/assembler.cpp.o" "gcc" "src/CMakeFiles/dlt_contract.dir/contract/assembler.cpp.o.d"
  "/root/repo/src/contract/engine.cpp" "src/CMakeFiles/dlt_contract.dir/contract/engine.cpp.o" "gcc" "src/CMakeFiles/dlt_contract.dir/contract/engine.cpp.o.d"
  "/root/repo/src/contract/events.cpp" "src/CMakeFiles/dlt_contract.dir/contract/events.cpp.o" "gcc" "src/CMakeFiles/dlt_contract.dir/contract/events.cpp.o.d"
  "/root/repo/src/contract/minisol.cpp" "src/CMakeFiles/dlt_contract.dir/contract/minisol.cpp.o" "gcc" "src/CMakeFiles/dlt_contract.dir/contract/minisol.cpp.o.d"
  "/root/repo/src/contract/stdlib.cpp" "src/CMakeFiles/dlt_contract.dir/contract/stdlib.cpp.o" "gcc" "src/CMakeFiles/dlt_contract.dir/contract/stdlib.cpp.o.d"
  "/root/repo/src/contract/vm.cpp" "src/CMakeFiles/dlt_contract.dir/contract/vm.cpp.o" "gcc" "src/CMakeFiles/dlt_contract.dir/contract/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dlt_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_datastruct.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
