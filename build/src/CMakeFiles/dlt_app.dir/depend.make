# Empty dependencies file for dlt_app.
# This may be replaced when dependencies are built.
