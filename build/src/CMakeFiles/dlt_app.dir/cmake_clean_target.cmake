file(REMOVE_RECURSE
  "libdlt_app.a"
)
