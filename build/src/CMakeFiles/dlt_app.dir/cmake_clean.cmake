file(REMOVE_RECURSE
  "CMakeFiles/dlt_app.dir/app/analytics.cpp.o"
  "CMakeFiles/dlt_app.dir/app/analytics.cpp.o.d"
  "CMakeFiles/dlt_app.dir/app/dataintegration.cpp.o"
  "CMakeFiles/dlt_app.dir/app/dataintegration.cpp.o.d"
  "CMakeFiles/dlt_app.dir/app/identity.cpp.o"
  "CMakeFiles/dlt_app.dir/app/identity.cpp.o.d"
  "CMakeFiles/dlt_app.dir/app/usecase.cpp.o"
  "CMakeFiles/dlt_app.dir/app/usecase.cpp.o.d"
  "libdlt_app.a"
  "libdlt_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
