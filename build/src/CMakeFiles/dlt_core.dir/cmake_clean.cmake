file(REMOVE_RECURSE
  "CMakeFiles/dlt_core.dir/core/abci.cpp.o"
  "CMakeFiles/dlt_core.dir/core/abci.cpp.o.d"
  "CMakeFiles/dlt_core.dir/core/chainspec.cpp.o"
  "CMakeFiles/dlt_core.dir/core/chainspec.cpp.o.d"
  "CMakeFiles/dlt_core.dir/core/dcs.cpp.o"
  "CMakeFiles/dlt_core.dir/core/dcs.cpp.o.d"
  "CMakeFiles/dlt_core.dir/core/experiment.cpp.o"
  "CMakeFiles/dlt_core.dir/core/experiment.cpp.o.d"
  "libdlt_core.a"
  "libdlt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
