file(REMOVE_RECURSE
  "libdlt_core.a"
)
