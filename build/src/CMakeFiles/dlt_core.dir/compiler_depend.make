# Empty compiler generated dependencies file for dlt_core.
# This may be replaced when dependencies are built.
