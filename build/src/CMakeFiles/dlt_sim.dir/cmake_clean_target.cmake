file(REMOVE_RECURSE
  "libdlt_sim.a"
)
