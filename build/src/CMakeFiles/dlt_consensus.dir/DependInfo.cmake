
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/attack.cpp" "src/CMakeFiles/dlt_consensus.dir/consensus/attack.cpp.o" "gcc" "src/CMakeFiles/dlt_consensus.dir/consensus/attack.cpp.o.d"
  "/root/repo/src/consensus/bitcoinng.cpp" "src/CMakeFiles/dlt_consensus.dir/consensus/bitcoinng.cpp.o" "gcc" "src/CMakeFiles/dlt_consensus.dir/consensus/bitcoinng.cpp.o.d"
  "/root/repo/src/consensus/nakamoto.cpp" "src/CMakeFiles/dlt_consensus.dir/consensus/nakamoto.cpp.o" "gcc" "src/CMakeFiles/dlt_consensus.dir/consensus/nakamoto.cpp.o.d"
  "/root/repo/src/consensus/ordering.cpp" "src/CMakeFiles/dlt_consensus.dir/consensus/ordering.cpp.o" "gcc" "src/CMakeFiles/dlt_consensus.dir/consensus/ordering.cpp.o.d"
  "/root/repo/src/consensus/pbft.cpp" "src/CMakeFiles/dlt_consensus.dir/consensus/pbft.cpp.o" "gcc" "src/CMakeFiles/dlt_consensus.dir/consensus/pbft.cpp.o.d"
  "/root/repo/src/consensus/poet.cpp" "src/CMakeFiles/dlt_consensus.dir/consensus/poet.cpp.o" "gcc" "src/CMakeFiles/dlt_consensus.dir/consensus/poet.cpp.o.d"
  "/root/repo/src/consensus/pos.cpp" "src/CMakeFiles/dlt_consensus.dir/consensus/pos.cpp.o" "gcc" "src/CMakeFiles/dlt_consensus.dir/consensus/pos.cpp.o.d"
  "/root/repo/src/consensus/pow.cpp" "src/CMakeFiles/dlt_consensus.dir/consensus/pow.cpp.o" "gcc" "src/CMakeFiles/dlt_consensus.dir/consensus/pow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dlt_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_datastruct.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
