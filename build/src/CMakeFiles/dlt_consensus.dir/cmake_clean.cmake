file(REMOVE_RECURSE
  "CMakeFiles/dlt_consensus.dir/consensus/attack.cpp.o"
  "CMakeFiles/dlt_consensus.dir/consensus/attack.cpp.o.d"
  "CMakeFiles/dlt_consensus.dir/consensus/bitcoinng.cpp.o"
  "CMakeFiles/dlt_consensus.dir/consensus/bitcoinng.cpp.o.d"
  "CMakeFiles/dlt_consensus.dir/consensus/nakamoto.cpp.o"
  "CMakeFiles/dlt_consensus.dir/consensus/nakamoto.cpp.o.d"
  "CMakeFiles/dlt_consensus.dir/consensus/ordering.cpp.o"
  "CMakeFiles/dlt_consensus.dir/consensus/ordering.cpp.o.d"
  "CMakeFiles/dlt_consensus.dir/consensus/pbft.cpp.o"
  "CMakeFiles/dlt_consensus.dir/consensus/pbft.cpp.o.d"
  "CMakeFiles/dlt_consensus.dir/consensus/poet.cpp.o"
  "CMakeFiles/dlt_consensus.dir/consensus/poet.cpp.o.d"
  "CMakeFiles/dlt_consensus.dir/consensus/pos.cpp.o"
  "CMakeFiles/dlt_consensus.dir/consensus/pos.cpp.o.d"
  "CMakeFiles/dlt_consensus.dir/consensus/pow.cpp.o"
  "CMakeFiles/dlt_consensus.dir/consensus/pow.cpp.o.d"
  "libdlt_consensus.a"
  "libdlt_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
