file(REMOVE_RECURSE
  "libdlt_consensus.a"
)
