# Empty compiler generated dependencies file for dlt_consensus.
# This may be replaced when dependencies are built.
