# Empty dependencies file for dlt_net.
# This may be replaced when dependencies are built.
