file(REMOVE_RECURSE
  "CMakeFiles/dlt_net.dir/net/gossip.cpp.o"
  "CMakeFiles/dlt_net.dir/net/gossip.cpp.o.d"
  "CMakeFiles/dlt_net.dir/net/network.cpp.o"
  "CMakeFiles/dlt_net.dir/net/network.cpp.o.d"
  "libdlt_net.a"
  "libdlt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
