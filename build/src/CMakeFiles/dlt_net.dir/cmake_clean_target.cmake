file(REMOVE_RECURSE
  "libdlt_net.a"
)
