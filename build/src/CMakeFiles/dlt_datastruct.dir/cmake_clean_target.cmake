file(REMOVE_RECURSE
  "libdlt_datastruct.a"
)
