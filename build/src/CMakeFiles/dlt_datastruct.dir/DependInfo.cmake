
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datastruct/bloom.cpp" "src/CMakeFiles/dlt_datastruct.dir/datastruct/bloom.cpp.o" "gcc" "src/CMakeFiles/dlt_datastruct.dir/datastruct/bloom.cpp.o.d"
  "/root/repo/src/datastruct/iavl.cpp" "src/CMakeFiles/dlt_datastruct.dir/datastruct/iavl.cpp.o" "gcc" "src/CMakeFiles/dlt_datastruct.dir/datastruct/iavl.cpp.o.d"
  "/root/repo/src/datastruct/merkle.cpp" "src/CMakeFiles/dlt_datastruct.dir/datastruct/merkle.cpp.o" "gcc" "src/CMakeFiles/dlt_datastruct.dir/datastruct/merkle.cpp.o.d"
  "/root/repo/src/datastruct/mpt.cpp" "src/CMakeFiles/dlt_datastruct.dir/datastruct/mpt.cpp.o" "gcc" "src/CMakeFiles/dlt_datastruct.dir/datastruct/mpt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dlt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
