# Empty dependencies file for dlt_datastruct.
# This may be replaced when dependencies are built.
