file(REMOVE_RECURSE
  "CMakeFiles/dlt_datastruct.dir/datastruct/bloom.cpp.o"
  "CMakeFiles/dlt_datastruct.dir/datastruct/bloom.cpp.o.d"
  "CMakeFiles/dlt_datastruct.dir/datastruct/iavl.cpp.o"
  "CMakeFiles/dlt_datastruct.dir/datastruct/iavl.cpp.o.d"
  "CMakeFiles/dlt_datastruct.dir/datastruct/merkle.cpp.o"
  "CMakeFiles/dlt_datastruct.dir/datastruct/merkle.cpp.o.d"
  "CMakeFiles/dlt_datastruct.dir/datastruct/mpt.cpp.o"
  "CMakeFiles/dlt_datastruct.dir/datastruct/mpt.cpp.o.d"
  "libdlt_datastruct.a"
  "libdlt_datastruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_datastruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
