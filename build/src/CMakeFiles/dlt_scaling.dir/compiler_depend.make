# Empty compiler generated dependencies file for dlt_scaling.
# This may be replaced when dependencies are built.
