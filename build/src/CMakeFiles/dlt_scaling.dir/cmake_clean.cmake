file(REMOVE_RECURSE
  "CMakeFiles/dlt_scaling.dir/scaling/atomicswap.cpp.o"
  "CMakeFiles/dlt_scaling.dir/scaling/atomicswap.cpp.o.d"
  "CMakeFiles/dlt_scaling.dir/scaling/bootstrap.cpp.o"
  "CMakeFiles/dlt_scaling.dir/scaling/bootstrap.cpp.o.d"
  "CMakeFiles/dlt_scaling.dir/scaling/channels.cpp.o"
  "CMakeFiles/dlt_scaling.dir/scaling/channels.cpp.o.d"
  "CMakeFiles/dlt_scaling.dir/scaling/sharding.cpp.o"
  "CMakeFiles/dlt_scaling.dir/scaling/sharding.cpp.o.d"
  "CMakeFiles/dlt_scaling.dir/scaling/sidechain.cpp.o"
  "CMakeFiles/dlt_scaling.dir/scaling/sidechain.cpp.o.d"
  "libdlt_scaling.a"
  "libdlt_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
