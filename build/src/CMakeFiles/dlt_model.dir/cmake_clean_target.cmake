file(REMOVE_RECURSE
  "libdlt_model.a"
)
