file(REMOVE_RECURSE
  "CMakeFiles/dlt_model.dir/model/workflow.cpp.o"
  "CMakeFiles/dlt_model.dir/model/workflow.cpp.o.d"
  "libdlt_model.a"
  "libdlt_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
