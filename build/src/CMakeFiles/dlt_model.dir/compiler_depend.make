# Empty compiler generated dependencies file for dlt_model.
# This may be replaced when dependencies are built.
