// E20 — §5.4 (PoET): trusted wait-timers elect leaders uniformly with no hash
// grinding; round duration shrinks as 1/n (min of n exponentials), and forged
// (shortened) wait certificates are detected.
#include <map>

#include "bench_util.hpp"
#include "consensus/poet.hpp"
#include "crypto/sha256.hpp"

using namespace dlt;
using namespace dlt::consensus;

int main() {
    bench::Run bench_run("E20");
    bench::ObsEnv obs_env;
    bench::title("E20: Proof-of-Elapsed-Time (§5.4)",
                 "Claim: SGX-style wait timers give fair, computation-free leader "
                 "election; certificates are verifiable.");

    const Hash256 seed = crypto::sha256(to_bytes("e20"));
    const double mean_wait = 20.0;

    // Fairness across peers.
    {
        bench::Table table({"peers", "rounds", "min-win-share", "max-win-share",
                            "ideal"});
        for (const std::uint32_t peers : {4u, 16u, 64u}) {
            std::map<std::uint32_t, int> wins;
            const int rounds = 20000;
            for (int r = 0; r < rounds; ++r)
                ++wins[poet_round_winner(seed, static_cast<std::uint64_t>(r) +
                                                   100000ull * peers,
                                         peers, mean_wait)];
            double min_share = 1.0, max_share = 0.0;
            for (std::uint32_t p = 0; p < peers; ++p) {
                const double share = wins[p] / double(rounds);
                min_share = std::min(min_share, share);
                max_share = std::max(max_share, share);
            }
            table.row({bench::fmt_int(peers), bench::fmt_int(rounds),
                       bench::fmt(min_share, 4), bench::fmt(max_share, 4),
                       bench::fmt(1.0 / peers, 4)});
        }
        table.print();
    }

    // Round duration scales as mean/n.
    std::printf("\nRound duration (min of n draws, mean wait %.0f s):\n", mean_wait);
    {
        bench::Table table({"peers", "mean-round-s", "expected(mean/n)"});
        for (const std::uint32_t peers : {4u, 16u, 64u}) {
            double sum = 0;
            const int rounds = 5000;
            for (int r = 0; r < rounds; ++r)
                sum += poet_round_duration(seed, static_cast<std::uint64_t>(r), peers,
                                           mean_wait);
            table.row({bench::fmt_int(peers), bench::fmt(sum / rounds, 3),
                       bench::fmt(mean_wait / peers, 3)});
        }
        table.print();
    }

    // Certificate verification catches cheaters.
    {
        int detected = 0;
        const int attempts = 1000;
        for (int i = 0; i < attempts; ++i) {
            WaitCertificate cert = poet_draw(seed, static_cast<std::uint64_t>(i), 3, mean_wait);
            cert.wait_seconds *= 0.01; // claim a 100x shorter wait
            if (!verify_wait_certificate(cert, seed, mean_wait)) ++detected;
        }
        std::printf("\nForged wait certificates detected: %d/%d\n", detected, attempts);
    }

    std::printf("\nExpected shape: win shares hug 1/n for every n (fairness "
                "without hashing); round time scales as mean/n; all forged "
                "certificates are caught — the SGX contract, minus the SGX.\n");
    return 0;
}
