// E11 — §5.2/§5.4 (Lightning): off-chain payment channels serve unbounded
// payment volume against a constant number of on-chain transactions (open +
// close), with instant finality instead of block-interval confirmation.
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "scaling/channels.hpp"

using namespace dlt;
using namespace dlt::scaling;

int main() {
    bench::Run bench_run("E11");
    bench::ObsEnv obs_env;
    bench::title("E11: off-chain payment channels (§5.2/§5.4)",
                 "Claim: many payments per on-chain settlement; latency decouples "
                 "from the block interval.");

    bench::Table table({"payments-routed", "onchain-txs", "offchain/onchain",
                        "channels", "value-conserved"});

    for (const int payments : {100, 1000, 10000}) {
        ChannelNetwork net;
        std::vector<std::size_t> nodes;
        const int n = 10;
        for (int i = 0; i < n; ++i)
            nodes.push_back(net.add_node("e11-" + std::to_string(payments) + "-" +
                                         std::to_string(i)));
        // Ring + two chords: everyone reachable within a few hops.
        ledger::Amount funding_total = 0;
        for (int i = 0; i < n; ++i) {
            net.open_channel(nodes[i], nodes[(i + 1) % n], 1'000'000, 1'000'000);
            funding_total += 2'000'000;
        }
        net.open_channel(nodes[0], nodes[n / 2], 1'000'000, 1'000'000);
        net.open_channel(nodes[2], nodes[7], 1'000'000, 1'000'000);
        funding_total += 4'000'000;

        Rng rng(1100 + payments);
        int routed = 0;
        for (int i = 0; i < payments; ++i) {
            const auto src = nodes[rng.index(nodes.size())];
            const auto dst = nodes[rng.index(nodes.size())];
            if (src == dst) continue;
            if (net.route_payment(src, dst, 1 + static_cast<ledger::Amount>(rng.uniform(50))))
                ++routed;
        }
        net.settle_all();

        ledger::Amount settled_total = 0;
        for (const auto node : nodes) settled_total += net.settled_balance(node);

        table.row({bench::fmt_int(routed), bench::fmt_int(net.onchain_tx_count()),
                   bench::fmt(static_cast<double>(net.offchain_payment_count()) /
                                  static_cast<double>(net.onchain_tx_count()),
                              1),
                   bench::fmt_int(net.channel_count()),
                   settled_total == funding_total ? "yes" : "NO"});
    }
    table.print();

    std::printf("\nLatency comparison: a channel payment needs two signatures "
                "(sub-millisecond here, milliseconds in practice) vs one block "
                "interval (600 s on Bitcoin) for an on-chain payment.\n");
    std::printf("\nExpected shape: on-chain txs stay constant (opens + closes) "
                "while routed volume grows 100x; value is conserved through "
                "settlement.\n");
    return 0;
}
