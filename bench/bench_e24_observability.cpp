// E24 — observability overhead: the metrics/tracing layer must be cheap
// enough to leave on. Measures (1) the micro-cost of the registry primitives
// (counter inc, histogram record), (2) end-to-end overhead of full tracing +
// lifecycle tracking on E2's signed-validation path (the most host-intensive
// simulation workload), and (3) that simulation outcomes are identical with
// observability on and off — metrics are pure observers.
#include <cinttypes>
#include <filesystem>

#include "bench_util.hpp"
#include "consensus/nakamoto.hpp"
#include "crypto/keys.hpp"
#include "crypto/sigcache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/txlifecycle.hpp"
#include "storage/lsm_backend.hpp"

using namespace dlt;

namespace {

struct SignedRunResult {
    Hash256 tip;
    std::uint64_t height = 0;
    std::uint64_t confirmed = 0;
    std::uint64_t submitted = 0;
    double wall_s = 0;
};

// E2's full-ECDSA section: 8 peers, 30 s blocks, SigCheckMode::kFull, signed
// record transactions at 2 tps for 600 virtual seconds. Identical seeds every
// call, so any two runs must produce identical chains.
SignedRunResult run_signed_workload(const std::vector<crypto::PrivateKey>& signers) {
    bench::Timer timer;
    consensus::NakamotoParams params;
    params.node_count = 8;
    params.block_interval = 30.0;
    params.validation.sig_mode = ledger::SigCheckMode::kFull;
    consensus::NakamotoNetwork net(params, 99);
    net.start();

    Rng rng(101);
    const double duration = 600.0;
    const double tx_rate = 2.0;
    std::uint64_t sequence = 0;
    double next = rng.exponential(tx_rate);
    while (next < duration) {
        net.run_for(next - net.now());
        ledger::Transaction tx;
        tx.kind = ledger::TxKind::kRecord;
        tx.nonce = sequence;
        tx.data = Bytes(170, 0xE2);
        tx.declared_fee = 100;
        tx.sign_with(signers[sequence % signers.size()]);
        ++sequence;
        net.submit_transaction(tx, static_cast<net::NodeId>(rng.uniform(8)));
        next += rng.exponential(tx_rate);
    }
    net.run_for(duration - net.now() + 120.0);

    SignedRunResult r;
    r.tip = net.tip_of(0);
    r.height = net.height_of(0);
    r.submitted = sequence;
    r.confirmed = net.confirmed_tx_count();
    r.wall_s = timer.elapsed_s();
    return r;
}

} // namespace

int main() {
    bench::Run run("E24");
    // This bench measures the tracer itself and flips set_enabled() per
    // section, overriding ObsEnv's initial enable; a requested DLT_TRACE
    // artifact therefore holds only the "obs on" section's events.
    bench::ObsEnv obs_env;
    bench::title("E24: observability overhead",
                 "Claim: registry counters cost nanoseconds, full tracing + "
                 "lifecycle tracking stays under 3% on the signed-validation "
                 "path, and outputs are identical with observability on or off.");

    auto& registry = obs::MetricsRegistry::global();

    std::printf("Primitive micro-costs (hot loop, single thread):\n");
    {
        constexpr std::uint64_t kIncs = 50'000'000;
        auto& counter = registry.counter("e24_bench_counter", "micro-bench target");
        bench::Timer t;
        for (std::uint64_t i = 0; i < kIncs; ++i) counter.inc();
        const double ns_inc = t.elapsed_s() * 1e9 / static_cast<double>(kIncs);

        constexpr std::uint64_t kRecords = 10'000'000;
        auto& histogram =
            registry.histogram("e24_bench_histogram", "micro-bench target");
        bench::Timer th;
        for (std::uint64_t i = 0; i < kRecords; ++i)
            histogram.record(static_cast<double>(i & 0xFFFF) * 1e-6);
        const double ns_rec = t.elapsed_s() > 0
                                  ? th.elapsed_s() * 1e9 / static_cast<double>(kRecords)
                                  : 0.0;

        // Hot family lookup: the shared_mutex + string-keyed map path vs the
        // dense-index fast lane (both resolve the same 16 children, round-robin
        // like a per-node counter on the message path).
        constexpr std::uint64_t kLookups = 10'000'000;
        constexpr std::size_t kChildren = 16;
        auto& family = registry.counter_family(
            "e24_bench_family", "micro-bench target", {"node_id"});
        obs::LabelValues labels[kChildren];
        for (std::size_t i = 0; i < kChildren; ++i)
            labels[i] = {std::to_string(i)};
        bench::Timer tw;
        for (std::uint64_t i = 0; i < kLookups; ++i)
            family.with(labels[i % kChildren]).inc();
        const double ns_with = tw.elapsed_s() * 1e9 / static_cast<double>(kLookups);
        bench::Timer ti;
        for (std::uint64_t i = 0; i < kLookups; ++i)
            family.with_index(i % kChildren).inc();
        const double ns_with_index =
            ti.elapsed_s() * 1e9 / static_cast<double>(kLookups);

        bench::Table table({"operation", "iterations", "ns/op"});
        table.row({"Counter::inc", bench::fmt_int(kIncs), bench::fmt(ns_inc, 2)});
        table.row({"Histogram::record", bench::fmt_int(kRecords),
                   bench::fmt(ns_rec, 2)});
        table.row({"Family::with (map)", bench::fmt_int(kLookups),
                   bench::fmt(ns_with, 2)});
        table.row({"Family::with_index (dense)", bench::fmt_int(kLookups),
                   bench::fmt(ns_with_index, 2)});
        table.print();
        run.metric("ns_per_counter_inc", ns_inc);
        run.metric("ns_per_histogram_record", ns_rec);
        run.metric("ns_per_family_with", ns_with);
        run.metric("ns_per_family_with_index", ns_with_index);
        run.metric("family_dense_speedup",
                   ns_with_index > 0 ? ns_with / ns_with_index : 0.0);
    }

    std::printf("\nState-engine (E28) instrumentation on the lookup hot path:\n");
    {
        // The LSM backend resolves its counters by name on every run probe —
        // the same string-keyed slow lane measured above, now on a real hot
        // path. Measure that resolve+inc cost, then drive a small engine
        // through flushes/compactions/misses so the state_* keys are live.
        constexpr std::uint64_t kResolves = 2'000'000;
        bench::Timer tr;
        for (std::uint64_t i = 0; i < kResolves; ++i)
            registry.counter("state_run_probes_total", "Sorted-run lookups attempted")
                .inc();
        const double ns_resolve =
            tr.elapsed_s() * 1e9 / static_cast<double>(kResolves);
        registry
            .counter("state_run_probes_total", "Sorted-run lookups attempted")
            .reset();

        const auto dir =
            std::filesystem::temp_directory_path() / "dlt-bench-e24-state";
        std::filesystem::remove_all(dir);
        {
            storage::LsmOptions options;
            options.memtable_limit = 64;
            options.compact_trigger = 3;
            options.fsync = storage::FsyncMode::kNever;
            storage::LsmBackend engine(dir, options);
            Rng rng(0xE24);
            std::vector<ledger::OutPoint> keys;
            for (std::uint64_t tag = 1; tag <= 20; ++tag) {
                for (int i = 0; i < 64; ++i) {
                    ledger::OutPoint op;
                    for (std::size_t b = 0; b < Hash256::size(); ++b)
                        op.txid[b] = static_cast<std::uint8_t>(rng.uniform(256));
                    op.index = static_cast<std::uint32_t>(rng.uniform(4));
                    engine.put(op, ledger::TxOutput{100, crypto::Address{}});
                    keys.push_back(op);
                }
                engine.commit_batch(tag, ByteView{});
            }
            for (const auto& op : keys) (void)engine.get(op);    // run hits
            for (int i = 0; i < 512; ++i) {                      // bloom-filtered misses
                ledger::OutPoint op;
                for (std::size_t b = 0; b < Hash256::size(); ++b)
                    op.txid[b] = static_cast<std::uint8_t>(rng.uniform(256));
                (void)engine.get(op);
            }
        }
        std::filesystem::remove_all(dir);

        const std::uint64_t flushes =
            registry.counter("state_runs_flushed_total", "").value();
        const std::uint64_t compactions =
            registry.counter("state_compactions_total", "").value();
        const std::uint64_t probes =
            registry.counter("state_run_probes_total", "").value();
        const std::uint64_t bloom_skips =
            registry.counter("state_bloom_skips_total", "").value();
        bench::Table table({"metric", "value"});
        table.row({"counter resolve+inc (ns/op)", bench::fmt(ns_resolve, 2)});
        table.row({"state_runs_flushed_total", bench::fmt_int(flushes)});
        table.row({"state_compactions_total", bench::fmt_int(compactions)});
        table.row({"state_run_probes_total", bench::fmt_int(probes)});
        table.row({"state_bloom_skips_total", bench::fmt_int(bloom_skips)});
        table.print();
        run.metric("ns_per_state_counter_resolve", ns_resolve);
        run.metric("state_runs_flushed_total", flushes);
        run.metric("state_compactions_total", compactions);
        run.metric("state_run_probes_total", probes);
        run.metric("state_bloom_skips_total", bloom_skips);
    }

    std::printf("\nEnd-to-end overhead on the E2 signed-validation workload:\n");
    {
        std::vector<crypto::PrivateKey> signers;
        for (int i = 0; i < 16; ++i)
            signers.push_back(
                crypto::PrivateKey::from_seed("e02/signer/" + std::to_string(i)));

        // Warm-up run: populates the pubkey-decode memo and fills instruction
        // caches, so the measured pair compares tracing cost, not cold-start.
        obs::Tracer::global().set_enabled(false);
        crypto::SigCache::global().clear();
        (void)run_signed_workload(signers);

        // Baseline: counters on (they always are), tracer off.
        crypto::SigCache::global().clear();
        const SignedRunResult off = run_signed_workload(signers);

        // Full observability: tracer buffering every block/reorg/tx event.
        crypto::SigCache::global().clear();
        obs::Tracer::global().clear();
        obs::Tracer::global().set_enabled(true);
        const SignedRunResult on = run_signed_workload(signers);
        obs::Tracer::global().set_enabled(false);

        const double overhead_pct =
            off.wall_s > 0 ? (on.wall_s - off.wall_s) / off.wall_s * 100.0 : 0.0;
        const bool identical = off.tip == on.tip && off.height == on.height &&
                               off.confirmed == on.confirmed;

        bench::Table table(
            {"mode", "wall-s", "height", "confirmed", "trace-events"});
        table.row({"obs off", bench::fmt(off.wall_s), bench::fmt_int(off.height),
                   bench::fmt_int(off.confirmed), "0"});
        table.row({"obs on", bench::fmt(on.wall_s), bench::fmt_int(on.height),
                   bench::fmt_int(on.confirmed),
                   bench::fmt_int(obs::Tracer::global().size())});
        table.print();
        std::printf("overhead: %+.2f%%  outcomes identical: %s\n", overhead_pct,
                    identical ? "yes" : "NO — determinism violation");

        run.metric("signed_wall_s_obs_off", off.wall_s);
        run.metric("signed_wall_s_obs_on", on.wall_s);
        run.metric("overhead_pct", overhead_pct);
        run.metric("outcomes_identical",
                   static_cast<std::uint64_t>(identical ? 1 : 0));
        run.metric("trace_events", obs::Tracer::global().size());
    }

    std::printf("\nTransaction lifecycle distribution (from the traced run):\n");
    {
        // Re-run once more with a lifecycle readout: submit -> k-deep-final
        // latency quantiles through a registry histogram.
        std::vector<crypto::PrivateKey> signers;
        for (int i = 0; i < 16; ++i)
            signers.push_back(
                crypto::PrivateKey::from_seed("e02/signer/" + std::to_string(i)));
        crypto::SigCache::global().clear();

        consensus::NakamotoParams params;
        params.node_count = 8;
        params.block_interval = 30.0;
        params.validation.sig_mode = ledger::SigCheckMode::kFull;
        consensus::NakamotoNetwork net(params, 99);
        net.start();
        Rng rng(101);
        std::uint64_t sequence = 0;
        double next = rng.exponential(2.0);
        while (next < 600.0) {
            net.run_for(next - net.now());
            ledger::Transaction tx;
            tx.kind = ledger::TxKind::kRecord;
            tx.nonce = sequence;
            tx.data = Bytes(170, 0xE2);
            tx.declared_fee = 100;
            tx.sign_with(signers[sequence % signers.size()]);
            ++sequence;
            net.submit_transaction(tx, static_cast<net::NodeId>(rng.uniform(8)));
            next += rng.exponential(2.0);
        }
        net.run_for(600.0 - net.now() + 600.0); // long tail so txs go k-deep

        auto& latency = registry.histogram(
            "confirmation_latency_seconds",
            "Submit to k-deep-final latency (virtual seconds)",
            {0.1, 2.0, 24});
        net.lifecycle().record_latencies(obs::TxStage::kSubmitted,
                                         obs::TxStage::kFinal, latency);

        bench::Table table({"tracked", "finalized", "p50-s", "p90-s", "p99-s"});
        table.row({bench::fmt_int(net.lifecycle().tracked()),
                   bench::fmt_int(net.lifecycle().finalized()),
                   bench::fmt(latency.quantile(0.5), 0),
                   bench::fmt(latency.quantile(0.9), 0),
                   bench::fmt(latency.quantile(0.99), 0)});
        table.print();

        run.metric("lifecycle_tracked", net.lifecycle().tracked());
        run.metric("lifecycle_finalized", net.lifecycle().finalized());
        run.metric("final_latency_p50_s", latency.quantile(0.5));
        run.metric("final_latency_p99_s", latency.quantile(0.99));
    }

    std::printf("\nExpected shape: counter inc in single-digit nanoseconds, "
                "overhead within noise of 0%% (hard gate: < 3%%), identical "
                "outcomes, and a k-deep latency distribution centered a few "
                "block intervals past submission.\n");
    return 0;
}
