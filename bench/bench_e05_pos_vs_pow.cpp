// E5 — §2.4/§5.4: Proof-of-Stake "substantially reduces the computational
// efforts required to preserve safety" relative to Proof-of-Work. Measures
// (a) actual hash evaluations to produce blocks at a given PoW difficulty
// (real SHA-256d grinding) vs the PoS lottery's one-evaluation-per-peer, and
// (b) the analytic ratio across difficulty levels.
#include <chrono>
#include <optional>

#include "bench_util.hpp"
#include "common/threadpool.hpp"
#include "consensus/pos.hpp"
#include "consensus/pow.hpp"
#include "crypto/sha256.hpp"
#include "ledger/difficulty.hpp"

using namespace dlt;
using namespace dlt::consensus;

int main() {
    bench::Run bench_run("E05");
    bench::ObsEnv obs_env;
    bench::title("E5: PoS vs PoW computational effort (§2.4, §5.4)",
                 "Claim: PoS replaces the hash race with one lottery evaluation "
                 "per peer, cutting energy/computation by orders of magnitude.");

    // (a) Real grinding at low difficulty, wall-clock measured. The four
    //     difficulty levels grind concurrently on the global pool (nonce
    //     counts are deterministic; per-row wall-ms reflects the contended
    //     run when the pool has workers).
    {
        bench::Table table({"pow-difficulty-bits", "hashes-to-solve", "wall-ms"});
        struct GrindResult {
            std::optional<std::uint64_t> nonce;
            double wall_ms = 0.0;
        };
        const std::vector<unsigned> bits_list{8u, 12u, 16u, 18u};
        std::vector<GrindResult> results(bits_list.size());
        parallel_for(ThreadPool::global(), 0, bits_list.size(), [&](std::size_t i) {
            ledger::BlockHeader header;
            header.bits = ledger::easy_bits(bits_list[i]);
            header.nonce = 0;
            const auto start = std::chrono::steady_clock::now();
            results[i].nonce = mine_nonce(header, std::uint64_t(1) << (bits_list[i] + 6));
            results[i].wall_ms = std::chrono::duration<double, std::milli>(
                                     std::chrono::steady_clock::now() - start)
                                     .count();
        });
        for (std::size_t i = 0; i < bits_list.size(); ++i) {
            table.row({bench::fmt_int(bits_list[i]),
                       results[i].nonce ? bench::fmt_int(*results[i].nonce + 1)
                                        : "not-found",
                       bench::fmt(results[i].wall_ms, 1)});
        }
        table.print();
    }

    // (b) PoS lottery: per-block cost is one hash per peer, independent of any
    //     difficulty knob; fairness holds (stake-proportional wins).
    {
        std::vector<Staker> stakers;
        for (int i = 0; i < 100; ++i)
            stakers.push_back(Staker{
                crypto::PrivateKey::from_seed("pos-bench-" + std::to_string(i)).address(),
                (i + 1) * ledger::kCoin});
        const StakeDistribution dist(std::move(stakers));
        const Hash256 seed = crypto::sha256(to_bytes("e5"));

        const auto start = std::chrono::steady_clock::now();
        const int blocks = 10000;
        std::size_t checksum = 0;
        for (int slot = 0; slot < blocks; ++slot)
            checksum += slot_leader(seed, static_cast<std::uint64_t>(slot), dist);
        const auto elapsed = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        std::printf("\nPoS: %d blocks forged with 1 lottery hash each: %.1f ms "
                    "total (%.4f ms/block, checksum %zu)\n",
                    blocks, elapsed, elapsed / blocks, checksum);
    }

    // (c) Analytic effort ratio at production difficulties.
    {
        bench::Table table({"pow-difficulty-bits", "pow-hashes/block",
                            "pos-hashes/block(100 peers)", "ratio"});
        for (const unsigned bits : {20u, 32u, 48u}) {
            const auto effort = compare_effort(bits, 100);
            table.row({bench::fmt_int(bits),
                       bench::fmt(effort.hashes_per_block_pow, 0),
                       bench::fmt(effort.hashes_per_block_pos, 0),
                       bench::fmt(effort.hashes_per_block_pow /
                                      effort.hashes_per_block_pos,
                                  0)});
        }
        table.print();
    }

    std::printf("\nExpected shape: PoW hashes grow 2^bits while PoS stays at one "
                "evaluation per peer per slot — a >10^6x effort gap at realistic "
                "difficulty.\n");
    return 0;
}
