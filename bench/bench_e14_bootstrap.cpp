// E14 — §5.4 (bootstrap): joining peers should not need the full chain.
// Compares full initial block download vs checkpoint sync (headers + UTXO
// snapshot + recent blocks) across chain lengths.
#include <filesystem>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "consensus/nakamoto.hpp"
#include "scaling/bootstrap.hpp"
#include "storage/snapshot.hpp"

using namespace dlt;
using namespace dlt::scaling;

int main() {
    bench::Run bench_run("E14");
    bench::ObsEnv obs_env;
    bench::title("E14: new-peer bootstrap (§5.4)",
                 "Claim: checkpoint sync downloads a fraction of the full chain "
                 "and fully validates only the recent suffix.");

    bench::Table table({"chain-blocks", "full-bytes", "ckpt-bytes", "ratio",
                        "full-validated-blocks", "ckpt-validated-blocks"});

    for (const int target_blocks : {100, 400, 1200}) {
        consensus::NakamotoParams params;
        params.node_count = 4;
        params.block_interval = 10.0;
        params.validation.sig_mode = ledger::SigCheckMode::kSkip;
        consensus::NakamotoNetwork net(params, 1400 + target_blocks);
        net.start();
        // Carry a real transaction load (~20 txs/block) so blocks have body:
        // bootstrap cost is about data, not bare headers.
        Rng workload(9 + target_blocks);
        const double duration = 10.0 * target_blocks;
        std::uint64_t seq = 0;
        double next = workload.exponential(2.0);
        while (next < duration) {
            net.run_for(next - net.now());
            ledger::Transaction tx;
            tx.kind = ledger::TxKind::kRecord;
            tx.nonce = seq++;
            tx.data = Bytes(200, 0xCD);
            tx.declared_fee = 10;
            net.submit_transaction(tx, static_cast<net::NodeId>(workload.uniform(4)));
            next += workload.exponential(2.0);
        }
        net.run_for(duration - net.now());

        const auto& chain = net.chain_of(0);
        const Hash256 tip = net.tip_of(0);
        const auto path = chain.path_from_genesis(tip);
        const std::uint64_t cp_height =
            path.size() > 20 ? path.size() - 11 : path.size() / 2;
        const Checkpoint cp = make_checkpoint(chain, tip, cp_height, net.utxo_of(0));

        const BootstrapCost full = full_sync_cost(chain, tip);
        const BootstrapCost fast = checkpoint_sync_cost(chain, tip, cp);

        // Persistency integration (E21): round-trip the checkpoint through an
        // on-disk snapshot; serving it from disk must cost exactly the same.
        {
            const auto snap_dir = std::filesystem::temp_directory_path() /
                                  ("dlt-bench-e14-" + std::to_string(target_blocks));
            std::filesystem::remove_all(snap_dir);
            storage::SnapshotManager snapshots(snap_dir);
            storage::Snapshot snap;
            snap.height = cp.height;
            snap.block_hash = cp.block_hash;
            snap.digest = cp.snapshot_digest;
            snap.utxo_snapshot = cp.utxo_snapshot;
            snapshots.save(snap);
            const Checkpoint from_disk = snapshots.load_latest()->to_checkpoint();
            const BootstrapCost disk_cost = checkpoint_sync_cost(chain, tip, from_disk);
            if (disk_cost.bytes_downloaded != fast.bytes_downloaded ||
                disk_cost.blocks_processed != fast.blocks_processed ||
                disk_cost.headers_processed != fast.headers_processed)
                std::printf("!! disk-snapshot checkpoint cost diverges at %d blocks\n",
                            target_blocks);
            std::filesystem::remove_all(snap_dir);
        }

        table.row({bench::fmt_int(path.size()),
                   bench::fmt_int(full.bytes_downloaded),
                   bench::fmt_int(fast.bytes_downloaded),
                   bench::fmt(static_cast<double>(fast.bytes_downloaded) /
                                  static_cast<double>(full.bytes_downloaded),
                              3),
                   bench::fmt_int(full.blocks_processed),
                   bench::fmt_int(fast.blocks_processed)});
    }
    table.print();

    std::printf("\nExpected shape: the checkpoint ratio falls as the chain grows "
                "(the snapshot amortizes history); validated blocks stay constant "
                "(~10 recent) versus the whole chain for full sync.\n");
    return 0;
}
