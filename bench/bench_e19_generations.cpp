// E19 — §3 (blockchain generations): the taxonomy as code. Each generation's
// canonical use case runs through the §5.1 feasibility template, receives a
// recommended ChainSpec, and is measured under its own expected workload —
// showing why "one size does not fit all".
#include "bench_util.hpp"
#include "app/usecase.hpp"
#include "core/dcs.hpp"
#include "core/experiment.hpp"

using namespace dlt;
using namespace dlt::app;
using namespace dlt::core;

int main() {
    bench::Run bench_run("E19");
    bench::ObsEnv obs_env;
    bench::title("E19: application generations (§3, §5.1)",
                 "Claim: each generation imposes distinct requirements and lands "
                 "on a different point of the DCS spectrum.");

    bench::Table table({"use-case", "generation", "recommended", "openness",
                        "req-tps", "measured-tps", "met", "dcs"});

    const UseCase cases[] = {cryptocurrency_usecase(), crowdfunding_usecase(),
                             supply_chain_usecase(), land_registry_usecase(),
                             ehealth_usecase()};
    int seed = 1950;
    for (const auto& uc : cases) {
        const Recommendation rec = recommend(uc);

        ChainSpec spec = rec.spec;
        spec.node_count = std::min<std::size_t>(spec.node_count, 8);
        Workload load;
        load.tx_rate = uc.performance.expected_tps;
        // Keep PoW runs tractable: enough blocks to measure saturation.
        load.duration = spec.consensus == ConsensusKind::kProofOfWork
                            ? spec.block_interval * 30
                            : 120.0;
        const auto metrics = run_experiment(spec, load, seed++);
        const auto score = score_dcs(spec, metrics);

        const bool met = metrics.throughput_tps >= 0.8 * uc.performance.expected_tps;
        std::string gen;
        switch (uc.generation) {
            case Generation::kCryptocurrency: gen = "1.0"; break;
            case Generation::kDApps: gen = "2.0"; break;
            case Generation::kPervasive: gen = "3.0"; break;
        }
        table.row({uc.name, gen, consensus_kind_name(rec.spec.consensus),
                   rec.spec.openness == Openness::kPublic ? "public" : "permissioned",
                   bench::fmt(uc.performance.expected_tps, 0),
                   bench::fmt(metrics.throughput_tps, 1), met ? "yes" : "no",
                   describe(score)});
    }
    table.print();

    std::printf("\nRationales:\n");
    for (const auto& uc : cases) {
        const Recommendation rec = recommend(uc);
        std::printf("  %s:\n", uc.name.c_str());
        for (const auto& reason : rec.rationale)
            std::printf("    - %s\n", reason.c_str());
    }

    std::printf("\nExpected shape: 1.0/2.0 cases stay public (D required) and "
                "meet modest tps; 3.0 consortium cases go permissioned and meet "
                "thousand-tps requirements — the generations diverge exactly as "
                "§3 describes.\n");
    return 0;
}
