// E16 — §2.5/§3.2 (smart contracts and gas): deployment and state-mutating
// calls cost gas paid to the miner; constant (view) calls are free — the
// HelloWorld example's setGreeting()/say() split — and execution cost scales
// with work performed.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "contract/engine.hpp"
#include "contract/stdlib.hpp"
#include "crypto/keys.hpp"

using namespace dlt;
using namespace dlt::contract;

namespace {

struct World {
    WorldState state;
    ContractEngine engine{state};
    Address user = crypto::PrivateKey::from_seed("e16/user").address();
    Address miner = crypto::PrivateKey::from_seed("e16/miner").address();

    World() {
        state.credit(user, 1'000'000'000);
        engine.set_time(1000);
    }
};

void BM_DeployHelloWorld(benchmark::State& state) {
    const auto compiled = compile(stdlib::hello_world_source());
    for (auto _ : state) {
        World w;
        const auto receipt =
            w.engine.deploy(compiled, w.user, {Word(1)}, 0, 1'000'000, 1, w.miner);
        benchmark::DoNotOptimize(receipt.gas_used);
    }
}
BENCHMARK(BM_DeployHelloWorld);

void BM_StateMutatingCall(benchmark::State& state) {
    World w;
    const auto compiled = compile(stdlib::hello_world_source());
    const auto deployed =
        w.engine.deploy(compiled, w.user, {Word(1)}, 0, 1'000'000, 1, w.miner);
    std::uint64_t i = 0;
    for (auto _ : state) {
        const auto receipt = w.engine.call(deployed.contract, "setGreeting",
                                           {Word(i++)}, w.user, 0, 100'000, 1, w.miner);
        benchmark::DoNotOptimize(receipt.gas_used);
    }
}
BENCHMARK(BM_StateMutatingCall);

void BM_ConstantViewCall(benchmark::State& state) {
    World w;
    const auto compiled = compile(stdlib::hello_world_source());
    const auto deployed =
        w.engine.deploy(compiled, w.user, {Word(1)}, 0, 1'000'000, 1, w.miner);
    for (auto _ : state) {
        const auto result = w.engine.view(deployed.contract, "say", {}, w.user);
        benchmark::DoNotOptimize(result.return_value);
    }
}
BENCHMARK(BM_ConstantViewCall);

void BM_TokenTransfer(benchmark::State& state) {
    World w;
    const auto compiled = compile(stdlib::token_source());
    const auto deployed = w.engine.deploy(compiled, w.user, {Word(1'000'000'000)}, 0,
                                          2'000'000, 1, w.miner);
    const Word to = address_to_word(crypto::PrivateKey::from_seed("e16/to").address());
    for (auto _ : state) {
        const auto receipt = w.engine.call(deployed.contract, "transfer", {to, Word(1)},
                                           w.user, 0, 100'000, 1, w.miner);
        benchmark::DoNotOptimize(receipt.gas_used);
    }
}
BENCHMARK(BM_TokenTransfer);

} // namespace

int main(int argc, char** argv) {
    bench::Run bench_run("E16");
    bench::ObsEnv obs_env;
    bench::title("E16: contract gas economics (§2.5, §3.2)",
                 "Claim: deploys and mutating calls cost gas paid to the miner; "
                 "constant calls are free; cost scales with executed work.");

    World w;

    // Gas table across operations.
    {
        bench::Table table({"operation", "gas", "fee-to-miner", "status"});

        const auto hello = compile(stdlib::hello_world_source());
        const auto d1 = w.engine.deploy(hello, w.user, {Word(42)}, 0, 1'000'000, 1,
                                        w.miner);
        table.row({"deploy HelloWorld", bench::fmt_int(d1.gas_used),
                   bench::fmt_int(static_cast<std::uint64_t>(d1.fee_paid)),
                   vm_status_name(d1.status)});

        const auto set = w.engine.call(d1.contract, "setGreeting", {Word(7)}, w.user,
                                       0, 100'000, 1, w.miner);
        table.row({"setGreeting (tx)", bench::fmt_int(set.gas_used),
                   bench::fmt_int(static_cast<std::uint64_t>(set.fee_paid)),
                   vm_status_name(set.status)});

        const auto say = w.engine.view(d1.contract, "say", {}, w.user);
        table.row({"say (constant)", "0", "0", vm_status_name(say.status)});

        const auto token = compile(stdlib::token_source());
        const auto d2 = w.engine.deploy(token, w.user, {Word(1'000'000)}, 0,
                                        2'000'000, 1, w.miner);
        table.row({"deploy Token", bench::fmt_int(d2.gas_used),
                   bench::fmt_int(static_cast<std::uint64_t>(d2.fee_paid)),
                   vm_status_name(d2.status)});

        const Word to = address_to_word(crypto::PrivateKey::from_seed("e16/to").address());
        const auto xfer = w.engine.call(d2.contract, "transfer", {to, Word(5)}, w.user,
                                        0, 100'000, 1, w.miner);
        table.row({"token transfer (2 SSTORE)", bench::fmt_int(xfer.gas_used),
                   bench::fmt_int(static_cast<std::uint64_t>(xfer.fee_paid)),
                   vm_status_name(xfer.status)});
        table.print();
    }

    // Gas scales with loop work.
    {
        std::printf("\nExecution cost scales with work (sum 1..n):\n");
        const auto summer = compile(R"(
contract Summer {
    storage out;
    fn sum(n) {
        let total = 0;
        let i = 1;
        while (i <= n) { total = total + i; i = i + 1; }
        out = total;
    }
})");
        const auto deployed =
            w.engine.deploy(summer, w.user, {}, 0, 1'000'000, 1, w.miner);
        bench::Table table({"n", "gas"});
        for (const std::uint64_t n : {10ull, 100ull, 1000ull}) {
            const auto receipt = w.engine.call(deployed.contract, "sum", {Word(n)},
                                               w.user, 0, 10'000'000, 1, w.miner);
            table.row({bench::fmt_int(n), bench::fmt_int(receipt.gas_used)});
        }
        table.print();
    }

    std::printf("\nExpected shape: deploy > mutating call >> view (0 gas); gas "
                "grows linearly with loop iterations — the §3.2 cost model.\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
