// E1 — Fig. 1 / §2.3-§2.4: peers running gossip + Nakamoto consensus converge
// to a single chain. Sweeps network size and reports convergence status, chain
// height, and how many blocks were mined vs adopted.
//
// Observability: set DLT_TRACE=<path> to record a Chrome trace of the run
// (open in chrome://tracing or ui.perfetto.dev) and DLT_METRICS=<path> to
// snapshot the metrics registry as JSON (bench::ObsEnv wires both uniformly
// across bench binaries). Both notices go to stderr so stdout stays
// byte-identical with observability on or off (the determinism contract CI
// checks by diffing this binary's output).
#include "bench_util.hpp"
#include "consensus/nakamoto.hpp"

using namespace dlt;
using namespace dlt::consensus;

int main() {
    bench::Run bench_run("E01");
    bench::ObsEnv obs_env;
    bench::title("E1: Nakamoto convergence (Fig. 1, §2.3-2.4)",
                 "Claim: gossiping peers with longest-chain selection converge to "
                 "one blockchain despite concurrent mining.");

    bench::Table table({"peers", "sim-hours", "height", "blocks-mined", "stale",
                        "majority-tip", "all-agree-prefix"});

    for (const std::size_t peers : {4u, 8u, 16u, 32u}) {
        NakamotoParams params;
        params.node_count = peers;
        params.block_interval = 60.0;
        params.validation.sig_mode = ledger::SigCheckMode::kSkip;
        NakamotoNetwork net(params, /*seed=*/1000 + peers);
        net.start();
        const double hours = 4.0;
        net.run_for(hours * 3600);
        net.run_for(30); // settle in-flight gossip

        // Prefix agreement: anchor 6 blocks below peer-0's tip must be on
        // every peer's active path.
        const auto& chain0 = net.chain_of(0);
        const Hash256 anchor = chain0.ancestor(net.tip_of(0), 6);
        bool prefix_ok = true;
        for (std::size_t i = 1; i < net.node_count(); ++i) {
            const auto& chain = net.chain_of(i);
            if (!chain.contains(anchor)) {
                prefix_ok = false;
                break;
            }
            const auto path = chain.path_from_genesis(net.tip_of(i));
            const std::uint64_t h = chain0.find(anchor)->height;
            if (path.size() <= h || path[h] != anchor) {
                prefix_ok = false;
                break;
            }
        }

        table.row({bench::fmt_int(peers), bench::fmt(hours, 1),
                   bench::fmt_int(net.height_of(0)),
                   bench::fmt_int(net.stats().blocks_mined),
                   bench::fmt_int(net.stale_blocks()),
                   net.majority_tip() ? "yes" : "no", prefix_ok ? "yes" : "no"});
    }
    table.print();
    std::printf("\nExpected shape: majority tip and prefix agreement at every "
                "size; stale counts small relative to mined blocks.\n");

    return 0;
}
