// Shared helpers for the experiment harnesses: fixed-width table printing and
// headline formatting so every bench binary reports in the same shape as
// EXPERIMENTS.md records.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace bench {

inline void title(const std::string& id, const std::string& claim) {
    std::printf("\n=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

class Table {
public:
    explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    void print() const {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
        for (const auto& row : rows_)
            for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        auto print_row = [&](const std::vector<std::string>& cells) {
            for (std::size_t c = 0; c < cells.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
            std::printf("\n");
        };
        print_row(headers_);
        std::size_t total = 0;
        for (const auto w : widths) total += w + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto& row : rows_) print_row(row);
    }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

inline std::string fmt_int(std::uint64_t v) { return std::to_string(v); }

} // namespace bench
