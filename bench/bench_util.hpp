// Shared helpers for the experiment harnesses: fixed-width table printing,
// headline formatting, wall-clock timing, and machine-readable JSON reports so
// every bench binary reports in the same shape as EXPERIMENTS.md records and
// leaves a BENCH_<id>.json perf artifact behind for trend tracking.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bench {

inline void title(const std::string& id, const std::string& claim) {
    std::printf("\n=== %s ===\n%s\n\n", id.c_str(), claim.c_str());
}

class Table {
public:
    explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    void print() const {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
        for (const auto& row : rows_)
            for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        auto print_row = [&](const std::vector<std::string>& cells) {
            for (std::size_t c = 0; c < cells.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
            std::printf("\n");
        };
        print_row(headers_);
        std::size_t total = 0;
        for (const auto w : widths) total += w + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto& row : rows_) print_row(row);
    }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Uniform DLT_TRACE / DLT_METRICS wiring for bench binaries. Construct one at
/// the top of main(): DLT_TRACE=<path> enables the global Tracer immediately
/// (so the whole run is captured) and writes a Chrome trace on destruction;
/// DLT_TRACE_STREAM=<path> does the same but streams chunks to disk as the run
/// goes (unbounded runs, no dropped tail — takes precedence over DLT_TRACE);
/// DLT_METRICS=<path> snapshots the metrics registry as JSON. All notices go
/// to stderr so stdout stays byte-identical with observability on or off (the
/// determinism contract CI checks by diffing bench output). Declare it *after*
/// the bench::Run so artifacts land before the BENCH_<id>.json notice.
class ObsEnv {
public:
    ObsEnv()
        : trace_path_(std::getenv("DLT_TRACE")),
          stream_path_(std::getenv("DLT_TRACE_STREAM")),
          metrics_path_(std::getenv("DLT_METRICS")) {
        if (stream_path_ != nullptr) {
            if (dlt::obs::Tracer::global().open_stream(stream_path_)) {
                dlt::obs::Tracer::global().set_enabled(true);
            } else {
                std::fprintf(stderr, "[obs] could not open trace stream %s\n",
                             stream_path_);
                stream_path_ = nullptr;
            }
        } else if (trace_path_ != nullptr) {
            dlt::obs::Tracer::global().set_enabled(true);
        }
    }

    ObsEnv(const ObsEnv&) = delete;
    ObsEnv& operator=(const ObsEnv&) = delete;

    ~ObsEnv() { write_artifacts(); }

    bool tracing() const {
        return trace_path_ != nullptr || stream_path_ != nullptr;
    }

    /// Flush the trace/metrics artifacts now (idempotent).
    void write_artifacts() {
        if (written_) return;
        written_ = true;
        if (stream_path_ != nullptr) {
            const auto emitted = dlt::obs::Tracer::global().emitted();
            if (dlt::obs::Tracer::global().close_stream())
                std::fprintf(stderr,
                             "[obs] streamed trace %s (%llu events)\n",
                             stream_path_,
                             static_cast<unsigned long long>(emitted));
            else
                std::fprintf(stderr, "[obs] could not finish trace stream %s\n",
                             stream_path_);
        } else if (trace_path_ != nullptr) {
            if (dlt::obs::Tracer::global().write_chrome_trace(trace_path_))
                std::fprintf(stderr, "[obs] wrote trace %s (%zu events)\n",
                             trace_path_, dlt::obs::Tracer::global().size());
            else
                std::fprintf(stderr, "[obs] could not write trace %s\n",
                             trace_path_);
        }
        if (metrics_path_ != nullptr) {
            if (dlt::obs::MetricsRegistry::global().write_json(metrics_path_))
                std::fprintf(stderr, "[obs] wrote metrics %s\n", metrics_path_);
            else
                std::fprintf(stderr, "[obs] could not write metrics %s\n",
                             metrics_path_);
        }
    }

private:
    const char* trace_path_;
    const char* stream_path_;
    const char* metrics_path_;
    bool written_ = false;
};

inline std::string fmt(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

inline std::string fmt_int(std::uint64_t v) { return std::to_string(v); }

// --- Wall-clock timing ---------------------------------------------------------

/// Monotonic wall-clock stopwatch (virtual simulation time is tracked by the
/// Scheduler; this measures how long the host actually took).
class Timer {
public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    void restart() { start_ = std::chrono::steady_clock::now(); }

    double elapsed_s() const {
        const auto d = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// count / seconds, guarded against zero division (events/sec, sims/sec, tx/sec).
inline double rate_per_sec(double count, double seconds) {
    return seconds > 0 ? count / seconds : 0.0;
}

// --- JSON perf reports ---------------------------------------------------------

/// Collects named metrics for one experiment run and writes them as a flat JSON
/// object to BENCH_<id>.json in the working directory on destruction (or an
/// explicit write_json()). Every bench binary constructs one of these so each
/// run — local or CI — leaves a machine-readable perf record behind.
///
/// Serialization delegates to obs::JsonObjectWriter (the observability layer's
/// shared JSON emitter), so escaping and "%.6g" number formatting are the same
/// ones the metrics snapshot and Chrome-trace exporters use — the historical
/// BENCH_<id>.json schema, now produced by one formatter instead of two.
class Run {
public:
    explicit Run(std::string id) : id_(std::move(id)) {
        json_.field_string("id", id_);
    }

    Run(const Run&) = delete;
    Run& operator=(const Run&) = delete;

    ~Run() {
        if (!written_) write_json();
    }

    /// Record a numeric metric (insertion order is preserved in the output).
    void metric(const std::string& name, double value) {
        json_.field_number(name, value);
    }
    void metric(const std::string& name, std::uint64_t value) {
        json_.field_uint(name, value);
    }

    /// Record a string annotation.
    void note(const std::string& name, const std::string& value) {
        json_.field_string(name, value);
    }

    double elapsed_s() const { return timer_.elapsed_s(); }

    /// Flush BENCH_<id>.json now. `wall_seconds` (whole-process wall time) is
    /// always included; callers add section-level timings as plain metrics.
    void write_json() {
        written_ = true;
        json_.field_number("wall_seconds", timer_.elapsed_s());
        const std::string path = "BENCH_" + id_ + ".json";
        // Read-only working dir: silently skip the artifact, as before.
        if (json_.write_file(path)) std::printf("\n[bench] wrote %s\n", path.c_str());
    }

private:
    std::string id_;
    Timer timer_;
    dlt::obs::JsonObjectWriter json_;
    bool written_ = false;
};

} // namespace bench
