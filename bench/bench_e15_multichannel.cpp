// E15 — §5.3 (multi-channel privacy domains): channels isolate data between
// member sets, anchors keep the consortium globally consistent, and per-channel
// throughput is independent (adding channels adds capacity).
#include <chrono>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "crypto/keys.hpp"
#include "privacy/multichannel.hpp"

using namespace dlt;
using namespace dlt::privacy;

namespace {

crypto::Address org(const std::string& name) {
    return crypto::PrivateKey::from_seed("e15/" + name).address();
}

} // namespace

int main() {
    bench::Run bench_run("E15");
    bench::ObsEnv obs_env;
    bench::title("E15: multi-channel privacy domains (§5.3)",
                 "Claim: privacy domains isolate data per member set while the "
                 "shared anchor chain keeps everyone consistent.");

    // Isolation demonstration.
    {
        MultiChannelLedger ledger(15);
        const auto a = org("manufacturer");
        const auto b = org("carrier");
        const auto c = org("competitor");
        ledger.create_channel("trade-ab", {a, b});
        ledger.submit("trade-ab", a, to_bytes("price: 120/unit"));

        bench::Table table({"reader", "can-read-channel", "can-read-anchor"});
        auto probe = [&](const std::string& name, const crypto::Address& who) {
            bool readable = true;
            try {
                ledger.read("trade-ab", who);
            } catch (const ValidationError&) {
                readable = false;
            }
            table.row({name, readable ? "yes" : "no", "yes"});
        };
        probe("manufacturer", a);
        probe("carrier", b);
        probe("competitor", c);
        table.print();
    }

    // Throughput independence: time N submissions across K channels.
    std::printf("\nPer-channel capacity independence:\n");
    {
        bench::Table table({"channels", "total-records", "wall-ms",
                            "records/ms"});
        for (const int channels : {1, 4, 16}) {
            MultiChannelLedger ledger(16);
            std::vector<crypto::Address> members;
            for (int c = 0; c < channels; ++c) {
                members.push_back(org("member" + std::to_string(c)));
                ledger.create_channel("ch" + std::to_string(c), {members.back()});
            }
            const int total = 20000;
            const auto start = std::chrono::steady_clock::now();
            for (int i = 0; i < total; ++i) {
                const int c = i % channels;
                ledger.submit("ch" + std::to_string(c), members[static_cast<std::size_t>(c)],
                              to_bytes("record"));
            }
            const double ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
            table.row({bench::fmt_int(channels), bench::fmt_int(total),
                       bench::fmt(ms, 1), bench::fmt(total / ms, 0)});
        }
        table.print();
    }

    // Anchor auditability.
    {
        MultiChannelLedger ledger(17);
        const auto a = org("auditee");
        ledger.create_channel("audit-me", {a});
        const auto anchor = ledger.submit("audit-me", a, to_bytes("the record"));
        const auto& opening = ledger.opening_for("audit-me", 1, a);
        std::printf("\nAnchor audit: member opens commitment to auditor -> %s\n",
                    verify_opening(anchor.commitment, opening) ? "verified"
                                                               : "FAILED");
    }

    std::printf("\nExpected shape: non-members blocked from channel data but not "
                "anchors; throughput scales with channel count (independent "
                "domains); anchored commitments verify when opened.\n");
    return 0;
}
