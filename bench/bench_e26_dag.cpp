// E26 — fourth-generation DAG ledger vs chains (§2.6): when the record
// interval shrinks toward the network delay, a chain pays for concurrency
// with stale blocks and reorg thrash, while a DAG merges the parallel records
// into one total order and keeps their payload. Sweeps the interval across
// the branching regime (interval / delay from 5x down to 0.5x) and measures
// confirmed-payload throughput for Nakamoto longest-chain, Nakamoto GHOST,
// and the GHOSTDAG ledger under the same million-user-style demand stream
// (app::WorkloadEngine via TxHost).
//
// DLT_E26_QUICK=1 shrinks the sweep for CI smoke runs.
// DLT_TRACE / DLT_TRACE_STREAM / DLT_METRICS work as in every bench.
#include <cstdlib>
#include <string>
#include <vector>

#include "app/workload.hpp"
#include "bench_util.hpp"
#include "consensus/dag/network.hpp"
#include "consensus/nakamoto.hpp"

using namespace dlt;

namespace {

struct RowResult {
    double tps = 0;          // confirmed non-coinbase tx/s of virtual time
    double branch_metric = 0; // stale rate (chains) / red fraction (DAG)
    std::uint64_t submitted = 0;
    std::uint64_t confirmed = 0;
    std::uint64_t reorgs = 0; // reorgs (chains) / relinearizations (DAG)
    std::string digest;       // DAG only: sha256 of the linear order
};

struct SweepConfig {
    std::size_t nodes = 12;
    double duration = 600.0; // virtual seconds of demand
    double drain = 120.0;    // extra time for confirmation to settle
    double offered_tps = 100.0;
    std::size_t max_block_txs = 50; // capacity-bound so throughput is visible
};

app::WorkloadParams demand(const SweepConfig& sweep) {
    app::WorkloadParams wl;
    wl.population = 10'000;
    wl.base_tps = sweep.offered_tps;
    wl.payload_bytes = 96;
    wl.submit_nodes = static_cast<std::uint32_t>(sweep.nodes);
    return wl;
}

RowResult run_chain(const SweepConfig& sweep, double interval,
                    consensus::BranchRule rule, std::uint64_t seed) {
    consensus::NakamotoParams params;
    params.node_count = sweep.nodes;
    params.block_interval = interval;
    params.branch_rule = rule;
    params.max_block_txs = sweep.max_block_txs;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    params.link.latency_mean = 2.0;
    params.link.latency_jitter = 1.0;
    consensus::NakamotoNetwork net(params, seed);
    net.start();

    app::WorkloadEngine workload(net, demand(sweep), seed ^ 0xE26);
    workload.start();
    net.run_for(sweep.duration);
    workload.stop();
    net.run_for(sweep.drain);

    RowResult r;
    r.submitted = workload.stats().submitted;
    r.confirmed = net.confirmed_tx_count();
    r.tps = r.confirmed / sweep.duration;
    r.branch_metric = net.stale_rate();
    r.reorgs = net.stats().reorgs;
    return r;
}

RowResult run_dag(const SweepConfig& sweep, double interval, std::uint64_t seed) {
    consensus::dag::DagParams params;
    params.node_count = sweep.nodes;
    params.record_interval = interval;
    params.max_block_txs = sweep.max_block_txs;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    params.link.latency_mean = 2.0;
    params.link.latency_jitter = 1.0;
    consensus::dag::DagNetwork net(params, seed);
    net.start();

    app::TxHostFor<consensus::dag::DagNetwork> host(net);
    app::WorkloadEngine workload(host, demand(sweep), seed ^ 0xE26);
    workload.start();
    net.run_for(sweep.duration);
    workload.stop();
    net.run_for(sweep.drain);

    RowResult r;
    r.submitted = workload.stats().submitted;
    r.confirmed = net.confirmed_tx_count();
    r.tps = r.confirmed / sweep.duration;
    r.branch_metric = 1.0 - net.blue_ratio(); // red fraction
    r.reorgs = net.stats().relinearizations;
    r.digest = net.order_digest().hex();
    return r;
}

} // namespace

int main() {
    bench::Run run("E26");
    bench::ObsEnv obs_env;
    const bool quick = std::getenv("DLT_E26_QUICK") != nullptr;
    bench::title("E26: DAG ledger vs chains across the branching regime (§2.6)",
                 "Claim: as the record interval drops below the network delay, "
                 "chains lose throughput to stale branches while a GHOSTDAG "
                 "ledger merges parallel records and keeps scaling.");

    SweepConfig sweep;
    std::vector<double> intervals{10.0, 5.0, 2.0, 1.0};
    if (quick) {
        sweep.nodes = 8;
        sweep.duration = 240.0;
        sweep.drain = 60.0;
        intervals = {5.0, 1.0};
    }

    bench::Table table({"interval-s", "system", "tps", "submitted", "confirmed",
                        "branch", "reorgs"});
    std::uint64_t seed = 2600;
    std::string high_branch_digest;
    for (const double interval : intervals) {
        const RowResult longest = run_chain(
            sweep, interval, consensus::BranchRule::kLongestChain, seed++);
        const RowResult ghost =
            run_chain(sweep, interval, consensus::BranchRule::kGhost, seed++);
        const RowResult dag = run_dag(sweep, interval, seed++);

        const std::string tag = bench::fmt(interval, 0);
        table.row({tag, "nakamoto-longest", bench::fmt(longest.tps, 2),
                   bench::fmt_int(longest.submitted),
                   bench::fmt_int(longest.confirmed),
                   bench::fmt(longest.branch_metric, 3),
                   bench::fmt_int(longest.reorgs)});
        table.row({tag, "nakamoto-ghost", bench::fmt(ghost.tps, 2),
                   bench::fmt_int(ghost.submitted),
                   bench::fmt_int(ghost.confirmed),
                   bench::fmt(ghost.branch_metric, 3),
                   bench::fmt_int(ghost.reorgs)});
        table.row({tag, "ghostdag", bench::fmt(dag.tps, 2),
                   bench::fmt_int(dag.submitted), bench::fmt_int(dag.confirmed),
                   bench::fmt(dag.branch_metric, 3),
                   bench::fmt_int(dag.reorgs)});

        const std::string suffix = "_i" + bench::fmt(interval, 0);
        run.metric("nakamoto_longest_tps" + suffix, longest.tps);
        run.metric("nakamoto_ghost_tps" + suffix, ghost.tps);
        run.metric("dag_tps" + suffix, dag.tps);
        run.metric("nakamoto_stale_rate" + suffix, longest.branch_metric);
        run.metric("dag_red_fraction" + suffix, dag.branch_metric);
        run.metric("dag_relinearizations" + suffix, dag.reorgs);
        high_branch_digest = dag.digest; // last interval = highest branch rate
    }
    table.print();

    // The determinism probe CI compares across DLT_THREADS settings: the
    // GHOSTDAG order at the highest branch rate, as a sha256 digest.
    run.note("dag_order_digest", high_branch_digest);
    std::printf("\ndag order digest (interval %.0fs): %s\n", intervals.back(),
                high_branch_digest.c_str());

    std::printf("\nExpected shape: at 10 s intervals (5x the 2 s delay) all "
                "three systems confirm comparable payload; at 1 s the chains "
                "lose most produced blocks to branches while the DAG merges "
                "them — higher tps, zero discarded records.\n");
    return 0;
}
