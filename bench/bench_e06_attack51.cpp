// E6 — §2.4 (immutability): the attacker-success surface. Reproduces the
// Bitcoin whitepaper's table: success probability vs attacker hash share q and
// confirmation depth z, analytic and Monte Carlo, showing the cliff at q=0.5
// ("more than 51% of the entire network" rewrites history).
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "consensus/attack.hpp"

using namespace dlt;
using namespace dlt::consensus;

int main() {
    bench::Run bench_run("E06");
    bench::ObsEnv obs_env;
    bench::title("E6: 51% attack success probability (§2.4)",
                 "Claim: rewriting history needs a majority of hash power; below "
                 "it, success decays exponentially in confirmation depth.");

    Rng rng(606);
    bench::Table table({"q", "z", "analytic", "monte-carlo"});
    for (const double q : {0.10, 0.25, 0.40, 0.45, 0.51, 0.60}) {
        for (const unsigned z : {1u, 3u, 6u, 12u}) {
            const double analytic = attacker_success_probability(q, z);
            const double simulated = simulate_attack_success(q, z, 20000, rng);
            table.row({bench::fmt(q), bench::fmt_int(z), bench::fmt(analytic, 6),
                       bench::fmt(simulated, 6)});
        }
    }
    table.print();

    std::printf("\nExpected shape: for q<0.5 the probability drops ~exponentially "
                "with z (q=0.1, z=6 -> ~0.0002); for q>=0.5 it is 1.0 at every "
                "depth — the 51%% cliff.\n");
    return 0;
}
