// E25 — fee-market mempool under population-scale demand (§2.4, §4): the gap
// between Bitcoin's ~7 tps and the 10K+ tps of pervasive deployment is decided
// at the admission queue. Two sections:
//
//   1. Microbenchmark: the indexed fee-market engine vs the historical greedy
//      pool (inlined below, bit-for-bit the seed implementation) on the
//      saturated-node cycle — admit a wave of transactions into a full
//      100K-entry pool, assemble a block template, confirm it — at a discrete
//      wallet fee menu (equal feerates are the common case, and tie handling
//      is exactly where the O(tie-range) multimap hurts).
//
//   2. Demand curve: millions of Zipf-skewed user agents (app::WorkloadEngine)
//      bid fees at a sustained 10K+ tps offered load with a mid-run burst;
//      block capacity is orders of magnitude smaller, so the mempool's
//      admission control — not the miner — decides who waits and who is shed.
//      Reports confirmation-latency percentiles per fee quartile and the
//      admission-outcome mix via TxLifecycleTracker + Mempool stats.
//
// DLT_E25_QUICK=1 shrinks both sections for CI smoke runs.
// DLT_TRACE / DLT_METRICS work as in every bench (bench::ObsEnv).
#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <string>

#include "app/workload.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "consensus/nakamoto.hpp"
#include "ledger/mempool.hpp"

using namespace dlt;
using ledger::Transaction;

namespace {

// --- The historical greedy pool, inlined as the microbenchmark baseline -----
// Behavior-identical copy of the seed ledger::Mempool (multimap fee index,
// count-only bound, copy-out selection), kept here so the comparison survives
// the engine rebuild it motivates.
class SeedMempool {
public:
    explicit SeedMempool(std::size_t max_transactions)
        : max_transactions_(max_transactions) {}

    bool add(const Transaction& tx) {
        const Hash256 id = tx.txid();
        if (pool_.contains(id)) return false;

        PoolEntry entry;
        entry.size = tx.serialized_size();
        entry.fee = tx.declared_fee;
        entry.fee_rate = entry.size > 0 ? static_cast<double>(entry.fee) /
                                              static_cast<double>(entry.size)
                                        : 0.0;

        if (pool_.size() >= max_transactions_) {
            const auto worst = by_fee_rate_.begin();
            if (worst == by_fee_rate_.end() || worst->first >= entry.fee_rate)
                return false;
            pool_.erase(worst->second);
            by_fee_rate_.erase(worst);
        }

        by_fee_rate_.emplace(entry.fee_rate, id);
        entry.tx = tx;
        pool_.emplace(id, std::move(entry));
        return true;
    }

    std::vector<Transaction> select(std::size_t max_bytes,
                                    std::size_t max_count = SIZE_MAX) const {
        std::vector<Transaction> selected;
        std::size_t used = 0;
        for (auto it = by_fee_rate_.rbegin(); it != by_fee_rate_.rend(); ++it) {
            if (selected.size() >= max_count) break;
            const PoolEntry& entry = pool_.at(it->second);
            if (used + entry.size > max_bytes) continue;
            selected.push_back(entry.tx);
            used += entry.size;
        }
        return selected;
    }

    void remove_confirmed(const std::vector<Hash256>& txids) {
        for (const auto& id : txids) {
            const auto it = pool_.find(id);
            if (it == pool_.end()) continue;
            const auto range = by_fee_rate_.equal_range(it->second.fee_rate);
            for (auto idx = range.first; idx != range.second; ++idx) {
                if (idx->second == id) {
                    by_fee_rate_.erase(idx);
                    break;
                }
            }
            pool_.erase(it);
        }
    }

    std::size_t size() const { return pool_.size(); }

private:
    struct PoolEntry {
        Transaction tx;
        std::size_t size = 0;
        ledger::Amount fee = 0;
        double fee_rate = 0;
    };

    std::size_t max_transactions_;
    std::unordered_map<Hash256, PoolEntry> pool_;
    std::multimap<double, Hash256> by_fee_rate_;
};

/// A minimal record tx priced onto a discrete wallet fee menu (`levels`
/// distinct feerates — real traffic clusters on a handful of levels, so equal
/// bids are the common case and tie handling is what gets exercised).
Transaction menu_tx(Rng& rng, std::uint64_t sequence, std::uint64_t levels) {
    Transaction tx;
    tx.kind = ledger::TxKind::kRecord;
    tx.nonce = sequence;
    tx.data.resize(8 + rng.uniform(24));
    for (auto& b : tx.data) b = static_cast<std::uint8_t>(rng.next());
    const double rate = 0.5 + 0.25 * static_cast<double>(rng.uniform(levels));
    tx.declared_fee = static_cast<ledger::Amount>(
        rate * static_cast<double>(tx.serialized_size()) + 0.5);
    (void)tx.txid(); // pre-warm the hash cache: measure the index, not SHA-256
    return tx;
}

double percentile(std::vector<double> v, double p) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const double idx = p * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] + (v[hi] - v[lo]) * frac;
}

} // namespace

int main() {
    bench::Run run("E25");
    bench::ObsEnv obs_env;
    const bool quick = std::getenv("DLT_E25_QUICK") != nullptr;
    bench::title("E25: fee-market mempool + million-user demand (§2.4, §4)",
                 "Claim: an indexed admission queue sustains 10K+ tps offered "
                 "load, shedding demand by feerate; confirmation latency "
                 "stratifies by fee bid.");

    // ---- Section 1: saturated-node microbenchmark ---------------------------
    const std::size_t pool_cap = quick ? 30'000 : 100'000;
    const std::size_t wave = quick ? 2'000 : 4'000;
    const std::size_t cycles = quick ? 3 : 5;
    const std::uint64_t fee_levels = 16;
    const std::size_t block_bytes = 1'000'000;
    const std::size_t block_txs = wave; // confirm what was admitted: steady state

    std::printf("Saturated-node cycle at %zu-entry saturation, %llu-level fee "
                "menu (admit %zu + template + confirm, x%zu):\n",
                pool_cap, static_cast<unsigned long long>(fee_levels), wave,
                cycles);

    // Identical pre-hashed transaction streams for both engines.
    Rng gen(2025);
    std::uint64_t seq = 0;
    std::vector<Transaction> fill;
    fill.reserve(pool_cap);
    for (std::size_t i = 0; i < pool_cap; ++i)
        fill.push_back(menu_tx(gen, seq++, fee_levels));
    std::vector<std::vector<Transaction>> waves(cycles);
    for (auto& w : waves) {
        w.reserve(wave);
        for (std::size_t i = 0; i < wave; ++i)
            w.push_back(menu_tx(gen, seq++, fee_levels));
    }

    double seed_ops_s = 0;
    double indexed_ops_s = 0;
    double seed_admit_s = 0;
    double indexed_admit_s = 0;
    {
        SeedMempool pool(pool_cap);
        for (const auto& tx : fill) pool.add(tx);
        std::uint64_t ops = 0;
        bench::Timer timer;
        for (std::size_t c = 0; c < cycles; ++c) {
            for (const auto& tx : waves[c]) pool.add(tx);
            const auto block = pool.select(block_bytes, block_txs);
            std::vector<Hash256> ids;
            ids.reserve(block.size());
            for (const auto& tx : block) ids.push_back(tx.txid());
            pool.remove_confirmed(ids);
            ops += wave + 1 + ids.size();
        }
        seed_ops_s = bench::rate_per_sec(static_cast<double>(ops),
                                         timer.elapsed_s());
        // Pure admission at saturation, reported separately for transparency.
        bench::Timer admit_timer;
        for (const auto& w : waves)
            for (const auto& tx : w) pool.add(tx);
        seed_admit_s = bench::rate_per_sec(
            static_cast<double>(cycles * wave), admit_timer.elapsed_s());
    }
    {
        ledger::Mempool pool(ledger::MempoolConfig{.max_count = pool_cap});
        for (const auto& tx : fill) pool.add(tx);
        std::uint64_t ops = 0;
        bench::Timer timer;
        for (std::size_t c = 0; c < cycles; ++c) {
            for (const auto& tx : waves[c]) pool.add(tx);
            const auto block = pool.build_template(block_bytes, block_txs);
            std::vector<Hash256> ids;
            ids.reserve(block.size());
            for (const auto& entry : block) ids.push_back(entry.tx->txid());
            pool.remove_confirmed(ids);
            ops += wave + 1 + ids.size();
        }
        indexed_ops_s = bench::rate_per_sec(static_cast<double>(ops),
                                            timer.elapsed_s());
        bench::Timer admit_timer;
        for (const auto& w : waves)
            for (const auto& tx : w) pool.add(tx);
        indexed_admit_s = bench::rate_per_sec(
            static_cast<double>(cycles * wave), admit_timer.elapsed_s());
    }

    const double cycle_speedup =
        seed_ops_s > 0 ? indexed_ops_s / seed_ops_s : 0.0;
    const double admit_speedup =
        seed_admit_s > 0 ? indexed_admit_s / seed_admit_s : 0.0;
    {
        bench::Table table({"engine", "cycle-ops/s", "admit-ops/s"});
        table.row({"seed greedy pool", bench::fmt(seed_ops_s, 0),
                   bench::fmt(seed_admit_s, 0)});
        table.row({"indexed fee market", bench::fmt(indexed_ops_s, 0),
                   bench::fmt(indexed_admit_s, 0)});
        table.print();
        std::printf("\nSpeedup: %.1fx on the mine cycle, %.1fx on pure "
                    "admission (target: >= 10x cycle).\n",
                    cycle_speedup, admit_speedup);
    }
    run.metric("micro_seed_cycle_ops_per_sec", seed_ops_s);
    run.metric("micro_indexed_cycle_ops_per_sec", indexed_ops_s);
    run.metric("micro_cycle_speedup", cycle_speedup);
    run.metric("micro_seed_admit_ops_per_sec", seed_admit_s);
    run.metric("micro_indexed_admit_ops_per_sec", indexed_admit_s);
    run.metric("micro_admit_speedup", admit_speedup);

    // ---- Section 2: demand curve at 10K+ tps offered load -------------------
    const double offered_tps = quick ? 4'000.0 : 10'000.0;
    const double load_secs = quick ? 12.0 : 45.0;
    const double drain_secs = quick ? 24.0 : 90.0;

    consensus::NakamotoParams params;
    params.node_count = quick ? 4 : 6;
    params.block_interval = 12.0;
    params.max_block_bytes = 1'000'000;
    params.max_block_txs = 6'000;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    params.finality_depth = 3;
    params.mempool.max_count = quick ? 20'000 : 120'000;
    params.mempool.max_bytes = 48u * 1024 * 1024;
    params.mempool.min_fee_rate = 0.5;
    params.mempool.expiry = 60.0;
    params.chain_tag = "e25";

    app::WorkloadParams wl;
    wl.population = quick ? 200'000 : 2'000'000;
    wl.zipf_exponent = 1.1;
    wl.base_tps = offered_tps;
    wl.burst_every = 30.0;    // one burst lands inside the load window
    wl.burst_duration = 10.0;
    wl.burst_multiplier = 2.5;
    wl.hot_accounts = 32;
    wl.hot_fraction = 0.05;
    wl.payload_bytes = 96;
    wl.min_fee_rate = 0.5;
    wl.max_fee_rate = 8.0;
    wl.fee_levels = 32;
    wl.submit_nodes = static_cast<std::uint32_t>(params.node_count);

    consensus::NakamotoNetwork net(params, /*seed=*/25'000);
    app::WorkloadEngine engine(net, wl, /*seed=*/77);

    std::printf("\nDemand curve: %.0f tps offered (burst x%.1f), %zu peers, "
                "%0.0fs block interval, pool cap %zu txs:\n",
                offered_tps, wl.burst_multiplier, params.node_count,
                params.block_interval, params.mempool.max_count);

    net.start();
    engine.start();
    net.run_for(load_secs);
    engine.stop();
    net.run_for(drain_secs); // let the backlog mine out and finality settle

    // Confirmation latency per fee quartile, joined from the workload's
    // submission log and the lifecycle tracker's stamps.
    const auto& submissions = engine.submissions();
    std::vector<double> rates;
    rates.reserve(submissions.size());
    for (const auto& s : submissions) rates.push_back(s.fee_rate);
    std::vector<double> sorted_rates = rates;
    std::sort(sorted_rates.begin(), sorted_rates.end());
    const auto quartile_of = [&](double rate) {
        // Rank by fee percentile: quartile 4 = top bids.
        const auto at = [&](double p) {
            return sorted_rates[static_cast<std::size_t>(
                p * static_cast<double>(sorted_rates.size() - 1))];
        };
        if (rate <= at(0.25)) return 0;
        if (rate <= at(0.50)) return 1;
        if (rate <= at(0.75)) return 2;
        return 3;
    };

    std::vector<double> latency[4];
    std::uint64_t offered_q[4] = {};
    std::uint64_t confirmed_q[4] = {};
    for (const auto& s : submissions) {
        const int q = quartile_of(s.fee_rate);
        ++offered_q[q];
        const auto* rec = net.lifecycle().find(s.txid);
        if (rec != nullptr && rec->included) {
            ++confirmed_q[q];
            latency[q].push_back(*rec->included - s.at);
        }
    }

    {
        bench::Table table({"fee-quartile", "offered", "confirmed", "confirm-%",
                            "p50-s", "p90-s", "p99-s"});
        const char* names[4] = {"Q1 (lowest)", "Q2", "Q3", "Q4 (highest)"};
        for (int q = 3; q >= 0; --q) {
            const double pct =
                offered_q[q] > 0 ? 100.0 * static_cast<double>(confirmed_q[q]) /
                                       static_cast<double>(offered_q[q])
                                 : 0.0;
            table.row({names[q], bench::fmt_int(offered_q[q]),
                       bench::fmt_int(confirmed_q[q]), bench::fmt(pct, 1),
                       bench::fmt(percentile(latency[q], 0.50), 1),
                       bench::fmt(percentile(latency[q], 0.90), 1),
                       bench::fmt(percentile(latency[q], 0.99), 1)});
            const std::string prefix = "fee_q" + std::to_string(q + 1) + "_";
            run.metric(prefix + "offered", offered_q[q]);
            run.metric(prefix + "confirmed", confirmed_q[q]);
            run.metric(prefix + "latency_p50", percentile(latency[q], 0.50));
            run.metric(prefix + "latency_p90", percentile(latency[q], 0.90));
            run.metric(prefix + "latency_p99", percentile(latency[q], 0.99));
        }
        table.print();
    }

    // Admission-outcome mix: per-result totals across every peer's pool plus
    // the drop mix at the observed replica.
    std::uint64_t admissions[ledger::kAdmissionResultCount] = {};
    for (std::size_t n = 0; n < net.node_count(); ++n) {
        const auto& stats = net.mempool_of(static_cast<net::NodeId>(n)).stats();
        for (std::size_t r = 0; r < ledger::kAdmissionResultCount; ++r)
            admissions[r] += stats.admitted[r];
    }
    {
        bench::Table table({"admission-outcome", "count (all peers)"});
        for (std::size_t r = 0; r < ledger::kAdmissionResultCount; ++r)
            table.row({ledger::admission_result_name(
                           static_cast<ledger::AdmissionResult>(r)),
                       bench::fmt_int(admissions[r])});
        std::printf("\n");
        table.print();
        for (std::size_t r = 0; r < ledger::kAdmissionResultCount; ++r) {
            std::string name = ledger::admission_result_name(
                static_cast<ledger::AdmissionResult>(r));
            std::transform(name.begin(), name.end(), name.begin(),
                           [](unsigned char c) { return std::tolower(c); });
            run.metric("admission_" + name, admissions[r]);
        }
    }

    const auto& pool0 = net.mempool_of(0).stats();
    const double virtual_secs = load_secs + drain_secs;
    const double confirmed_tps =
        static_cast<double>(net.confirmed_tx_count()) / virtual_secs;
    std::printf("\nOffered %.0f tps for %.0fs -> %llu submitted, %llu confirmed "
                "(%.1f tps over the full window), %llu shed at peer 0 "
                "(%llu evicted / %llu expired / %llu replaced), "
                "%llu lifecycle-dropped.\n",
                offered_tps, load_secs,
                static_cast<unsigned long long>(engine.stats().submitted),
                static_cast<unsigned long long>(net.confirmed_tx_count()),
                confirmed_tps,
                static_cast<unsigned long long>(
                    pool0.drops(ledger::MempoolDropReason::kEvicted) +
                    pool0.drops(ledger::MempoolDropReason::kExpired) +
                    pool0.drops(ledger::MempoolDropReason::kReplaced)),
                static_cast<unsigned long long>(
                    pool0.drops(ledger::MempoolDropReason::kEvicted)),
                static_cast<unsigned long long>(
                    pool0.drops(ledger::MempoolDropReason::kExpired)),
                static_cast<unsigned long long>(
                    pool0.drops(ledger::MempoolDropReason::kReplaced)),
                static_cast<unsigned long long>(net.lifecycle().dropped_count()));
    std::printf("Expected shape: confirmation %% and latency stratify by fee "
                "quartile; low quartiles are shed (QUEUE_FULL / FEE_TOO_LOW / "
                "expiry) once the pool saturates.\n");

    run.metric("offered_tps", offered_tps);
    run.metric("load_seconds", load_secs);
    run.metric("submitted", engine.stats().submitted);
    run.metric("distinct_agents", engine.stats().distinct_agents);
    run.metric("hot_submissions", engine.stats().hot_submissions);
    run.metric("workload_rbf_bids", engine.stats().rbf_bids);
    run.metric("confirmed", net.confirmed_tx_count());
    run.metric("confirmed_tps", confirmed_tps);
    run.metric("peer0_evicted", pool0.drops(ledger::MempoolDropReason::kEvicted));
    run.metric("peer0_expired", pool0.drops(ledger::MempoolDropReason::kExpired));
    run.metric("peer0_replaced",
               pool0.drops(ledger::MempoolDropReason::kReplaced));
    run.metric("lifecycle_dropped", net.lifecycle().dropped_count());
    run.metric("blocks_mined", net.stats().blocks_mined);
    return 0;
}
