// E10 — §5.4 (sharding): throughput scales with shard count for partitionable
// workloads, and cross-shard transactions erode the gain (two-phase commits
// consume capacity in two shards plus coordination messages).
#include "bench_util.hpp"
#include "crypto/keys.hpp"
#include "scaling/sharding.hpp"

using namespace dlt;
using namespace dlt::scaling;

namespace {

double run(std::size_t shards, double cross_fraction, std::uint64_t seed,
           ShardingStats* stats_out = nullptr) {
    ShardingParams params;
    params.shard_count = shards;
    params.per_shard_block_capacity = 50;
    ShardedLedger ledger(params, seed);

    std::vector<crypto::Address> users;
    for (int i = 0; i < 256; ++i) {
        users.push_back(crypto::PrivateKey::from_seed("e10-" + std::to_string(i)).address());
        ledger.credit(users.back(), 1'000'000);
    }

    Rng rng(seed ^ 0x5A);
    int submitted = 0;
    const int target = 5000;
    int attempts = 0;
    while (submitted < target && attempts < target * 40) {
        ++attempts;
        const auto& from = users[rng.index(users.size())];
        const auto& to = users[rng.index(users.size())];
        if (from == to) continue;
        const bool cross = ledger.shard_of(from) != ledger.shard_of(to);
        const bool want_cross = rng.uniform01() < cross_fraction;
        if (cross != want_cross) continue;
        if (ledger.submit({from, to, 1})) ++submitted;
    }
    while (ledger.pending() > 0) ledger.step();
    if (stats_out != nullptr) *stats_out = ledger.stats();
    return ledger.throughput_tps();
}

} // namespace

int main() {
    bench::Run bench_run("E10");
    bench::ObsEnv obs_env;
    bench::title("E10: sharding throughput (§5.4)",
                 "Claim: parallel shards multiply throughput; cross-shard "
                 "two-phase traffic erodes the speedup.");

    std::printf("Scaling with shard count (intra-shard workload):\n");
    {
        bench::Table table({"shards", "tps", "speedup-vs-1"});
        const double base = run(1, 0.0, 1);
        for (const std::size_t shards : {1u, 2u, 4u, 8u, 16u}) {
            const double tps = run(shards, 0.0, 1);
            table.row({bench::fmt_int(shards), bench::fmt(tps, 0),
                       bench::fmt(tps / base, 2)});
        }
        table.print();
    }

    std::printf("\nCross-shard fraction sweep (8 shards):\n");
    {
        bench::Table table(
            {"cross-fraction", "tps", "coordination-msgs", "cross-committed"});
        for (const double cross : {0.0, 0.2, 0.5, 0.8, 1.0}) {
            ShardingStats stats;
            const double tps = run(8, cross, 2, &stats);
            table.row({bench::fmt(cross, 1), bench::fmt(tps, 0),
                       bench::fmt_int(stats.cross_messages),
                       bench::fmt_int(stats.cross_committed)});
        }
        table.print();
    }

    std::printf("\nExpected shape: near-linear speedup at cross=0; throughput "
                "falls and coordination traffic rises as the cross-shard "
                "fraction grows — the data-partitioning cost §5.4 warns about.\n");
    return 0;
}
