// E9 — §2.4 (Bitcoin-NG): PoW elects a leader (key blocks) who serializes
// transactions in frequent microblocks. At the same 600 s PoW cadence, NG's
// throughput tracks the offered load instead of the block-size/interval cap,
// and inclusion latency drops from hundreds of seconds to ~the microblock
// interval.
#include "bench_util.hpp"
#include "consensus/bitcoinng.hpp"
#include "core/experiment.hpp"

using namespace dlt;
using namespace dlt::consensus;

int main() {
    bench::Run bench_run("E09");
    bench::ObsEnv obs_env;
    bench::title("E9: Bitcoin-NG vs Nakamoto (§2.4)",
                 "Claim: decoupling leader election from serialization lifts "
                 "throughput to bandwidth limits at unchanged PoW cadence.");

    bench::Table table({"system", "offered-tps", "served-tps", "incl-latency-s",
                        "key-blocks", "microblocks"});

    for (const double offered : {10.0, 50.0, 200.0}) {
        BitcoinNgParams params;
        params.key_block_interval = 600.0;
        params.microblock_interval = 1.0;
        params.tx_rate = offered;
        params.max_txs_per_microblock = 1000;
        BitcoinNgSimulation sim(params, 900 + static_cast<int>(offered));
        sim.start();
        sim.run_for(3600 * 4);
        table.row({"bitcoin-ng", bench::fmt(offered, 0),
                   bench::fmt(sim.throughput_tps(), 1),
                   sim.mean_inclusion_latency()
                       ? bench::fmt(*sim.mean_inclusion_latency(), 2)
                       : "-",
                   bench::fmt_int(sim.stats().key_blocks),
                   bench::fmt_int(sim.stats().microblocks)});
    }

    // Nakamoto reference at the same PoW interval.
    {
        core::ChainSpec spec = core::ChainSpec::bitcoin_like();
        spec.node_count = 5;
        core::Workload load;
        load.tx_rate = 15.0;
        load.duration = 600.0 * 6;
        const auto m = core::run_experiment(spec, load, 901);
        table.row({"nakamoto", bench::fmt(load.tx_rate, 0),
                   bench::fmt(m.throughput_tps, 1),
                   m.mean_confirmation_latency
                       ? bench::fmt(*m.mean_confirmation_latency, 0)
                       : "-",
                   bench::fmt_int(m.blocks), "0"});
    }
    table.print();

    std::printf("\nExpected shape: NG serves the offered load (10/50/200 tps) "
                "with ~1 s inclusion latency; Nakamoto saturates near 7 tps with "
                "triple-digit latency at the same 600 s PoW interval.\n");
    return 0;
}
