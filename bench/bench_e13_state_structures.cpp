// E13 — §5.4 (state data structures): compares the Merkle-Patricia trie, the
// IAVL+ tree, and a plain unauthenticated map for the account-state workload:
// random updates + root recomputation per block, lookups, and proof sizes.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "datastruct/iavl.hpp"
#include "datastruct/mpt.hpp"

using namespace dlt;
using namespace dlt::datastruct;

namespace {

std::vector<std::pair<Bytes, Bytes>> account_workload(std::size_t n) {
    std::vector<std::pair<Bytes, Bytes>> kvs;
    kvs.reserve(n);
    Rng rng(13);
    for (std::size_t i = 0; i < n; ++i) {
        // Account keys are hash-derived (uniform nibbles), values are balances.
        const Hash256 key = crypto::sha256(to_bytes("acct" + std::to_string(i)));
        Bytes value(16);
        for (auto& b : value) b = static_cast<std::uint8_t>(rng.next());
        kvs.emplace_back(Bytes(key.data.begin(), key.data.begin() + 20), value);
    }
    return kvs;
}

void BM_MptInsert(benchmark::State& state) {
    const auto kvs = account_workload(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        MerklePatriciaTrie trie;
        for (const auto& [k, v] : kvs) trie.put(k, v);
        benchmark::DoNotOptimize(trie.root_hash());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MptInsert)->Range(256, 4096);

void BM_IavlInsert(benchmark::State& state) {
    const auto kvs = account_workload(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        IavlTree tree;
        for (const auto& [k, v] : kvs) tree.set(k, v);
        benchmark::DoNotOptimize(tree.root_hash());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IavlInsert)->Range(256, 4096);

void BM_FlatMapInsert(benchmark::State& state) {
    // The unauthenticated baseline: what a plain DBMS would do (no root hash).
    const auto kvs = account_workload(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        std::unordered_map<std::string, Bytes> map;
        for (const auto& [k, v] : kvs)
            map[std::string(k.begin(), k.end())] = v;
        benchmark::DoNotOptimize(map.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlatMapInsert)->Range(256, 4096);

void BM_MptBlockUpdate(benchmark::State& state) {
    // Per-block workload: 100 updates then a fresh root (cache invalidation).
    const auto kvs = account_workload(2048);
    MerklePatriciaTrie trie;
    for (const auto& [k, v] : kvs) trie.put(k, v);
    Rng rng(17);
    for (auto _ : state) {
        for (int i = 0; i < 100; ++i) {
            const auto& [k, v] = kvs[rng.index(kvs.size())];
            trie.put(k, v);
        }
        benchmark::DoNotOptimize(trie.root_hash());
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MptBlockUpdate);

void BM_IavlBlockUpdate(benchmark::State& state) {
    const auto kvs = account_workload(2048);
    IavlTree tree;
    for (const auto& [k, v] : kvs) tree.set(k, v);
    Rng rng(17);
    for (auto _ : state) {
        for (int i = 0; i < 100; ++i) {
            const auto& [k, v] = kvs[rng.index(kvs.size())];
            tree.set(k, v);
        }
        benchmark::DoNotOptimize(tree.root_hash());
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_IavlBlockUpdate);

void BM_MptLookup(benchmark::State& state) {
    const auto kvs = account_workload(4096);
    MerklePatriciaTrie trie;
    for (const auto& [k, v] : kvs) trie.put(k, v);
    Rng rng(19);
    for (auto _ : state) {
        const auto& [k, v] = kvs[rng.index(kvs.size())];
        benchmark::DoNotOptimize(trie.get(k));
    }
}
BENCHMARK(BM_MptLookup);

void BM_IavlLookup(benchmark::State& state) {
    const auto kvs = account_workload(4096);
    IavlTree tree;
    for (const auto& [k, v] : kvs) tree.set(k, v);
    Rng rng(19);
    for (auto _ : state) {
        const auto& [k, v] = kvs[rng.index(kvs.size())];
        benchmark::DoNotOptimize(tree.get(k));
    }
}
BENCHMARK(BM_IavlLookup);

} // namespace

int main(int argc, char** argv) {
    bench::Run bench_run("E13");
    bench::ObsEnv obs_env;
    bench::title("E13: account-state structures (§5.4)",
                 "Claim: the choice of authenticated structure (MPT vs IAVL+) "
                 "governs validation speed and proof size; both pay a hashing "
                 "tax over an unauthenticated map.");

    // Proof-size table (MPT provides proofs; IAVL's would be comparable;
    // flat map has none).
    bench::Table table({"accounts", "mpt-proof-bytes", "mpt-root-depth-est"});
    for (const std::size_t n : {256u, 1024u, 4096u}) {
        const auto kvs = account_workload(n);
        MerklePatriciaTrie trie;
        for (const auto& [k, v] : kvs) trie.put(k, v);
        const auto proof = trie.prove(kvs[n / 2].first);
        table.row({bench::fmt_int(n), bench::fmt_int(proof.size_bytes()),
                   bench::fmt_int(proof.nodes.size())});
    }
    table.print();
    std::printf("\nExpected shape: proof size grows logarithmically; IAVL "
                "updates beat MPT on pointer-heavy paths while MPT proofs are "
                "compact. The flat map wins raw speed but offers no "
                "verifiability — the blockchain-vs-DDBMS trade of §2.6.\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
