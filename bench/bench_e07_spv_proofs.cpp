// E7 — §2.2 / Fig. 2: Merkle trees give lightweight (SPV) clients O(log n)
// inclusion proofs; verifying a payment needs the proof + header, not the full
// block. Reports proof sizes across block sizes and micro-benchmarks proof
// generation/verification against full-block hashing.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "crypto/sha256.hpp"
#include "datastruct/merkle.hpp"

using namespace dlt;
using namespace dlt::datastruct;

namespace {

std::vector<Hash256> make_txids(std::size_t n) {
    std::vector<Hash256> txids;
    txids.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        txids.push_back(crypto::sha256(to_bytes("tx" + std::to_string(i))));
    return txids;
}

void BM_BuildTree(benchmark::State& state) {
    const auto txids = make_txids(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        MerkleTree tree(txids);
        benchmark::DoNotOptimize(tree.root());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildTree)->Range(64, 16384)->Complexity(benchmark::oN);

void BM_ProveLeaf(benchmark::State& state) {
    const auto txids = make_txids(static_cast<std::size_t>(state.range(0)));
    const MerkleTree tree(txids);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto proof = tree.prove(i++ % txids.size());
        benchmark::DoNotOptimize(proof);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ProveLeaf)->Range(64, 16384)->Complexity(benchmark::oLogN);

void BM_VerifyProof(benchmark::State& state) {
    const auto txids = make_txids(static_cast<std::size_t>(state.range(0)));
    const MerkleTree tree(txids);
    const auto proof = tree.prove(txids.size() / 2);
    for (auto _ : state) {
        const Hash256 root = merkle_root_from_proof(txids[txids.size() / 2], proof);
        benchmark::DoNotOptimize(root);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VerifyProof)->Range(64, 16384)->Complexity(benchmark::oLogN);

void BM_FullBlockValidation(benchmark::State& state) {
    // The non-SPV alternative: recompute the whole tree.
    const auto txids = make_txids(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        const Hash256 root = merkle_root(txids);
        benchmark::DoNotOptimize(root);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullBlockValidation)->Range(64, 16384)->Complexity(benchmark::oN);

} // namespace

int main(int argc, char** argv) {
    bench::Run bench_run("E07");
    bench::ObsEnv obs_env;
    bench::title("E7: SPV Merkle proofs (Fig. 2, §2.2)",
                 "Claim: proof size/verify cost is O(log n) in block size; full "
                 "validation is O(n).");

    bench::Table table(
        {"txs-per-block", "proof-steps", "proof-bytes", "block-tx-bytes(est)"});
    for (const std::size_t n : {64u, 512u, 4096u, 16384u}) {
        const auto txids = make_txids(n);
        const MerkleTree tree(txids);
        const auto proof = tree.prove(n / 2);
        table.row({bench::fmt_int(n), bench::fmt_int(proof.steps.size()),
                   bench::fmt_int(proof.size_bytes()),
                   bench::fmt_int(n * 250)});
    }
    table.print();
    std::printf("\nExpected shape: proof grows by one 33-byte step per doubling "
                "(log2 n); the full block grows linearly.\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
