// E22 — partition & heal (§2.2 dependability): cut a PoW network into two
// halves, let both sides mine divergent chains, then heal the cut and measure
// how long reconvergence takes and how many blocks are orphaned as a function
// of partition duration. The PBFT half of the experiment drives the same cut
// through an f=1 cluster: a quorum-splitting partition costs liveness (zero
// commits) but never safety, and commits resume consistently after the heal.
#include "bench_util.hpp"
#include "consensus/nakamoto.hpp"
#include "consensus/pbft.hpp"

using namespace dlt;
using namespace dlt::consensus;

namespace {

struct PartitionResult {
    std::uint64_t height_a = 0;     // side-A tip height just before heal
    std::uint64_t height_b = 0;     // side-B tip height just before heal
    bool diverged = false;          // tips differed across the cut
    double reconverge_s = -1;       // heal -> all tips identical (-1: timed out)
    std::uint64_t orphans = 0;      // stale blocks at peer 0 after convergence
    std::uint64_t reorgs = 0;
};

PartitionResult run_pow_partition(double cut_duration, std::uint64_t seed) {
    NakamotoParams params;
    params.node_count = 16;
    params.block_interval = 30.0;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    params.link.latency_mean = 0.05;
    params.link.latency_jitter = 0.02;
    NakamotoNetwork net(params, seed);
    net.start();
    net.run_for(300); // establish a shared prefix

    net.network().partition("cut", {{0, 1, 2, 3, 4, 5, 6, 7},
                                    {8, 9, 10, 11, 12, 13, 14, 15}});
    net.run_for(cut_duration);

    PartitionResult r;
    r.height_a = net.height_of(0);
    r.height_b = net.height_of(8);
    r.diverged = net.tip_of(0) != net.tip_of(8) &&
                 !net.chain_of(0).contains(net.tip_of(8));

    net.network().heal("cut");
    const SimTime healed_at = net.now();
    // Reconvergence: the next cross-cut announcement triggers the ancestor
    // walk-back; poll in 5 s steps until every tip matches (cap 20 min).
    for (int step = 0; step < 240 && !net.converged(); ++step) net.run_for(5);
    if (net.converged()) r.reconverge_s = net.now() - healed_at;
    r.orphans = net.stale_blocks();
    r.reorgs = net.stats().reorgs;
    return r;
}

struct PbftResult {
    std::size_t committed_during_cut = 0;
    std::size_t committed_after_heal = 0;
    bool consistent = false;
    std::uint32_t max_view = 0;
    double heal_to_commit_s = -1;
};

PbftResult run_pbft_partition(std::uint64_t seed) {
    PbftConfig config;
    config.f = 1; // n = 4: any 2|2 cut splits the 2f+1 quorum
    config.batch_size = 10;
    config.batch_interval = 0.1;
    config.view_change_timeout = 3.0;
    PbftCluster cluster(config, seed);

    net::FaultPlan plan;
    plan.cut(5.0, "cut", {{0, 1}, {2, 3}}).heal(35.0, "cut");
    cluster.network().apply(plan);

    cluster.run_for(6.0); // the cut is now in effect
    for (int i = 0; i < 20; ++i)
        cluster.submit(to_bytes("req-" + std::to_string(i)));
    cluster.run_for(29.0); // t=35: still cut the whole time
    PbftResult r;
    r.committed_during_cut = cluster.executed_requests(0);

    cluster.run_for(120.0);
    r.committed_after_heal = cluster.executed_requests(0);
    r.consistent = cluster.logs_consistent();
    r.max_view = cluster.max_view();
    if (r.committed_after_heal > 0 && cluster.mean_commit_latency())
        r.heal_to_commit_s = *cluster.mean_commit_latency();
    return r;
}

} // namespace

int main() {
    bench::Run bench_run("E22");
    bench::ObsEnv obs_env;
    bench::title("E22: partition & heal (§2.2)",
                 "Claim: a partitioned PoW network forks and pays for the cut "
                 "in orphaned blocks and reconvergence time proportional to the "
                 "partition duration; a quorum-split PBFT cluster loses "
                 "liveness (never safety) and recovers after the heal.");

    std::printf("PoW 16 nodes, 30 s block interval, 8|8 cut after 300 s warmup:\n");
    {
        bench::Table table({"cut-s", "height-A", "height-B", "diverged",
                            "reconverge-s", "orphans", "reorgs"});
        for (const double cut : {120.0, 300.0, 600.0}) {
            const PartitionResult r =
                run_pow_partition(cut, 2200 + static_cast<std::uint64_t>(cut));
            table.row({bench::fmt(cut, 0), bench::fmt_int(r.height_a),
                       bench::fmt_int(r.height_b), r.diverged ? "yes" : "no",
                       r.reconverge_s >= 0 ? bench::fmt(r.reconverge_s, 0)
                                           : "timeout",
                       bench::fmt_int(r.orphans), bench::fmt_int(r.reorgs)});
            const std::string tag = bench::fmt(cut, 0);
            bench_run.metric("pow_cut" + tag + "_reconverge_s", r.reconverge_s);
            bench_run.metric("pow_cut" + tag + "_orphans", r.orphans);
        }
        table.print();
    }

    std::printf("\nPBFT f=1 (n=4), 2|2 cut t=5..35 s, 20 requests during the cut:\n");
    {
        const PbftResult r = run_pbft_partition(2300);
        bench::Table table({"phase", "committed", "consistent", "max-view"});
        table.row({"during cut", bench::fmt_int(r.committed_during_cut),
                   r.consistent ? "yes" : "no", "-"});
        table.row({"after heal", bench::fmt_int(r.committed_after_heal),
                   r.consistent ? "yes" : "no", bench::fmt_int(r.max_view)});
        table.print();
        bench_run.metric("pbft_committed_during_cut",
                         static_cast<std::uint64_t>(r.committed_during_cut));
        bench_run.metric("pbft_committed_after_heal",
                         static_cast<std::uint64_t>(r.committed_after_heal));
        bench_run.metric("pbft_consistent",
                         static_cast<std::uint64_t>(r.consistent ? 1 : 0));
        bench_run.metric("pbft_max_view", static_cast<std::uint64_t>(r.max_view));
    }

    std::printf("\nExpected shape: both halves keep mining so orphan count grows "
                "~linearly with partition duration (the losing half's blocks); "
                "reconvergence needs one cross-cut announcement plus the "
                "ancestor walk-back. PBFT commits exactly 0 under a quorum "
                "split and all 20 requests after the heal, logs consistent.\n");
    return 0;
}
