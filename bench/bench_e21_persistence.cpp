// E21 — persistency layer (paper §3.1 "Dependable", §5.4 bootstrap): a node
// must survive restarts without replaying the world. Measures (1) durable
// block-connect throughput through the WAL-journaled PersistentNode, with and
// without per-commit fsync, (2) reopen/recovery time — full WAL replay vs
// snapshot + short replay, and (3) cold vs warm reads through the BlockStore's
// LRU decoded-block cache.
#include <filesystem>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/persistent_node.hpp"
#include "ledger/difficulty.hpp"
#include "scaling/bootstrap.hpp"
#include "storage/blockstore.hpp"

using namespace dlt;
using namespace dlt::ledger;

namespace {

crypto::Address addr(const std::string& seed) {
    return crypto::PrivateKey::from_seed(seed).address();
}

// Blocks with a coinbase plus `payload_txs` opaque record transactions, the
// body weight a real chain would carry.
std::vector<Block> build_chain(const Block& genesis, int n, int payload_txs) {
    std::vector<Block> blocks;
    blocks.reserve(static_cast<std::size_t>(n));
    Hash256 prev = genesis.hash();
    std::uint64_t nonce = 0;
    for (int i = 1; i <= n; ++i) {
        Block b;
        b.header.prev_hash = prev;
        b.header.height = static_cast<std::uint64_t>(i);
        b.header.timestamp = 10.0 * i;
        b.txs.push_back(make_coinbase(addr("e21-miner"),
                                      block_subsidy(static_cast<std::uint64_t>(i)),
                                      static_cast<std::uint64_t>(i)));
        for (int t = 0; t < payload_txs; ++t) {
            Transaction tx;
            tx.kind = TxKind::kRecord;
            tx.nonce = nonce++;
            tx.data = Bytes(400, static_cast<std::uint8_t>(t));
            b.txs.push_back(tx);
        }
        b.header.merkle_root = b.compute_merkle_root();
        blocks.push_back(std::move(b));
        prev = blocks.back().hash();
    }
    return blocks;
}

std::uint64_t chain_bytes(const std::vector<Block>& blocks) {
    std::uint64_t total = 0;
    for (const auto& b : blocks) total += b.serialized_size();
    return total;
}

struct TempDir {
    std::filesystem::path path;
    explicit TempDir(const std::string& tag) {
        path = std::filesystem::temp_directory_path() / ("dlt-bench-e21-" + tag);
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

} // namespace

int main() {
    bench::Run run("E21");
    bench::ObsEnv obs_env;
    bench::title("E21: persistency layer (§3.1 dependable, §5.4 bootstrap)",
                 "Claim: WAL-journaled storage sustains high durable write rates, "
                 "recovery replays the journal (snapshots shorten it), and the "
                 "LRU block cache turns repeat reads into memory hits.");

    const Block genesis = make_genesis("e21", easy_bits(2));
    const int kBlocks = 1500;
    const auto blocks = build_chain(genesis, kBlocks, 10);
    const double total_mb = static_cast<double>(chain_bytes(blocks)) / (1024.0 * 1024.0);

    // --- 1: durable write throughput -------------------------------------------
    bench::Table writes({"fsync-mode", "blocks", "MB", "seconds", "blocks/s", "MB/s"});
    double replay_dir_seconds = 0;
    {
        TempDir dir("fsync");
        core::PersistentNodeOptions options;
        options.fsync = storage::FsyncMode::kAlways;
        bench::Timer t;
        core::PersistentNode node(dir.path, genesis, options);
        for (const auto& b : blocks) node.connect_block(b);
        const double s = t.elapsed_s();
        writes.row({"always", bench::fmt_int(kBlocks), bench::fmt(total_mb),
                    bench::fmt(s, 3), bench::fmt(kBlocks / s, 0),
                    bench::fmt(total_mb / s)});
        run.metric("write_fsync_blocks_per_s", kBlocks / s);
        run.metric("write_fsync_mb_per_s", total_mb / s);

        // --- 2a: reopen with full-journal replay --------------------------------
        t.restart();
        core::PersistentNode reopened(dir.path, genesis);
        replay_dir_seconds = t.elapsed_s();
        if (reopened.height() != static_cast<std::uint64_t>(kBlocks) ||
            reopened.recovery().wal_records_replayed != static_cast<std::uint64_t>(kBlocks))
            std::printf("!! full replay recovered unexpected state\n");
        run.metric("reopen_full_replay_s", replay_dir_seconds);
        run.metric("reopen_full_replay_records",
                   reopened.recovery().wal_records_replayed);
    }
    {
        TempDir dir("nofsync");
        core::PersistentNodeOptions options;
        options.fsync = storage::FsyncMode::kNever;
        bench::Timer t;
        core::PersistentNode node(dir.path, genesis, options);
        for (const auto& b : blocks) node.connect_block(b);
        const double s = t.elapsed_s();
        writes.row({"never", bench::fmt_int(kBlocks), bench::fmt(total_mb),
                    bench::fmt(s, 3), bench::fmt(kBlocks / s, 0),
                    bench::fmt(total_mb / s)});
        run.metric("write_nofsync_blocks_per_s", kBlocks / s);
        run.metric("write_nofsync_mb_per_s", total_mb / s);
    }
    writes.print();

    // --- 2b: snapshot shortens recovery ----------------------------------------
    bench::Table recovery({"recovery-path", "replayed-records", "seconds"});
    {
        TempDir dir("snap");
        core::PersistentNodeOptions options;
        options.fsync = storage::FsyncMode::kNever;
        {
            core::PersistentNode node(dir.path, genesis, options);
            for (int i = 0; i < kBlocks - 100; ++i)
                node.connect_block(blocks[static_cast<std::size_t>(i)]);
            node.snapshot();
            for (int i = kBlocks - 100; i < kBlocks; ++i)
                node.connect_block(blocks[static_cast<std::size_t>(i)]);
        }
        bench::Timer t;
        core::PersistentNode node(dir.path, genesis);
        const double s = t.elapsed_s();
        recovery.row({"snapshot + tail replay",
                      bench::fmt_int(node.recovery().wal_records_replayed),
                      bench::fmt(s, 4)});
        recovery.row({"full journal replay", bench::fmt_int(kBlocks),
                      bench::fmt(replay_dir_seconds, 4)});
        run.metric("reopen_snapshot_replay_s", s);
        run.metric("reopen_snapshot_replay_records",
                   node.recovery().wal_records_replayed);

        // E14 tie-in: the disk snapshot is bootstrap-compatible.
        const scaling::Checkpoint cp = node.checkpoint();
        const ledger::UtxoSet restored = scaling::restore_snapshot(cp);
        if (restored.size() != node.utxo().size())
            std::printf("!! disk checkpoint restore mismatch\n");
    }
    recovery.print();

    // --- 3: cold vs warm block reads through the LRU cache ----------------------
    bench::Table reads({"pass", "reads", "seconds", "us/read", "hit-rate"});
    {
        TempDir dir("cache");
        {
            storage::BlockStore store(dir.path);
            UtxoSet state;
            state.apply_block(genesis);
            for (const auto& b : blocks) store.append(b, state.apply_block(b));
        }
        storage::BlockStoreOptions options;
        options.cache_capacity = 256;
        storage::BlockStore store(dir.path, options);

        Rng rng(21);
        std::vector<Hash256> hot;
        for (int i = 0; i < 256; ++i)
            hot.push_back(blocks[rng.uniform(static_cast<std::uint64_t>(kBlocks))].hash());

        const int kReads = 20000;
        bench::Timer t;
        for (int i = 0; i < kReads; ++i)
            (void)store.read_block(hot[static_cast<std::size_t>(i) % hot.size()]);
        const double cold_s = t.elapsed_s();
        const auto cold = store.stats();
        reads.row({"first touch + reuse", bench::fmt_int(kReads), bench::fmt(cold_s, 4),
                   bench::fmt(1e6 * cold_s / kReads, 3),
                   bench::fmt(static_cast<double>(cold.cache_hits) /
                                  static_cast<double>(cold.cache_hits + cold.cache_misses),
                              3)});

        t.restart();
        for (int i = 0; i < kReads; ++i)
            (void)store.read_block(hot[static_cast<std::size_t>(i) % hot.size()]);
        const double warm_s = t.elapsed_s();
        const auto warm = store.stats();
        const double warm_hits = static_cast<double>(warm.cache_hits - cold.cache_hits);
        reads.row({"warm (all cached)", bench::fmt_int(kReads), bench::fmt(warm_s, 4),
                   bench::fmt(1e6 * warm_s / kReads, 3),
                   bench::fmt(warm_hits / kReads, 3)});

        run.metric("cold_read_us", 1e6 * cold_s / kReads);
        run.metric("warm_read_us", 1e6 * warm_s / kReads);
        run.metric("warm_hit_rate", warm_hits / kReads);
        run.metric("cache_evictions", warm.cache_evictions);
    }
    reads.print();

    std::printf("\nExpected shape: fsync=never writes an order of magnitude faster "
                "than fsync=always; snapshot recovery replays ~100 records instead "
                "of the whole journal; warm reads are pure memory hits, orders of "
                "magnitude under the cold decode path.\n");
    return 0;
}
