// E2 — §2.7 (Bitcoin as a DC system): 10-minute blocks and 1 MB blocks cap
// throughput near 7 tps regardless of offered load, and adding hash power does
// NOT raise throughput: difficulty retargeting restores the 600 s interval, so
// capacity (txs/block / interval) is invariant — "Bitcoin does not yield
// increased performance despite the increase in power".
#include "bench_util.hpp"
#include "common/threadpool.hpp"
#include "consensus/nakamoto.hpp"
#include "core/dcs.hpp"
#include "core/experiment.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"

using namespace dlt;
using namespace dlt::core;

int main() {
    bench::Run run("E02");
    bench::ObsEnv obs_env; // uniform DLT_TRACE / DLT_METRICS wiring
    bench::title("E2: Bitcoin throughput ceiling (§2.7)",
                 "Claim: ~7 tps no matter the offered load; hash power growth is "
                 "absorbed by difficulty retargeting.");

    std::printf("Offered-load sweep (capacity = 4000 txs/block / 600 s = 6.7 tps):\n");
    {
        bench::Table table({"offered-tps", "confirmed-tps", "mean-latency-s",
                            "blocks", "saturated"});
        int row = 0;
        for (const double offered : {2.0, 7.0, 12.0}) {
            ChainSpec spec = ChainSpec::bitcoin_like();
            spec.node_count = 4;
            Workload load;
            load.tx_rate = offered;
            load.duration = 600.0 * 24; // 4 simulated hours
            const auto m = run_experiment(spec, load, 42 + row++);
            table.row({bench::fmt(offered, 1), bench::fmt(m.throughput_tps),
                       m.mean_confirmation_latency
                           ? bench::fmt(*m.mean_confirmation_latency, 0)
                           : "-",
                       bench::fmt_int(m.blocks),
                       m.throughput_tps < offered * 0.9 ? "yes" : "no"});
        }
        table.print();
    }

    std::printf("\nHash-power sweep with difficulty retargeting (interval 600 s, "
                "retarget every 8 blocks):\n");
    {
        bench::Table table({"hashpower", "observed-interval-s", "confirmed-tps",
                            "blocks"});
        for (const double power : {1.0, 4.0, 16.0}) {
            consensus::NakamotoParams params;
            params.node_count = 4;
            params.block_interval = 600.0;
            params.validation.sig_mode = ledger::SigCheckMode::kSkip;
            params.enable_retargeting = true;
            params.retarget.interval_blocks = 8;
            params.retarget.target_spacing = 600.0;
            consensus::NakamotoNetwork net(params, 77);
            net.set_network_hashrate(power);
            net.start();

            // Steady 2 tps record workload (below capacity: the question is
            // whether capacity itself moves with hash power).
            Rng rng(78);
            const double duration = 600.0 * 80; // long enough for ~8 retargets
            std::uint64_t sequence = 0;
            double next = rng.exponential(2.0);
            while (next < duration) {
                net.run_for(next - net.now());
                ledger::Transaction tx;
                tx.kind = ledger::TxKind::kRecord;
                tx.nonce = sequence++;
                tx.data = Bytes(170, 0xAB);
                tx.declared_fee = 100;
                net.submit_transaction(tx, static_cast<net::NodeId>(rng.uniform(4)));
                next += rng.exponential(2.0);
            }
            net.run_for(duration - net.now() + 1200);

            std::uint64_t confirmed = 0;
            std::uint64_t blocks = 0;
            for (const auto& block : net.canonical_chain()) {
                if (block.header.timestamp > duration) continue;
                ++blocks;
                for (const auto& tx : block.txs)
                    if (!tx.is_coinbase()) ++confirmed;
            }
            table.row({bench::fmt(power, 0),
                       net.observed_interval(24)
                           ? bench::fmt(*net.observed_interval(24), 0)
                           : "-",
                       bench::fmt(static_cast<double>(confirmed) / duration),
                       bench::fmt_int(blocks)});
        }
        table.print();
    }

    std::printf("\nFull-ECDSA validation (SigCheckMode::kFull, wall-clock):\n");
    {
        // Signed account-family records: every peer runs real signature
        // verification when it connects a block, so this section measures the
        // host-side crypto cost of validation (virtual-time results above are
        // unaffected by how fast the host checks signatures).
        bench::Timer sig_timer;
        consensus::NakamotoParams params;
        params.node_count = 8;
        params.block_interval = 30.0;
        params.validation.sig_mode = ledger::SigCheckMode::kFull;
        consensus::NakamotoNetwork net(params, 99);
        net.start();

        std::vector<crypto::PrivateKey> signers;
        for (int i = 0; i < 16; ++i)
            signers.push_back(crypto::PrivateKey::from_seed("e02/signer/" +
                                                            std::to_string(i)));

        Rng rng(101);
        const double duration = 600.0; // virtual seconds (~20 blocks)
        const double tx_rate = 2.0;
        std::uint64_t sequence = 0;
        double next = rng.exponential(tx_rate);
        while (next < duration) {
            net.run_for(next - net.now());
            ledger::Transaction tx;
            tx.kind = ledger::TxKind::kRecord;
            tx.nonce = sequence;
            tx.data = Bytes(170, 0xCD);
            tx.declared_fee = 100;
            tx.sign_with(signers[sequence % signers.size()]);
            ++sequence;
            net.submit_transaction(tx, static_cast<net::NodeId>(rng.uniform(8)));
            next += rng.exponential(tx_rate);
        }
        net.run_for(duration - net.now() + 120.0);

        std::uint64_t confirmed = 0;
        for (const auto& block : net.canonical_chain())
            for (const auto& tx : block.txs)
                if (!tx.is_coinbase()) ++confirmed;

        const double wall = sig_timer.elapsed_s();
        const std::uint64_t events = net.scheduler().events_processed();
        bench::Table table({"submitted", "confirmed", "virtual-s", "wall-s",
                            "events", "events/wall-s"});
        table.row({bench::fmt_int(sequence), bench::fmt_int(confirmed),
                   bench::fmt(duration, 0), bench::fmt(wall),
                   bench::fmt_int(events),
                   bench::fmt(bench::rate_per_sec(static_cast<double>(events), wall),
                              0)});
        table.print();

        run.metric("sig_full_wall_s", wall);
        run.metric("sig_full_submitted", sequence);
        run.metric("sig_full_confirmed", confirmed);
        run.metric("sig_full_events", events);
        run.metric("sig_full_events_per_sec",
                   bench::rate_per_sec(static_cast<double>(events), wall));
        // Host-side context for the wall-clock numbers: how many threads the
        // validation engine used and which SHA-256 backend was dispatched.
        run.metric("validation_threads",
                   static_cast<std::uint64_t>(ThreadPool::global_workers() + 1));
        run.note("sha256_backend", crypto::sha256_backend());
    }

    std::printf("\nExpected shape: confirmed tps tracks offered load until ~6.7 "
                "then saturates; in the hash-power sweep the observed interval "
                "returns to ~600 s at 1x, 4x, and 16x power, so confirmed tps is "
                "flat — scalability does not improve with resources (the 'S' "
                "Bitcoin gives up).\n");
    return 0;
}
