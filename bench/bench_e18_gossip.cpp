// E18 — §2.3 (P2P dissemination): gossip propagation time grows slowly
// (logarithmically) with network size; fanout trades redundancy (bandwidth)
// against propagation speed and delivery ratio.
#include <memory>

#include "bench_util.hpp"
#include "net/gossip.hpp"

using namespace dlt;
using namespace dlt::net;

namespace {

struct RunResult {
    double t50 = -1;
    double t99 = -1;
    double delivery = 0;
    std::uint64_t messages = 0;
};

RunResult run(std::size_t nodes, std::size_t fanout, std::uint64_t seed) {
    sim::Scheduler sched;
    Network net(sched, Rng(seed));
    GossipParams params;
    params.fanout = fanout;
    GossipOverlay overlay(net, nodes, params,
                          [](NodeId, NodeId, const std::string&, ByteView) {});
    net.build_unstructured_overlay(6);

    // Average over several broadcasts from random origins.
    Rng origins(seed ^ 0x77);
    RunResult result;
    const int rounds = 5;
    double t50_sum = 0, t99_sum = 0, delivery_sum = 0;
    int t50_count = 0, t99_count = 0;
    for (int i = 0; i < rounds; ++i) {
        const auto origin = static_cast<NodeId>(origins.uniform(nodes));
        const Hash256 id = overlay.broadcast(origin, "block", Bytes(500, 0xAB));
        sched.run();
        delivery_sum += overlay.delivery_ratio(id);
        if (const auto t = overlay.time_to_quantile(id, 0.5)) {
            t50_sum += *t;
            ++t50_count;
        }
        if (const auto t = overlay.time_to_quantile(id, 0.99)) {
            t99_sum += *t;
            ++t99_count;
        }
    }
    result.delivery = delivery_sum / rounds;
    if (t50_count > 0) result.t50 = t50_sum / t50_count;
    if (t99_count > 0) result.t99 = t99_sum / t99_count;
    result.messages = net.stats().messages_sent / rounds;
    return result;
}

} // namespace

int main() {
    bench::Run bench_run("E18");
    bench::ObsEnv obs_env;
    bench::title("E18: gossip propagation (§2.3)",
                 "Claim: multi-round gossip reaches the whole unstructured "
                 "overlay in O(log n) time; fanout trades bandwidth for speed.");

    std::printf("Network-size sweep (flooding, degree-6 overlay, 50 ms links):\n");
    {
        bench::Table table({"nodes", "t50-ms", "t99-ms", "delivery", "msgs/broadcast"});
        for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
            const RunResult r = run(n, 0, 1800 + n);
            table.row({bench::fmt_int(n),
                       r.t50 >= 0 ? bench::fmt(r.t50 * 1000, 0) : "-",
                       r.t99 >= 0 ? bench::fmt(r.t99 * 1000, 0) : "-",
                       bench::fmt(r.delivery, 3), bench::fmt_int(r.messages)});
        }
        table.print();
    }

    std::printf("\nFanout sweep (256 nodes):\n");
    {
        bench::Table table({"fanout", "t99-ms", "delivery", "msgs/broadcast"});
        for (const std::size_t fanout : {1u, 2u, 3u, 4u, 0u}) {
            const RunResult r = run(256, fanout, 1900 + fanout);
            table.row({fanout == 0 ? "flood" : bench::fmt_int(fanout),
                       r.t99 >= 0 ? bench::fmt(r.t99 * 1000, 0) : "incomplete",
                       bench::fmt(r.delivery, 3), bench::fmt_int(r.messages)});
        }
        table.print();
    }

    std::printf("\nExpected shape: t99 grows ~logarithmically across a 64x size "
                "increase; low fanout saves messages but risks partial delivery, "
                "flooding maximizes both cost and coverage.\n");
    return 0;
}
