// E29 — real-transport deployment mode (ROADMAP item 1): the same consensus
// stack that runs under the discrete-event Scheduler must hold up as an
// N-process loopback cluster of dlt-node daemons speaking framed TCP. The
// harness
//
//   1. generates one deterministic demand trace (app::WorkloadEngine against
//      a recording TxHost — Zipf agents, Poisson arrivals, fee bidding),
//   2. replays that trace wall-clock over each node's RPC port against a
//      live ClusterDriver cluster (Nakamoto and PBFT engines), measuring
//      confirmed tps and submit→inclusion latency percentiles from the
//      daemons' own lifecycle stamps,
//   3. runs the matching virtual-time simulation (NakamotoNetwork /
//      PbftCluster) over the same demand shape as the prediction baseline,
//   4. SIGKILLs one node mid-run, restarts it on its old data dir and ports,
//      and requires it to rejoin: WAL/LSM recovery plus protocol catch-up
//      until its tip digest agrees with the cluster.
//
// DLT_E29_QUICK=1 shrinks every dimension for CI smoke runs.
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "app/cluster.hpp"
#include "app/workload.hpp"
#include "bench_util.hpp"
#include "common/serialize.hpp"
#include "consensus/nakamoto.hpp"
#include "consensus/pbft.hpp"
#include "obs/txlifecycle.hpp"

using namespace dlt;

namespace {

struct TempDir {
    std::filesystem::path path;
    explicit TempDir(const std::string& tag) {
        path = std::filesystem::temp_directory_path() / ("dlt-bench-e29-" + tag);
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

// --- Demand trace ------------------------------------------------------------

/// TxHost that records what the workload engine would submit instead of
/// feeding a network: the bench replays the identical (tx, node, time) stream
/// against both the socket cluster (wall clock) and the simulation baselines.
class TraceHost final : public app::TxHost {
public:
    struct Entry {
        ledger::Transaction tx;
        double at = 0; // virtual seconds from trace start
        std::uint32_t node = 0;
    };

    sim::Scheduler& scheduler() override { return scheduler_; }
    const ledger::Mempool& mempool_of(net::NodeId) const override {
        return mempool_;
    }
    void submit_transaction(const ledger::Transaction& tx,
                            net::NodeId origin) override {
        entries.push_back(Entry{tx, scheduler_.now(), origin});
    }

    std::vector<Entry> entries;
    sim::Scheduler scheduler_;

private:
    ledger::Mempool mempool_; // fee-floor oracle for market-follower agents
};

std::vector<TraceHost::Entry> make_trace(double tps, double duration,
                                         std::uint32_t submit_nodes,
                                         std::uint64_t seed) {
    TraceHost host;
    app::WorkloadParams params;
    params.population = 10'000;
    params.base_tps = tps;
    params.submit_nodes = submit_nodes;
    app::WorkloadEngine engine(host, params, seed);
    engine.start();
    host.scheduler().run_until(duration);
    engine.stop();
    return std::move(host.entries);
}

// --- Small stats helpers -----------------------------------------------------

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0;
    std::sort(values.begin(), values.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(values.size() - 1) + 0.5);
    return values[std::min(idx, values.size() - 1)];
}

/// Crude counter extraction from the obs JSON snapshot ("name":value).
double metric_from_json(const std::string& json, const std::string& name) {
    const auto key = "\"" + name + "\":";
    const auto pos = json.find(key);
    if (pos == std::string::npos) return 0;
    return std::strtod(json.c_str() + pos + key.size(), nullptr);
}

// --- Live-cluster cell -------------------------------------------------------

struct ClusterCell {
    double tps = 0;
    double p50 = 0, p99 = 0;
    std::uint64_t submitted = 0, accepted = 0, confirmed = 0;
    bool digests_agree = false;
    std::size_t clean_exits = 0;
    double net_bytes_sent = 0, reconnects = 0;
};

/// Poll every node until one simultaneous status round shows identical tips.
bool await_digest_agreement(app::ClusterDriver& cluster, double timeout_s) {
    bench::Timer timer;
    while (timer.elapsed_s() < timeout_s) {
        std::vector<app::NodeStatus> statuses;
        bool all = true;
        for (std::size_t i = 0; i < cluster.node_count() && all; ++i) {
            if (!cluster.alive(i)) continue;
            const auto s = cluster.rpc(i).status();
            if (!s) {
                all = false;
                break;
            }
            statuses.push_back(*s);
        }
        if (all && !statuses.empty()) {
            bool agree = true;
            for (const auto& s : statuses)
                agree = agree && s.tip == statuses.front().tip;
            if (agree) return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return false;
}

/// Replay `trace` against a live cluster at wall-clock pace; when
/// `kill_rejoin` is set, SIGKILL the highest-id node a third of the way in
/// and restart it at two thirds, requiring recovery + catch-up.
ClusterCell run_cluster_cell(core::ReplicaEngine engine, std::size_t nodes,
                             double block_interval,
                             const std::vector<TraceHost::Entry>& trace,
                             const std::filesystem::path& work_dir,
                             bool kill_rejoin, double settle_timeout_s,
                             int* rejoin_exit = nullptr) {
    app::ClusterConfig config;
    config.node_count = nodes;
    config.engine = engine;
    config.block_interval = block_interval;
    config.work_dir = work_dir;
    config.chain_tag = "e29";
    app::ClusterDriver cluster(config);
    cluster.start();

    ClusterCell cell;
    const double trace_end = trace.empty() ? 0 : trace.back().at;
    const std::size_t victim = nodes - 1;
    const double kill_at = trace_end / 3.0;
    const double restart_at = 2.0 * trace_end / 3.0;
    bool killed = false, restarted = !kill_rejoin;

    bench::Timer clock;
    for (const auto& entry : trace) {
        while (clock.elapsed_s() < entry.at)
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        if (kill_rejoin && !killed && clock.elapsed_s() >= kill_at) {
            cluster.signal_node(victim, SIGKILL);
            const int code = cluster.wait_node(victim);
            if (rejoin_exit != nullptr) *rejoin_exit = code;
            killed = true;
        }
        if (killed && !restarted && clock.elapsed_s() >= restart_at) {
            cluster.restart_node(victim);
            restarted = true;
        }
        std::size_t target = entry.node % nodes;
        if (!cluster.alive(target)) target = (target + 1) % nodes;
        ++cell.submitted;
        if (cluster.rpc(target).submit(entry.tx)) ++cell.accepted;
    }
    if (killed && !restarted) {
        cluster.restart_node(victim);
        restarted = true;
    }

    // Drain: poll until the confirmed count stops moving (or timeout).
    std::uint64_t last_confirmed = 0;
    int stable_rounds = 0;
    bench::Timer settle;
    while (settle.elapsed_s() < settle_timeout_s && stable_rounds < 6) {
        std::uint64_t confirmed = 0;
        for (std::size_t i = 0; i < cluster.node_count(); ++i) {
            if (!cluster.alive(i)) continue;
            if (const auto s = cluster.rpc(i).status())
                confirmed = std::max(confirmed, s->confirmed_txs);
        }
        stable_rounds = confirmed == last_confirmed ? stable_rounds + 1 : 0;
        last_confirmed = confirmed;
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    cell.confirmed = last_confirmed;
    const double window = clock.elapsed_s();
    cell.tps = bench::rate_per_sec(static_cast<double>(cell.confirmed), window);

    cell.digests_agree = await_digest_agreement(cluster, settle_timeout_s);

    std::vector<double> latencies;
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
        if (!cluster.alive(i)) continue;
        const auto node_lat = cluster.rpc(i).latencies();
        latencies.insert(latencies.end(), node_lat.begin(), node_lat.end());
    }
    cell.p50 = percentile(latencies, 0.50);
    cell.p99 = percentile(latencies, 0.99);

    if (cluster.alive(0)) {
        const std::string metrics = cluster.rpc(0).metrics_json();
        cell.net_bytes_sent = metric_from_json(metrics, "net_tcp_bytes_sent_total");
        cell.reconnects = metric_from_json(metrics, "net_tcp_reconnects_total");
    }

    for (const int code : cluster.stop_all())
        if (code == 0) ++cell.clean_exits;
    return cell;
}

// --- Simulation baselines ----------------------------------------------------

struct SimCell {
    double tps = 0;
    double p50 = 0, p99 = 0;
    std::uint64_t confirmed = 0;
};

SimCell run_nakamoto_sim(std::size_t nodes, double block_interval, double tps,
                         double duration, std::uint64_t seed) {
    consensus::NakamotoParams params;
    params.node_count = nodes;
    params.block_interval = block_interval;
    params.chain_tag = "e29-sim";
    // Match the daemon's ReplicaConfig: unsigned record txs, skip sig checks.
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    consensus::NakamotoNetwork net(params, seed);
    net.start();
    app::WorkloadParams wp;
    wp.population = 10'000;
    wp.base_tps = tps;
    wp.submit_nodes = static_cast<std::uint32_t>(nodes);
    app::WorkloadEngine engine(net, wp, seed);
    engine.start();
    net.run_for(duration);
    engine.stop();
    net.run_for(10.0 * block_interval); // drain in-flight confirmations

    SimCell cell;
    cell.confirmed = net.confirmed_tx_count();
    cell.tps = bench::rate_per_sec(static_cast<double>(cell.confirmed), duration);
    const auto lat = net.lifecycle().latencies(obs::TxStage::kSubmitted,
                                               obs::TxStage::kIncluded);
    cell.p50 = percentile(lat, 0.50);
    cell.p99 = percentile(lat, 0.99);
    return cell;
}

SimCell run_pbft_sim(const std::vector<TraceHost::Entry>& trace,
                     double duration, std::uint64_t seed) {
    consensus::PbftConfig config;
    config.f = 1; // n = 4, the cluster size
    consensus::PbftCluster cluster(config, seed);
    for (const auto& entry : trace) {
        if (entry.at > cluster.now())
            cluster.run_for(entry.at - cluster.now());
        cluster.submit(encode_to_bytes(entry.tx));
    }
    cluster.run_for(5.0); // drain

    SimCell cell;
    cell.confirmed = cluster.executed_requests(0);
    cell.tps = bench::rate_per_sec(static_cast<double>(cell.confirmed), duration);
    const auto lat = cluster.lifecycle().latencies(obs::TxStage::kSubmitted,
                                                   obs::TxStage::kIncluded);
    cell.p50 = percentile(lat, 0.50);
    cell.p99 = percentile(lat, 0.99);
    return cell;
}

} // namespace

int main() {
#ifdef DLT_NODE_BIN_PATH
    // Baked-in build-tree location; an explicit DLT_NODE_BIN still wins.
    ::setenv("DLT_NODE_BIN", DLT_NODE_BIN_PATH, /*overwrite=*/0);
#endif
    const bool quick = std::getenv("DLT_E29_QUICK") != nullptr;
    bench::Run run("E29");
    bench::ObsEnv obs_env;
    bench::title("E29 - loopback cluster vs simulation",
                 "The socket-backed deployment mode must confirm transactions "
                 "at wall-clock rates comparable to the virtual-time "
                 "prediction, agree on tip digests across processes, and "
                 "survive kill + restart of a node through WAL recovery.");
    run.note("mode", quick ? "quick" : "full");

    const std::size_t nodes = 4;
    const double interval = quick ? 0.3 : 0.4;
    const double duration = quick ? 4.0 : 12.0;
    const double offered_tps = quick ? 60.0 : 150.0;
    const double settle = quick ? 6.0 : 10.0;
    run.metric("nodes", static_cast<std::uint64_t>(nodes));
    run.metric("offered_tps", offered_tps);
    run.metric("trace_seconds", duration);

    const auto trace =
        make_trace(offered_tps, duration, static_cast<std::uint32_t>(nodes), 29);
    std::printf("demand trace: %zu transactions over %.1fs (%.0f tx/s offered)\n\n",
                trace.size(), duration, offered_tps);

    TempDir dirs("work");
    bench::Table table({"cell", "engine", "confirmed", "tps", "p50 s", "p99 s",
                        "digests", "clean exits"});

    // Cell 1: Nakamoto over sockets vs the NakamotoNetwork prediction.
    const ClusterCell nk = run_cluster_cell(core::ReplicaEngine::kNakamoto,
                                            nodes, interval, trace,
                                            dirs.path / "nakamoto", false, settle);
    const SimCell nk_sim = run_nakamoto_sim(nodes, interval, offered_tps,
                                            duration, 29);
    table.row({"cluster", "nakamoto", bench::fmt_int(nk.confirmed),
               bench::fmt(nk.tps, 1), bench::fmt(nk.p50, 3), bench::fmt(nk.p99, 3),
               nk.digests_agree ? "agree" : "DISAGREE",
               bench::fmt_int(nk.clean_exits)});
    table.row({"sim", "nakamoto", bench::fmt_int(nk_sim.confirmed),
               bench::fmt(nk_sim.tps, 1), bench::fmt(nk_sim.p50, 3),
               bench::fmt(nk_sim.p99, 3), "-", "-"});

    // Cell 2: PBFT over sockets vs the PbftCluster prediction.
    const ClusterCell pb = run_cluster_cell(core::ReplicaEngine::kPbft, nodes,
                                            interval, trace,
                                            dirs.path / "pbft", false, settle);
    const SimCell pb_sim = run_pbft_sim(trace, duration, 29);
    table.row({"cluster", "pbft", bench::fmt_int(pb.confirmed),
               bench::fmt(pb.tps, 1), bench::fmt(pb.p50, 3), bench::fmt(pb.p99, 3),
               pb.digests_agree ? "agree" : "DISAGREE",
               bench::fmt_int(pb.clean_exits)});
    table.row({"sim", "pbft", bench::fmt_int(pb_sim.confirmed),
               bench::fmt(pb_sim.tps, 1), bench::fmt(pb_sim.p50, 3),
               bench::fmt(pb_sim.p99, 3), "-", "-"});

    // Cell 3: kill one node (SIGKILL), restart it on the same data dir and
    // ports, and require LSM/WAL recovery plus catch-up to digest agreement.
    int killed_exit = 0;
    const ClusterCell kr = run_cluster_cell(core::ReplicaEngine::kNakamoto,
                                            nodes, interval, trace,
                                            dirs.path / "rejoin", true, settle,
                                            &killed_exit);
    table.row({"kill+rejoin", "nakamoto", bench::fmt_int(kr.confirmed),
               bench::fmt(kr.tps, 1), bench::fmt(kr.p50, 3), bench::fmt(kr.p99, 3),
               kr.digests_agree ? "agree" : "DISAGREE",
               bench::fmt_int(kr.clean_exits)});
    table.print();

    std::printf("\nnode-0 transport: %.0f bytes sent, %.0f reconnects "
                "(nakamoto cell); killed node exit %d (expected %d)\n",
                nk.net_bytes_sent, nk.reconnects, killed_exit, -SIGKILL);

    run.metric("nakamoto_wall_tps", nk.tps);
    run.metric("nakamoto_wall_p50_s", nk.p50);
    run.metric("nakamoto_wall_p99_s", nk.p99);
    run.metric("nakamoto_confirmed", nk.confirmed);
    run.metric("nakamoto_submitted", nk.submitted);
    run.metric("nakamoto_accepted", nk.accepted);
    run.metric("nakamoto_digests_agree", static_cast<std::uint64_t>(nk.digests_agree));
    run.metric("nakamoto_clean_exits", static_cast<std::uint64_t>(nk.clean_exits));
    run.metric("nakamoto_net_bytes_sent", nk.net_bytes_sent);
    run.metric("nakamoto_sim_tps", nk_sim.tps);
    run.metric("nakamoto_sim_p50_s", nk_sim.p50);
    run.metric("nakamoto_sim_p99_s", nk_sim.p99);
    run.metric("pbft_wall_tps", pb.tps);
    run.metric("pbft_wall_p50_s", pb.p50);
    run.metric("pbft_wall_p99_s", pb.p99);
    run.metric("pbft_confirmed", pb.confirmed);
    run.metric("pbft_digests_agree", static_cast<std::uint64_t>(pb.digests_agree));
    run.metric("pbft_clean_exits", static_cast<std::uint64_t>(pb.clean_exits));
    run.metric("pbft_sim_tps", pb_sim.tps);
    run.metric("pbft_sim_p50_s", pb_sim.p50);
    run.metric("pbft_sim_p99_s", pb_sim.p99);
    run.metric("rejoin_killed_exit", static_cast<double>(killed_exit));
    run.metric("rejoin_digests_agree", static_cast<std::uint64_t>(kr.digests_agree));
    run.metric("rejoin_clean_exits", static_cast<std::uint64_t>(kr.clean_exits));
    run.metric("rejoin_confirmed", kr.confirmed);
    const bool rejoin_ok = kr.digests_agree && killed_exit == -SIGKILL &&
                           kr.clean_exits == nodes;
    run.metric("rejoin_success", static_cast<std::uint64_t>(rejoin_ok));

    run.write_json();
    obs_env.write_artifacts();
    return 0;
}
