// E17 — §2.4 (PBFT fault model): a 3f+1 cluster commits with up to f faulty
// replicas, changes views away from a crashed or equivocating primary, and
// stalls safely (no divergence) beyond f faults.
#include "bench_util.hpp"
#include "common/serialize.hpp"
#include "consensus/pbft.hpp"

using namespace dlt;
using namespace dlt::consensus;

namespace {

struct Result {
    std::size_t executed;
    bool consistent;
    std::uint32_t views;
    double latency;
};

Result run(std::uint32_t f, const std::vector<std::pair<std::uint32_t, PbftFault>>& faults,
           std::uint64_t seed) {
    PbftConfig config;
    config.f = f;
    config.batch_size = 50;
    config.batch_interval = 0.1;
    config.view_change_timeout = 3.0;
    PbftCluster cluster(config, seed);
    for (const auto& [replica, fault] : faults) cluster.set_fault(replica, fault);
    const int requests = 200;
    for (int i = 0; i < requests; ++i) {
        Writer w;
        w.u64(static_cast<std::uint64_t>(i));
        cluster.submit(std::move(w).take());
    }
    cluster.run_for(120.0);

    // Report from a correct replica.
    std::uint32_t correct = 0;
    for (const auto& [replica, fault] : faults)
        if (replica == correct) ++correct;
    Result r;
    r.executed = cluster.executed_requests(correct);
    r.consistent = cluster.logs_consistent();
    r.views = cluster.max_view();
    r.latency = cluster.mean_commit_latency().value_or(-1);
    return r;
}

} // namespace

int main() {
    bench::Run bench_run("E17");
    bench::ObsEnv obs_env;
    bench::title("E17: PBFT under faults (§2.4)",
                 "Claim: 3f+1 replicas commit identical logs with up to f "
                 "Byzantine members; beyond f the cluster stalls but never "
                 "diverges.");

    bench::Table table({"n", "f", "scenario", "executed/200", "consistent",
                        "views", "latency-s"});

    struct Scenario {
        std::uint32_t f;
        std::string name;
        std::vector<std::pair<std::uint32_t, PbftFault>> faults;
    };
    const std::vector<Scenario> scenarios = {
        {1, "no faults", {}},
        {1, "1 crashed backup", {{2, PbftFault::kCrashed}}},
        {1, "crashed primary", {{0, PbftFault::kCrashed}}},
        {1, "equivocating primary", {{0, PbftFault::kEquivocating}}},
        {1, "2 crashes (beyond f)", {{2, PbftFault::kCrashed}, {3, PbftFault::kCrashed}}},
        {2, "no faults (n=7)", {}},
        {2, "2 crashed backups (n=7)",
         {{3, PbftFault::kCrashed}, {4, PbftFault::kCrashed}}},
    };

    std::uint64_t seed = 1700;
    for (const auto& scenario : scenarios) {
        const Result r = run(scenario.f, scenario.faults, seed++);
        table.row({bench::fmt_int(3 * scenario.f + 1), bench::fmt_int(scenario.f),
                   scenario.name, bench::fmt_int(r.executed),
                   r.consistent ? "yes" : "NO", bench::fmt_int(r.views),
                   r.latency >= 0 ? bench::fmt(r.latency, 3) : "-"});
    }
    table.print();

    std::printf("\nExpected shape: all f-bounded scenarios execute all 200 "
                "requests (primary faults after a view change); the beyond-f "
                "scenario executes 0 but stays consistent — safety over "
                "liveness.\n");
    return 0;
}
