// E27 — adversarial scenario matrix (§3.1 dependability × §2.4 consensus):
// sweep the cross-product of consensus engine (Nakamoto longest-chain, GHOST,
// GHOSTDAG, PBFT) × attack strategy (honest baseline, selfish mining,
// eclipse, fee-market spam flood, crash-during-reorg) × offered load, and
// emit one resilience scorecard: per-cell safety violations, liveness gap,
// reconvergence time, confirmed throughput, mempool drop mix, and max reorg
// depth. Headline claims the scorecard pins:
//   - honest cells show zero safety violations on every engine;
//   - a selfish miner above α ≈ 1/3 earns a canonical-chain revenue share
//     exceeding its hash share (Eyal–Sirer superlinearity);
//   - eclipse and crash-during-reorg cells end with zero safety violations
//     after heal/recovery (the crash cell recovering a torn WAL through a
//     PersistentNode shadow replica);
//   - every cell digest is byte-identical across reruns and DLT_THREADS
//     settings (the whole matrix is virtual-time deterministic).
//
// DLT_E27_QUICK=1 shrinks the matrix for CI smoke runs.
// DLT_TRACE / DLT_TRACE_STREAM / DLT_METRICS work as in every bench.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "app/scenario.hpp"
#include "bench_util.hpp"

using namespace dlt;

namespace {

std::string cell_key(const app::CellResult& r) {
    return std::string("cell_") + app::scenario_engine_name(r.engine) + "_" +
           app::scenario_attack_name(r.attack) + "_l" +
           std::to_string(static_cast<int>(r.load_level));
}

} // namespace

int main() {
    bench::Run run("E27");
    bench::ObsEnv obs_env;
    const bool quick = std::getenv("DLT_E27_QUICK") != nullptr;
    bench::title("E27: adversarial scenario matrix",
                 "Claim: composed attacks x faults x load leave finalized "
                 "prefixes intact on every engine — selfish mining skews "
                 "revenue, eclipses and crash-during-reorg heal, spam floods "
                 "shed at the fee floor — and the whole sweep replays "
                 "byte-for-byte.");

    app::ScenarioConfig cfg;
    std::vector<app::ScenarioEngine> engines = {
        app::ScenarioEngine::kNakamotoLongest,
        app::ScenarioEngine::kGhost,
        app::ScenarioEngine::kGhostDag,
        app::ScenarioEngine::kPbft,
    };
    std::vector<app::ScenarioAttack> attacks = {
        app::ScenarioAttack::kHonest,    app::ScenarioAttack::kSelfish,
        app::ScenarioAttack::kEclipse,   app::ScenarioAttack::kSpam,
        app::ScenarioAttack::kCrashReorg,
    };
    std::vector<double> loads = {2.0, 10.0};
    if (quick) {
        cfg.duration = 400.0;
        cfg.tail = 200.0;
        cfg.pbft_duration = 120.0;
        attacks = {app::ScenarioAttack::kHonest, app::ScenarioAttack::kEclipse,
                   app::ScenarioAttack::kCrashReorg};
        loads = {2.0};
    }

    bench::Timer wall;
    const auto results = app::run_scenario_matrix(cfg, engines, attacks, loads);

    bench::Table table({"engine", "attack", "load", "unsafe", "live-gap-s",
                        "reconv-s", "tps", "max-reorg", "reorgs/views",
                        "drops e/x/r", "qfull"});
    std::uint64_t total_violations = 0;
    std::uint64_t honest_violations = 0;
    std::uint64_t cells_converged = 0;
    for (const auto& r : results) {
        total_violations += r.safety_violations;
        if (r.attack == app::ScenarioAttack::kHonest)
            honest_violations += r.safety_violations;
        if (r.converged) ++cells_converged;
        table.row({app::scenario_engine_name(r.engine),
                   app::scenario_attack_name(r.attack),
                   bench::fmt(r.load_level, 0), bench::fmt_int(r.safety_violations),
                   bench::fmt(r.liveness_gap_s, 1), bench::fmt(r.reconvergence_s, 1),
                   bench::fmt(r.confirmed_tps, 2), bench::fmt_int(r.max_reorg_depth),
                   bench::fmt_int(r.reorgs),
                   bench::fmt_int(r.drops_evicted) + "/" +
                       bench::fmt_int(r.drops_expired) + "/" +
                       bench::fmt_int(r.drops_replaced),
                   bench::fmt_int(r.admission_queue_full)});
    }
    table.print();

    std::printf("\nAttacker economics and recovery evidence:\n");
    for (const auto& r : results) {
        if (r.attack == app::ScenarioAttack::kSelfish &&
            r.engine != app::ScenarioEngine::kPbft) {
            std::printf("  %-9s selfish: revenue share %.3f vs hash share %.3f "
                        "(%s), %" PRIu64 " withheld\n",
                        app::scenario_engine_name(r.engine),
                        r.attacker_revenue_share, r.attacker_hash_share,
                        r.attacker_revenue_share > r.attacker_hash_share
                            ? "superlinear"
                            : "sublinear",
                        r.fork_blocks);
        }
        if (r.attack == app::ScenarioAttack::kCrashReorg &&
            (r.engine == app::ScenarioEngine::kNakamotoLongest ||
             r.engine == app::ScenarioEngine::kGhost)) {
            std::printf("  %-9s crash-reorg: %" PRIu64 " shadow recoveries, %" PRIu64
                        " WAL records replayed, consistent: %s\n",
                        app::scenario_engine_name(r.engine), r.shadow_recoveries,
                        r.shadow_wal_replayed, r.shadow_consistent ? "yes" : "NO");
        }
    }

    for (const auto& r : results) {
        const std::string key = cell_key(r);
        run.metric(key + "_safety_violations", r.safety_violations);
        run.metric(key + "_liveness_gap_s", r.liveness_gap_s);
        run.metric(key + "_reconvergence_s", r.reconvergence_s);
        run.metric(key + "_converged", static_cast<std::uint64_t>(r.converged));
        run.metric(key + "_confirmed_tps", r.confirmed_tps);
        run.metric(key + "_max_reorg_depth", r.max_reorg_depth);
        run.metric(key + "_reorgs", r.reorgs);
        run.metric(key + "_drops_evicted", r.drops_evicted);
        run.metric(key + "_drops_expired", r.drops_expired);
        run.metric(key + "_drops_replaced", r.drops_replaced);
        run.metric(key + "_queue_full", r.admission_queue_full);
        if (r.attack == app::ScenarioAttack::kSelfish ||
            r.attack == app::ScenarioAttack::kEclipse) {
            run.metric(key + "_attacker_revenue_share", r.attacker_revenue_share);
            run.metric(key + "_attacker_hash_share", r.attacker_hash_share);
            run.metric(key + "_fork_blocks", r.fork_blocks);
        }
        if (r.attack == app::ScenarioAttack::kCrashReorg) {
            run.metric(key + "_shadow_recoveries", r.shadow_recoveries);
            run.metric(key + "_shadow_wal_replayed", r.shadow_wal_replayed);
            run.metric(key + "_shadow_consistent",
                       static_cast<std::uint64_t>(r.shadow_consistent));
        }
        run.note(key + "_digest", r.digest);
    }
    run.metric("cells_total", static_cast<std::uint64_t>(results.size()));
    run.metric("cells_converged", cells_converged);
    run.metric("safety_violations_total", total_violations);
    run.metric("honest_safety_violations", honest_violations);
    // Wall time is reported to stderr only — the scorecard JSON must stay
    // byte-identical across reruns and thread counts.
    std::fprintf(stderr, "[e27] %zu cells in %.1f s wall\n", results.size(),
                 wall.elapsed_s());

    std::printf("\nExpected shape: zero safety violations outside selfish "
                "cells (a >1/3 selfish miner *should* breach k=6 finality — "
                "that is the attack working); eclipse and crash cells "
                "reconverge within the tail; spam cells shed load as "
                "EVICTED/QUEUE_FULL without touching safety.\n");
    return 0;
}
