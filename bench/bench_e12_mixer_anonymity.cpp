// E12 — §5.3 (privacy / fungibility): taint tracing links coins to their
// origins on a transparent ledger; CoinJoin mixing rounds grow every coin's
// anonymity set (plausible origins) at the cost of one confirmation per round.
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "crypto/keys.hpp"
#include "privacy/mixer.hpp"
#include "privacy/taint.hpp"

using namespace dlt;
using namespace dlt::privacy;
using namespace dlt::ledger;

namespace {

crypto::Address fresh(const std::string& tag) {
    return crypto::PrivateKey::from_seed("e12/" + tag).address();
}

} // namespace

int main() {
    bench::Run bench_run("E12");
    bench::ObsEnv obs_env;
    bench::title("E12: mixing vs traceability (§5.3)",
                 "Claim: every coin is traceable on a transparent chain; mixers "
                 "inflate the anonymity set per round, paying confirmation "
                 "latency.");

    const std::size_t population = 32; // coins entering the mix
    const double block_interval = 600.0;

    TaintAnalyzer analyzer;
    std::vector<OutPoint> coins;
    for (std::size_t i = 0; i < population; ++i) {
        const Transaction cb =
            make_coinbase(fresh("root" + std::to_string(i)), kCoin, i + 1);
        analyzer.add_transaction(cb);
        coins.push_back(OutPoint{cb.txid(), 0});
    }

    // Tainted roots: 4 of the 32 origins are "dirty".
    OutPointSet dirty;
    for (std::size_t i = 0; i < 4; ++i) dirty.insert(coins[i]);

    bench::Table table({"mix-rounds", "mean-anonymity-set", "mean-taint",
                        "fully-traceable", "latency-s"});

    Rng rng(12);
    std::vector<OutPoint> current = coins;
    for (std::size_t round = 0; round <= 4; ++round) {
        // Metrics at the current depth.
        double set_sum = 0;
        double taint_sum = 0;
        std::size_t traceable = 0;
        for (const auto& coin : current) {
            set_sum += static_cast<double>(analyzer.anonymity_set_size(coin));
            taint_sum += analyzer.taint_fraction(coin, dirty);
            if (analyzer.fully_traceable(coin)) ++traceable;
        }
        table.row({bench::fmt_int(round),
                   bench::fmt(set_sum / static_cast<double>(current.size()), 1),
                   bench::fmt(taint_sum / static_cast<double>(current.size()), 3),
                   bench::fmt_int(traceable),
                   bench::fmt(mixing_latency(round, block_interval), 0)});

        // One more round: mix in groups of 8.
        std::vector<OutPoint> next;
        rng.shuffle(current);
        for (std::size_t g = 0; g + 8 <= current.size(); g += 8) {
            std::vector<MixParticipant> group;
            for (std::size_t k = 0; k < 8; ++k)
                group.push_back(MixParticipant{
                    current[g + k],
                    fresh("r" + std::to_string(round) + "-" + std::to_string(g + k))});
            const Transaction join = build_coinjoin(group, kCoin, rng);
            analyzer.add_transaction(join);
            for (std::uint32_t out = 0; out < 8; ++out)
                next.push_back(OutPoint{join.txid(), out});
        }
        current = std::move(next);
    }
    table.print();

    std::printf("\nExpected shape: round 0 has anonymity set 1 (all coins fully "
                "traceable); each round multiplies the set (~8x per round here) "
                "while taint converges toward the population average (4/32 = "
                "0.125) — dirty history diffuses. Latency grows linearly.\n");
    return 0;
}
