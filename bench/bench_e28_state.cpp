// E28 — pluggable UTXO state engine (ROADMAP item 2): the sharded in-memory
// backend and the LSM-flavored persistent backend must produce identical
// state digests while the persistent engine holds its E02-signed-workload
// throughput within 10% of memory at 10x state size. Also measures the
// parallel per-shard snapshot encode against the seed's serial
// sort-the-whole-set path, engine-based recovery against full WAL replay
// (the E21 axis), and block-file pruning once snapshots cover history.
//
// DLT_E28_QUICK=1 shrinks every dimension for CI smoke runs.
#include <cstring>
#include <filesystem>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "core/persistent_node.hpp"
#include "crypto/keys.hpp"
#include "crypto/sigcache.hpp"
#include "ledger/difficulty.hpp"
#include "ledger/validation.hpp"
#include "scaling/bootstrap.hpp"
#include "storage/lsm_backend.hpp"

using namespace dlt;
using namespace dlt::ledger;

namespace {

struct TempDir {
    std::filesystem::path path;
    explicit TempDir(const std::string& tag) {
        path = std::filesystem::temp_directory_path() / ("dlt-bench-e28-" + tag);
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

crypto::Address addr(const std::string& seed) {
    return crypto::PrivateKey::from_seed(seed).address();
}

Hash256 random_txid(Rng& rng) {
    Hash256 h;
    for (std::size_t i = 0; i < Hash256::size(); ++i)
        h[i] = static_cast<std::uint8_t>(rng.uniform(256));
    return h;
}

constexpr Amount kSpendValue = 5000;

// The prefill is a superset chain: the first `spendable` outpoints are owned
// by the workload signers (identical at every state size), the rest is
// filler. Seeding the same Rng keeps the 1x prefill a byte-exact prefix of
// the 10x prefill, so one signed workload applies to both.
struct Prefill {
    std::vector<OutPoint> spendable;
    std::vector<std::pair<OutPoint, TxOutput>> entries;
};

Prefill make_prefill(std::size_t spendable, std::size_t total,
                     const std::vector<crypto::PrivateKey>& signers) {
    Prefill p;
    Rng rng(0xE28);
    for (std::size_t i = 0; i < total; ++i) {
        const OutPoint op{random_txid(rng), static_cast<std::uint32_t>(i % 4)};
        if (i < spendable) {
            p.spendable.push_back(op);
            p.entries.emplace_back(
                op, TxOutput{kSpendValue, signers[i % signers.size()].address()});
        } else {
            p.entries.emplace_back(
                op, TxOutput{100 + static_cast<Amount>(rng.uniform(1000)),
                             addr("e28-filler-" + std::to_string(rng.uniform(64)))});
        }
    }
    return p;
}

void load_prefill(UtxoSet& utxo, const Prefill& prefill) {
    std::uint64_t tag = 0;
    std::size_t since_commit = 0;
    for (const auto& [op, out] : prefill.entries) {
        utxo.insert_raw(op, out);
        if (++since_commit == 2048) { // bound the LSM memtable during prefill
            utxo.commit(++tag, ByteView{});
            since_commit = 0;
        }
    }
    utxo.commit(++tag, ByteView{});
}

// E02-style signed workload: every tx is a real ECDSA-signed transfer, every
// block carries a coinbase and a correct Merkle root, and connect_block runs
// the full structural (incl. signatures, SigCheckMode::kFull) + contextual
// path. The spend pattern is the payment-chain shape of the paper's E02
// workload: each signer spends its *own most recent* output (the first hop
// reaches into the prefilled state), so recently created coins dominate —
// which is what lets an LSM engine keep hot spends memtable-resident while
// the bulk of the state ages into runs.
std::vector<Block> build_signed_workload(const Prefill& prefill,
                                         const std::vector<crypto::PrivateKey>& signers,
                                         std::size_t blocks, std::size_t txs_per_block) {
    std::vector<Block> out;
    std::vector<OutPoint> tip;
    std::vector<Amount> value;
    for (std::size_t s = 0; s < signers.size(); ++s) {
        tip.push_back(prefill.spendable[s]); // spendable[s] is owned by signers[s]
        value.push_back(kSpendValue);
    }
    std::size_t next = 0;
    for (std::size_t h = 1; h <= blocks; ++h) {
        Block b;
        b.header.height = h;
        b.header.timestamp = 10.0 * static_cast<double>(h);
        b.txs.push_back(make_coinbase(addr("e28-miner"), block_subsidy(h), h));
        for (std::size_t t = 0; t < txs_per_block; ++t, ++next) {
            const std::size_t s = next % signers.size();
            value[s] -= 10; // fee per hop
            Transaction tx =
                make_transfer({tip[s]}, {TxOutput{value[s], signers[s].address()}});
            tx.sign_with(signers[s]);
            tip[s] = OutPoint{tx.txid(), 0};
            b.txs.push_back(std::move(tx));
        }
        b.header.merkle_root = b.compute_merkle_root();
        out.push_back(std::move(b));
    }
    return out;
}

// Adversarial cold-read workload: spend prefilled outpoints in creation order,
// so on the LSM engine at 10x state every lookup misses the memtable and digs
// into the on-disk runs. Not the paper's workload shape — reported as
// `lsm_cold_*` alongside the headline numbers to bound the worst case.
std::vector<Block> build_cold_workload(const Prefill& prefill,
                                       const std::vector<crypto::PrivateKey>& signers,
                                       std::size_t blocks, std::size_t txs_per_block) {
    std::vector<Block> out;
    std::size_t next = 0;
    for (std::size_t h = 1; h <= blocks; ++h) {
        Block b;
        b.header.height = h;
        b.header.timestamp = 10.0 * static_cast<double>(h);
        b.txs.push_back(make_coinbase(addr("e28-miner"), block_subsidy(h), h));
        for (std::size_t t = 0; t < txs_per_block; ++t, ++next) {
            const OutPoint& spend = prefill.spendable[next];
            Transaction tx = make_transfer(
                {spend}, {TxOutput{kSpendValue - 10,
                                   addr("e28-payee-" + std::to_string(next % 32))}});
            tx.sign_with(signers[next % signers.size()]);
            b.txs.push_back(std::move(tx));
        }
        b.header.merkle_root = b.compute_merkle_root();
        out.push_back(std::move(b));
    }
    return out;
}

// Connect the whole workload under full validation (connect_block checks
// structure — including every ECDSA signature — before the contextual UTXO
// apply), committing per block on persistent engines. Returns wall seconds.
double connect_workload(UtxoSet& utxo, const std::vector<Block>& blocks,
                        const ValidationRules& rules) {
    bench::Timer t;
    std::uint64_t tag = 1000000; // past any prefill commit tag
    for (const auto& b : blocks) {
        connect_block(b, utxo, rules);
        utxo.commit(++tag, ByteView{});
    }
    return t.elapsed_s();
}

// Coinbase-plus-spend chain for the recovery/prune sections (extends genesis,
// so a PersistentNode can connect it from scratch).
std::vector<Block> build_node_chain(const Block& genesis, int n) {
    std::vector<Block> blocks;
    std::vector<Hash256> coinbase_txids;
    Hash256 prev = genesis.hash();
    for (int i = 1; i <= n; ++i) {
        Block b;
        b.header.prev_hash = prev;
        b.header.height = static_cast<std::uint64_t>(i);
        b.header.timestamp = 10.0 * i;
        Transaction cb = make_coinbase(addr("e28-miner-" + std::to_string(i)),
                                       block_subsidy(static_cast<std::uint64_t>(i)),
                                       static_cast<std::uint64_t>(i));
        b.txs.push_back(cb);
        coinbase_txids.push_back(cb.txid());
        if (i % 3 == 0 && i >= 3) {
            b.txs.push_back(make_transfer(
                {OutPoint{coinbase_txids[static_cast<std::size_t>(i - 3)], 0}},
                {TxOutput{block_subsidy(static_cast<std::uint64_t>(i - 2)),
                          addr("e28-payee-" + std::to_string(i))}}));
        }
        b.header.merkle_root = b.compute_merkle_root();
        blocks.push_back(b);
        prev = blocks.back().hash();
    }
    return blocks;
}

std::uint64_t dir_file_bytes(const std::filesystem::path& dir) {
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(dir, ec)) {
        if (entry.is_regular_file(ec)) total += entry.file_size(ec);
    }
    return total;
}

} // namespace

int main() {
    bench::Run run("E28");
    bench::ObsEnv obs_env;
    const bool quick = std::getenv("DLT_E28_QUICK") != nullptr;
    bench::title("E28: pluggable UTXO state engine (ROADMAP item 2)",
                 "Claim: the LSM persistent backend stays within 10% of the "
                 "sharded in-memory backend on a signed workload at 10x state "
                 "size with byte-identical digests; the per-shard parallel "
                 "snapshot encode beats the serial sort-everything path 2x+; "
                 "engine-based recovery replays (almost) nothing.");

    const std::size_t kBaseState = quick ? 2000 : 20000;
    const std::size_t kWorkBlocks = quick ? 8 : 20;
    const std::size_t kTxsPerBlock = quick ? 25 : 50;
    const std::size_t kSpendable = kWorkBlocks * kTxsPerBlock;
    run.metric("quick_mode", static_cast<std::uint64_t>(quick ? 1 : 0));
    run.metric("state_entries_1x", static_cast<std::uint64_t>(kBaseState));
    run.metric("state_entries_10x", static_cast<std::uint64_t>(10 * kBaseState));

    std::vector<crypto::PrivateKey> signers;
    for (int i = 0; i < 16; ++i)
        signers.push_back(crypto::PrivateKey::from_seed("e28/signer/" +
                                                        std::to_string(i)));

    // One signed workload, applied to every backend x size combination. The
    // 1x prefill is a prefix of the 10x prefill, so digests differ across
    // sizes but must match across backends at the same size.
    const Prefill prefill_1x = make_prefill(kSpendable, kBaseState, signers);
    const Prefill prefill_10x = make_prefill(kSpendable, 10 * kBaseState, signers);
    const auto workload =
        build_signed_workload(prefill_1x, signers, kWorkBlocks, kTxsPerBlock);

    ValidationRules rules;
    rules.sig_mode = SigCheckMode::kFull;
    rules.require_coinbase = true;

    // Warmup outside the measured loops: first-touch costs (thread-pool
    // spin-up, crypto table setup, allocator growth) land here, not in the
    // first table row.
    {
        UtxoSet warmup;
        load_prefill(warmup, prefill_1x);
        connect_workload(warmup, workload, rules);
    }

    // --- 1: signed-workload apply throughput, backend x state size --------------
    bench::Table apply({"backend", "state-size", "entries", "txs", "seconds", "tx/s"});
    Bytes digest_inmem_1x, digest_inmem_10x;
    double inmem_tps_10x = 0, lsm_tps_10x = 0;
    UtxoSet snapshot_subject; // the 10x in-memory set, reused by section 2
    for (const bool persistent : {false, true}) {
        for (const bool big : {false, true}) {
            const Prefill& prefill = big ? prefill_10x : prefill_1x;
            TempDir dir(std::string(persistent ? "lsm" : "mem") + (big ? "10x" : "1x"));
            UtxoSet utxo = [&] {
                if (!persistent) return UtxoSet();
                storage::LsmOptions options;
                options.fsync = storage::FsyncMode::kNever; // durability benched in §3
                return UtxoSet(std::make_unique<storage::LsmBackend>(dir.path, options));
            }();
            load_prefill(utxo, prefill);
            // Every combination revalidates from scratch: the global sigcache
            // would otherwise hand later rows the ECDSA work the first row
            // paid, and the E02 cost model includes signature verification.
            // Warm-cache (state-engine-only) numbers are section 1b.
            crypto::SigCache::global().clear();
            const double seconds = connect_workload(utxo, workload, rules);
            const double tps =
                bench::rate_per_sec(static_cast<double>(kSpendable), seconds);
            apply.row({persistent ? "lsm" : "sharded-memory", big ? "10x" : "1x",
                       bench::fmt_int(utxo.size()), bench::fmt_int(kSpendable),
                       bench::fmt(seconds, 3), bench::fmt(tps, 0)});
            const std::string key = std::string(persistent ? "lsm" : "inmem") +
                                    "_apply_tps_" + (big ? "10x" : "1x");
            run.metric(key, tps);

            const Bytes digest = scaling::serialize_utxo(utxo);
            if (!persistent) {
                (big ? digest_inmem_10x : digest_inmem_1x) = digest;
                if (big) snapshot_subject = utxo;
            } else {
                const bool match = digest == (big ? digest_inmem_10x : digest_inmem_1x);
                run.metric(std::string("digest_match_") + (big ? "10x" : "1x"),
                           static_cast<std::uint64_t>(match ? 1 : 0));
                if (!match) std::printf("!! backend digest mismatch at %s\n",
                                        big ? "10x" : "1x");
            }
            if (persistent && big) lsm_tps_10x = tps;
            if (!persistent && big) inmem_tps_10x = tps;
        }
    }
    apply.print();
    const double regression_pct =
        inmem_tps_10x > 0 ? 100.0 * (inmem_tps_10x - lsm_tps_10x) / inmem_tps_10x : 0;
    run.metric("lsm_regression_pct_10x", regression_pct);
    std::printf("\nLSM throughput cost at 10x state: %.1f%% (acceptance: < 10%%)\n",
                regression_pct);

    // --- 1b: state-engine-only costs (warm sigcache, ungated) -------------------
    // With the signature work cached away, only the backend's own lookup /
    // mutate / journal cost remains — the view that exposes what the LSM
    // engine actually charges per spend. "hot" replays the headline chained
    // workload (young spends, memtable-resident); "cold" spends prefilled
    // outpoints in creation order so every lookup digs into the on-disk runs.
    {
        const std::size_t kColdBlocks = quick ? 4 : 8;
        const auto cold =
            build_cold_workload(prefill_10x, signers, kColdBlocks, kTxsPerBlock);
        {
            UtxoSet cache_warmer;
            load_prefill(cache_warmer, prefill_10x);
            connect_workload(cache_warmer, cold, rules);
        }
        bench::Table engine_only(
            {"pattern", "backend", "txs", "tx/s", "lsm-cost"});
        for (const bool is_cold : {false, true}) {
            const auto& pattern = is_cold ? cold : workload;
            const double txs = static_cast<double>(
                (is_cold ? kColdBlocks : kWorkBlocks) * kTxsPerBlock);
            double inmem_tps = 0, lsm_tps = 0;
            for (const bool persistent : {false, true}) {
                TempDir dir(std::string(persistent ? "lsm" : "mem") +
                            (is_cold ? "-cold" : "-hot"));
                UtxoSet utxo = [&] {
                    if (!persistent) return UtxoSet();
                    storage::LsmOptions options;
                    options.fsync = storage::FsyncMode::kNever;
                    return UtxoSet(
                        std::make_unique<storage::LsmBackend>(dir.path, options));
                }();
                load_prefill(utxo, prefill_10x);
                const double tps = bench::rate_per_sec(
                    txs, connect_workload(utxo, pattern, rules));
                (persistent ? lsm_tps : inmem_tps) = tps;
                run.metric(std::string(persistent ? "lsm" : "inmem") +
                               (is_cold ? "_cold" : "_hot") + "_apply_tps_10x",
                           tps);
            }
            const double pct =
                inmem_tps > 0 ? 100.0 * (inmem_tps - lsm_tps) / inmem_tps : 0;
            run.metric(std::string(is_cold ? "lsm_cold" : "lsm_hot") +
                           "_regression_pct_10x",
                       pct);
            engine_only.row({is_cold ? "cold (deep spends)" : "hot (young spends)",
                             "memory vs lsm",
                             bench::fmt_int(static_cast<std::uint64_t>(txs)),
                             bench::fmt(inmem_tps, 0) + " vs " +
                                 bench::fmt(lsm_tps, 0),
                             bench::fmt(pct, 1) + "%"});
        }
        std::printf("\nState-engine-only (signatures cached, ungated):\n");
        engine_only.print();
    }

    // --- 2: parallel snapshot encode vs the serial seed path --------------------
    {
        if (ThreadPool::global_workers() == 0) ThreadPool::set_global_workers(3);
        const int reps = 5;
        double serial_best = 1e18, parallel_best = 1e18;
        Bytes serial_bytes, parallel_bytes;
        for (int r = 0; r < reps; ++r) {
            bench::Timer t;
            // The seed's encode: gather everything, sort once, serialize once,
            // all on the calling thread.
            auto all = snapshot_subject.export_all();
            std::sort(all.begin(), all.end(),
                      [](const auto& a, const auto& b) { return a.first < b.first; });
            Writer w;
            w.varint(all.size());
            for (const auto& [op, out] : all) {
                op.encode(w);
                out.encode(w);
            }
            serial_best = std::min(serial_best, t.elapsed_s());
            serial_bytes = std::move(w).take();

            t.restart();
            Writer pw;
            snapshot_subject.encode(pw); // per-shard parallel path
            parallel_best = std::min(parallel_best, t.elapsed_s());
            parallel_bytes = std::move(pw).take();
        }
        const bool identical = serial_bytes == parallel_bytes;
        if (!identical) std::printf("!! parallel snapshot bytes diverge from serial\n");
        const double speedup = parallel_best > 0 ? serial_best / parallel_best : 0;
        bench::Table snap({"encode-path", "entries", "ms", "speedup"});
        snap.row({"serial sort-all", bench::fmt_int(snapshot_subject.size()),
                  bench::fmt(1e3 * serial_best, 2), "1.00"});
        snap.row({"sharded parallel", bench::fmt_int(snapshot_subject.size()),
                  bench::fmt(1e3 * parallel_best, 2), bench::fmt(speedup, 2)});
        std::printf("\n");
        snap.print();
        run.metric("snapshot_serial_ms", 1e3 * serial_best);
        run.metric("snapshot_parallel_ms", 1e3 * parallel_best);
        run.metric("snapshot_parallel_speedup", speedup);
        run.metric("snapshot_bytes_identical",
                   static_cast<std::uint64_t>(identical ? 1 : 0));
        run.metric("snapshot_threads", ThreadPool::global_workers() + 1);
    }

    // --- 3: recovery — engine tag vs full WAL replay (the E21 axis) -------------
    const Block genesis = make_genesis("e28", easy_bits(2));
    const int kChain = quick ? 60 : 300;
    const auto chain = build_node_chain(genesis, kChain);
    {
        bench::Table recovery({"engine", "replayed-records", "reopen-ms"});
        TempDir mem_dir("node-mem");
        TempDir lsm_dir("node-lsm");
        core::PersistentNodeOptions mem_options;
        mem_options.fsync = storage::FsyncMode::kNever;
        core::PersistentNodeOptions lsm_options = mem_options;
        lsm_options.state_engine = core::StateEngine::kPersistent;

        Bytes live_digest;
        {
            core::PersistentNode node(mem_dir.path, genesis, mem_options);
            for (const auto& b : chain) node.connect_block(b);
            live_digest = scaling::serialize_utxo(node.utxo());
        }
        {
            core::PersistentNode node(lsm_dir.path, genesis, lsm_options);
            for (const auto& b : chain) node.connect_block(b);
        }

        bench::Timer t;
        core::PersistentNode mem_node(mem_dir.path, genesis, mem_options);
        const double mem_ms = 1e3 * t.elapsed_s();
        t.restart();
        core::PersistentNode lsm_node(lsm_dir.path, genesis, lsm_options);
        const double lsm_ms = 1e3 * t.elapsed_s();

        recovery.row({"in-memory (full WAL replay)",
                      bench::fmt_int(mem_node.recovery().wal_records_replayed),
                      bench::fmt(mem_ms, 2)});
        recovery.row({"lsm (engine tag + suffix)",
                      bench::fmt_int(lsm_node.recovery().wal_records_replayed),
                      bench::fmt(lsm_ms, 2)});
        std::printf("\n");
        recovery.print();

        const bool recovered_match =
            scaling::serialize_utxo(lsm_node.utxo()) == live_digest &&
            scaling::serialize_utxo(mem_node.utxo()) == live_digest;
        if (!recovered_match) std::printf("!! recovered digests diverge from live\n");
        run.metric("inmem_replay_ms", mem_ms);
        run.metric("lsm_recovery_ms", lsm_ms);
        run.metric("lsm_recovery_replayed", lsm_node.recovery().wal_records_replayed);
        run.metric("recovered_digest_match",
                   static_cast<std::uint64_t>(recovered_match ? 1 : 0));
    }

    // --- 4: pruning — block files drop once a snapshot covers them --------------
    {
        TempDir dir("node-prune");
        core::PersistentNodeOptions options;
        options.fsync = storage::FsyncMode::kNever;
        options.state_engine = core::StateEngine::kPersistent;
        options.prune_blocks = true;
        options.snapshots_to_keep = 1;
        Bytes live_digest;
        std::uint64_t before = 0, after = 0;
        {
            core::PersistentNode node(dir.path, genesis, options);
            for (const auto& b : chain) node.connect_block(b);
            live_digest = scaling::serialize_utxo(node.utxo());
            before = dir_file_bytes(dir.path);
            node.snapshot(); // prunes blocks below the snapshot height
            after = dir_file_bytes(dir.path);
            if (node.block_store().pruned_below() != static_cast<std::uint64_t>(kChain))
                std::printf("!! unexpected prune floor\n");
        }
        core::PersistentNode node(dir.path, genesis, options);
        const bool match = scaling::serialize_utxo(node.utxo()) == live_digest;
        if (!match) std::printf("!! post-prune recovery digest mismatch\n");
        const std::uint64_t reclaimed = before > after ? before - after : 0;
        std::printf("\nPruning: %llu bytes on disk -> %llu (reclaimed %llu), "
                    "tip digest %s after restart\n",
                    static_cast<unsigned long long>(before),
                    static_cast<unsigned long long>(after),
                    static_cast<unsigned long long>(reclaimed),
                    match ? "intact" : "MISMATCH");
        run.metric("prune_bytes_reclaimed", reclaimed);
        run.metric("pruned_digest_match", static_cast<std::uint64_t>(match ? 1 : 0));
    }

    std::printf("\nExpected shape: lsm apply throughput within 10%% of memory at "
                "10x state; parallel snapshot encode 2x+ over the serial sort; "
                "lsm reopen replays ~0 records vs the full journal; pruning "
                "reclaims most block-file bytes with an intact digest.\n");
    return 0;
}
