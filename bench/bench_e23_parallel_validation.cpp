// E23 — parallel validation engine: block signature-validation throughput at
// 1/2/4/8 validation threads (CheckQueue fan-out over the global pool),
// scalar vs hardware (SHA-NI) double-SHA-256, and serial vs parallel Merkle
// tree construction. Virtual-time experiment outputs are unaffected by any of
// this — the engine parallelizes host-side crypto only — so this bench reports
// pure wall-clock. On machines without spare cores the thread sweep is flat;
// the JSON records hardware_threads so CI trend lines can be interpreted.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/threadpool.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sigcache.hpp"
#include "datastruct/merkle.hpp"
#include "ledger/block.hpp"
#include "ledger/validation.hpp"

using namespace dlt;

namespace {

/// A block of `count` signed account-family records (distinct sighashes, a
/// rotating set of signers) behind a coinbase, with a consistent Merkle root.
ledger::Block make_signed_block(std::size_t count,
                                const std::vector<crypto::PrivateKey>& signers) {
    ledger::Block block;
    block.txs.push_back(ledger::make_coinbase(crypto::Address{}, 50, 1));
    for (std::size_t i = 0; i < count; ++i) {
        ledger::Transaction tx;
        tx.kind = ledger::TxKind::kRecord;
        tx.nonce = i;
        tx.data = Bytes(64, static_cast<std::uint8_t>(i));
        tx.sign_with(signers[i % signers.size()]);
        block.txs.push_back(std::move(tx));
    }
    block.header.height = 1;
    block.header.merkle_root = block.compute_merkle_root();
    return block;
}

} // namespace

int main() {
    bench::Run run("E23");
    bench::ObsEnv obs_env;
    bench::title("E23: parallel validation engine",
                 "Block signature checks fan out over a CheckQueue; SHA-256 "
                 "dispatches to SHA-NI when the CPU has it; wide Merkle levels "
                 "hash in parallel. Outcomes are identical to serial; only "
                 "wall-clock changes.");

    const unsigned hw = std::thread::hardware_concurrency();
    run.metric("hardware_threads", static_cast<std::uint64_t>(hw));
    run.note("sha256_backend", crypto::sha256_backend());

    // --- Signed-block validation throughput vs thread count -----------------
    {
        std::vector<crypto::PrivateKey> signers;
        for (int i = 0; i < 8; ++i)
            signers.push_back(
                crypto::PrivateKey::from_seed("e23/signer/" + std::to_string(i)));
        const std::size_t kTxs = 96;
        const ledger::Block block = make_signed_block(kTxs, signers);
        ledger::ValidationRules rules; // kFull signatures

        // Warm the pubkey-decode memo (shared across runs) so the sweep
        // measures ECDSA verification, not first-touch point decompression.
        for (const auto& tx : block.txs) (void)tx.verify_signatures();

        bench::Table table({"threads", "wall-ms", "sig-verifies/s"});
        const int kReps = 3;
        double tps1 = 0.0;
        double tps_last = 0.0;
        for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
            ThreadPool::set_global_workers(threads - 1);
            bench::Timer timer;
            for (int rep = 0; rep < kReps; ++rep) {
                crypto::SigCache::global().clear(); // every rep re-verifies
                ledger::check_block_structure(block, rules);
            }
            const double wall = timer.elapsed_s();
            const double tps =
                bench::rate_per_sec(static_cast<double>(kTxs * kReps), wall);
            if (threads == 1) tps1 = tps;
            tps_last = tps;
            table.row({bench::fmt_int(threads), bench::fmt(wall * 1000.0, 1),
                       bench::fmt(tps, 0)});
            run.metric("sig_tps_threads_" + std::to_string(threads), tps);
        }
        table.print();
        run.metric("sig_speedup_8v1", tps1 > 0 ? tps_last / tps1 : 0.0);
    }

    // --- Scalar vs dispatched double-SHA-256 --------------------------------
    {
        std::uint8_t buf[64];
        for (int i = 0; i < 64; ++i) buf[i] = static_cast<std::uint8_t>(i);
        const int kHashes = 200000;

        const auto measure = [&](bool force_scalar) {
            crypto::sha256_force_scalar(force_scalar);
            // Chain each digest into the next input so the loop can't be
            // optimized away and each hash depends on the previous one.
            bench::Timer timer;
            for (int i = 0; i < kHashes; ++i) {
                const Hash256 d = crypto::sha256d_64(buf);
                std::memcpy(buf, d.data.data(), 32);
            }
            return timer.elapsed_s();
        };

        const double scalar_s = measure(true);
        const double simd_s = measure(false);
        crypto::sha256_force_scalar(false);

        const double scalar_mhs = kHashes / scalar_s / 1e6;
        const double simd_mhs = kHashes / simd_s / 1e6;
        bench::Table table({"backend", "hashes", "wall-ms", "Mh/s"});
        table.row({"scalar", bench::fmt_int(kHashes),
                   bench::fmt(scalar_s * 1000.0, 1), bench::fmt(scalar_mhs, 3)});
        table.row({crypto::sha256_backend(), bench::fmt_int(kHashes),
                   bench::fmt(simd_s * 1000.0, 1), bench::fmt(simd_mhs, 3)});
        table.print();
        run.metric("sha256d_scalar_mhs", scalar_mhs);
        run.metric("sha256d_dispatched_mhs", simd_mhs);
        run.metric("sha256d_speedup", simd_s > 0 ? scalar_s / simd_s : 0.0);
    }

    // --- Serial vs parallel Merkle construction -----------------------------
    {
        bench::Table table({"leaves", "serial-ms", "parallel-ms", "roots-equal"});
        for (const std::size_t leaves : {std::size_t{1} << 10, std::size_t{1} << 14}) {
            std::vector<Hash256> data(leaves);
            for (std::size_t i = 0; i < leaves; ++i)
                data[i] = crypto::sha256(Bytes(8, static_cast<std::uint8_t>(i)));

            ThreadPool::set_global_workers(0);
            bench::Timer serial_timer;
            const Hash256 serial_root = datastruct::merkle_root(data);
            const double serial_ms = serial_timer.elapsed_s() * 1000.0;

            ThreadPool::set_global_workers(7);
            bench::Timer parallel_timer;
            const Hash256 parallel_root = datastruct::merkle_root(data);
            const double parallel_ms = parallel_timer.elapsed_s() * 1000.0;

            const bool equal = serial_root == parallel_root;
            table.row({bench::fmt_int(leaves), bench::fmt(serial_ms, 2),
                       bench::fmt(parallel_ms, 2), equal ? "yes" : "NO"});
            const std::string tag = std::to_string(leaves);
            run.metric("merkle_serial_ms_" + tag, serial_ms);
            run.metric("merkle_parallel_ms_" + tag, parallel_ms);
            run.metric("merkle_roots_equal_" + tag,
                       static_cast<std::uint64_t>(equal ? 1 : 0));
        }
        table.print();
    }

    std::printf("\nExpected shape: sig-verifies/s grows with threads up to the "
                "core count (flat on single-core hosts); SHA-NI beats scalar "
                "several-fold when present; parallel Merkle matches the serial "
                "root bit-for-bit.\n");
    return 0;
}
