// E4 — §2.7 (Hyperledger as a CS system): a permissioned ordering service
// sustains four orders of magnitude more throughput than PoW, at sub-second
// latency, with zero branching — the paper quotes ">10K transactions per
// second" for Hyperledger's ordering service.
#include "bench_util.hpp"
#include "consensus/ordering.hpp"
#include "consensus/pbft.hpp"
#include "core/experiment.hpp"

using namespace dlt;
using namespace dlt::consensus;

int main() {
    bench::Run bench_run("E04");
    bench::ObsEnv obs_env;
    bench::title("E4: ordering service + PBFT throughput (§2.7)",
                 "Claim: leader-based ordering reaches >10K tps in-sim, versus "
                 "single-digit tps for PoW; PBFT adds Byzantine tolerance at "
                 "moderate cost.");

    {
        bench::Table table({"system", "offered-tps", "committed-tps", "latency-s",
                            "forks"});

        // Ordering service at increasing load.
        for (const double offered : {1000.0, 10000.0, 20000.0}) {
            OrderingParams params;
            params.peer_count = 8;
            params.batch_size = 1000;
            params.batch_interval = 0.05;
            OrderingService svc(params, 11);
            Rng rng(12);
            double now = 0;
            const double duration = 20.0;
            double next = rng.exponential(offered);
            std::uint64_t submitted = 0;
            while (next < duration) {
                svc.run_for(next - now);
                now = next;
                ledger::Transaction tx;
                tx.kind = ledger::TxKind::kRecord;
                tx.nonce = submitted++;
                svc.submit(tx);
                next += rng.exponential(offered);
            }
            svc.run_for(duration - now + 3.0);
            std::uint64_t committed = 0;
            for (const auto& block : svc.ledger_of(0)) committed += block.txs.size();
            table.row({"ordering", bench::fmt(offered, 0),
                       bench::fmt(static_cast<double>(committed) / duration, 0),
                       svc.mean_delivery_latency()
                           ? bench::fmt(*svc.mean_delivery_latency(), 3)
                           : "-",
                       "impossible"});
        }

        // PBFT at a high load.
        {
            PbftConfig config;
            config.f = 1;
            config.batch_size = 500;
            config.batch_interval = 0.05;
            PbftCluster cluster(config, 13);
            Rng rng(14);
            double now = 0;
            const double duration = 20.0;
            const double offered = 5000.0;
            double next = rng.exponential(offered);
            std::uint64_t seq = 0;
            while (next < duration) {
                cluster.run_for(next - now);
                now = next;
                Writer w;
                w.u64(seq++);
                cluster.submit(std::move(w).take());
                next += rng.exponential(offered);
            }
            cluster.run_for(duration - now + 5.0);
            table.row({"pbft(f=1)", bench::fmt(offered, 0),
                       bench::fmt(static_cast<double>(cluster.executed_requests(0)) /
                                      duration,
                                  0),
                       cluster.mean_commit_latency()
                           ? bench::fmt(*cluster.mean_commit_latency(), 3)
                           : "-",
                       "impossible"});
        }

        // PoW reference line (from E2's configuration).
        {
            core::ChainSpec spec = core::ChainSpec::bitcoin_like();
            spec.node_count = 5;
            core::Workload load;
            load.tx_rate = 15.0;
            load.duration = 600.0 * 6;
            const auto m = core::run_experiment(spec, load, 15);
            table.row({"pow(bitcoin)", bench::fmt(load.tx_rate, 0),
                       bench::fmt(m.throughput_tps, 1),
                       m.mean_confirmation_latency
                           ? bench::fmt(*m.mean_confirmation_latency, 0)
                           : "-",
                       "possible"});
        }
        table.print();
    }

    std::printf("\nExpected shape: ordering sustains >=10K tps at ~0.1 s latency; "
                "PBFT sustains thousands of tps; PoW is capped near 7 tps with "
                "hundreds of seconds of latency — the paper's CS-vs-DC gap.\n");
    return 0;
}
