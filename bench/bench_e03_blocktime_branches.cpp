// E3 — §2.7 (Ethereum): shortening the block interval raises throughput but
// raises the stale/branch rate (consistency cost); GHOST branch selection
// recovers chain quality relative to naive longest-chain at short intervals.
#include "bench_util.hpp"
#include "common/threadpool.hpp"
#include "consensus/nakamoto.hpp"

using namespace dlt;
using namespace dlt::consensus;

namespace {

struct RunResult {
    double stale_rate;
    std::uint64_t height;
    std::uint64_t reorgs;
};

RunResult run(double interval, BranchRule rule, std::uint64_t seed) {
    NakamotoParams params;
    params.node_count = 12;
    params.block_interval = interval;
    params.branch_rule = rule;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    params.link.latency_mean = 2.0; // pronounced WAN delays make branching visible
    params.link.latency_jitter = 1.0;
    NakamotoNetwork net(params, seed);
    net.start();
    net.run_for(interval * 400); // same expected block count per configuration
    net.run_for(30);
    return RunResult{net.stale_rate(), net.height_of(0), net.stats().reorgs};
}

} // namespace

int main() {
    bench::Run bench_run("E03");
    bench::ObsEnv obs_env;
    bench::title("E3: block interval vs branches, GHOST (§2.7)",
                 "Claim: Ethereum's 10-40 s blocks raise throughput but increase "
                 "branch occurrence; GHOST mitigates the consistency loss.");

    bench::Table table({"interval-s", "rule", "stale-rate", "height", "reorgs",
                        "blocks/hour"});
    // The eight configurations are independent simulations, so the sweep runs
    // on the global pool; seeds are assigned by position and results land in
    // an indexed slot, so the printed table is identical at any thread count.
    struct Config {
        double interval;
        BranchRule rule;
        std::uint64_t seed;
    };
    std::vector<Config> configs;
    std::uint64_t seed = 500;
    for (const double interval : {600.0, 60.0, 15.0, 5.0})
        for (const BranchRule rule : {BranchRule::kLongestChain, BranchRule::kGhost})
            configs.push_back({interval, rule, seed++});

    std::vector<RunResult> results(configs.size());
    parallel_for(ThreadPool::global(), 0, configs.size(), [&](std::size_t i) {
        results[i] = run(configs[i].interval, configs[i].rule, configs[i].seed);
    });

    for (std::size_t i = 0; i < configs.size(); ++i) {
        const RunResult& r = results[i];
        table.row({bench::fmt(configs[i].interval, 0),
                   configs[i].rule == BranchRule::kGhost ? "ghost" : "longest",
                   bench::fmt(r.stale_rate, 3), bench::fmt_int(r.height),
                   bench::fmt_int(r.reorgs),
                   bench::fmt(3600.0 / configs[i].interval, 0)});
    }
    table.print();

    std::printf("\nExpected shape: stale-rate grows as the interval shrinks "
                "toward the propagation delay (~2 s links); at short intervals "
                "GHOST yields an (equal or) higher useful height than "
                "longest-chain under the same conditions.\n");
    return 0;
}
