// E8 — §2.7 (the DCS "theorem"): score Decentralization, Consistency, and
// Scalability for every preset configuration under load. The paper's
// conjecture — "a blockchain system can only simultaneously provide two out of
// the three properties" — shows up as no row scoring strong on all three.
#include "bench_util.hpp"
#include "common/threadpool.hpp"
#include "core/chainspec.hpp"
#include "core/dcs.hpp"
#include "core/experiment.hpp"

using namespace dlt;
using namespace dlt::core;

int main() {
    bench::Run bench_run("E08");
    bench::ObsEnv obs_env;
    bench::title("E8: the DCS trade-off (§2.7)",
                 "Claim: Bitcoin and Ethereum are DC systems, Hyperledger is CS; "
                 "no tuning achieves all three at once.");

    bench::Table table({"spec", "tps", "stale", "D", "C", "S", "strong", "class"});

    struct Config {
        ChainSpec spec;
        double tx_rate;
        double duration;
    };
    std::vector<Config> configs;
    {
        auto bitcoin = ChainSpec::bitcoin_like();
        bitcoin.node_count = 5;
        configs.push_back({bitcoin, 12.0, 600.0 * 6});
        auto ethereum = ChainSpec::ethereum_like();
        ethereum.node_count = 6;
        configs.push_back({ethereum, 10.0, 15.0 * 240});
        configs.push_back({ChainSpec::pos_chain(), 100.0, 2000.0});
        configs.push_back({ChainSpec::hyperledger_like(), 12000.0, 20.0});
        configs.push_back({ChainSpec::pbft_cluster(), 3000.0, 20.0});
        configs.push_back({ChainSpec::poet_chain(), 50.0, 2000.0});
    }

    // Independent simulations: fan the sweep out over the pool. Seeds are
    // fixed by position (800 + index) and rows print in config order, so the
    // table is byte-identical at any thread count.
    std::vector<ExperimentMetrics> all_metrics(configs.size());
    parallel_for(dlt::ThreadPool::global(), 0, configs.size(), [&](std::size_t i) {
        Workload load;
        load.tx_rate = configs[i].tx_rate;
        load.duration = configs[i].duration;
        all_metrics[i] = run_experiment(configs[i].spec, load,
                                        800 + static_cast<int>(i));
    });

    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto& metrics = all_metrics[i];
        const auto score = score_dcs(configs[i].spec, metrics);
        std::string cls;
        if (score.decentralization >= 0.65) cls += 'D';
        if (score.consistency >= 0.65) cls += 'C';
        if (score.scalability >= 0.65) cls += 'S';
        if (cls.empty()) cls = "-";
        table.row({configs[i].spec.name, bench::fmt(metrics.throughput_tps, 1),
                   bench::fmt(metrics.stale_rate, 3),
                   bench::fmt(score.decentralization),
                   bench::fmt(score.consistency), bench::fmt(score.scalability),
                   bench::fmt_int(static_cast<std::uint64_t>(score.strong_properties())),
                   cls});
    }
    table.print();

    std::printf("\nExpected shape: bitcoin-like and ethereum-like classify DC, "
                "hyperledger-like and pbft classify CS; the 'strong' column never "
                "reaches 3 — the paper's pick-two conjecture.\n");
    return 0;
}
