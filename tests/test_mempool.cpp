// Tests for the fee-market mempool engine (admission codes, RBF, byte-budget
// eviction, expiry, index-vs-oracle consistency) and the population-scale
// workload driver (Zipf sampling, rate shaping, determinism, hot-account
// contention), plus the multi-observer ChainEvents extension they feed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "app/workload.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "consensus/nakamoto.hpp"
#include "crypto/sha256.hpp"
#include "ledger/mempool.hpp"
#include "ledger/transaction.hpp"
#include "obs/txlifecycle.hpp"

namespace {

using namespace dlt;
using namespace dlt::ledger;

// --- Builders ---------------------------------------------------------------------

/// UTXO-family tx spending a salt-derived outpoint (distinct salts never
/// conflict; equal salts conflict on the shared prevout).
Transaction utxo_tx(std::uint64_t salt, Amount fee, std::size_t payload = 0) {
    Transaction tx = make_transfer(
        {OutPoint{crypto::sha256(to_bytes("op" + std::to_string(salt))), 0}},
        {TxOutput{kCoin, crypto::PrivateKey::from_seed("r").address()}});
    tx.data.resize(payload); // pad to steer serialized size
    tx.declared_fee = fee;
    return tx;
}

/// Account-family record tx: conflicts with any pending tx of the same
/// (sender, nonce).
Transaction account_tx(const std::string& sender, std::uint64_t nonce, Amount fee) {
    Transaction tx;
    tx.kind = TxKind::kRecord;
    tx.sender_pubkey = to_bytes(sender);
    tx.nonce = nonce;
    tx.data = to_bytes("payload");
    tx.declared_fee = fee;
    return tx;
}

double rate_of(const Transaction& tx) {
    return static_cast<double>(tx.declared_fee) /
           static_cast<double>(tx.serialized_size());
}

// --- Typed admission codes --------------------------------------------------------

TEST(MempoolAdmission, TypedCodes) {
    MempoolConfig config;
    config.max_count = 2;
    config.min_fee_rate = 1.0;
    Mempool pool(config);

    const Transaction cheap = utxo_tx(1, 0);
    EXPECT_EQ(pool.admit(cheap), AdmissionResult::kFeeTooLow);

    const Transaction a = utxo_tx(2, 5'000);
    const Transaction b = utxo_tx(3, 6'000);
    EXPECT_EQ(pool.admit(a), AdmissionResult::kAccepted);
    EXPECT_EQ(pool.admit(a), AdmissionResult::kAlreadyInQueue);
    EXPECT_EQ(pool.admit(b), AdmissionResult::kAccepted);

    // Full of better: a low-feerate newcomer is shed, pool untouched.
    const Transaction c = utxo_tx(4, 500);
    EXPECT_EQ(pool.admit(c), AdmissionResult::kQueueFull);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_TRUE(pool.contains(a.txid()));

    // A strictly better newcomer evicts the worst.
    const Transaction d = utxo_tx(5, 50'000);
    EXPECT_EQ(pool.admit(d), AdmissionResult::kAccepted);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_FALSE(pool.contains(a.txid()));

    const auto& stats = pool.stats();
    EXPECT_EQ(stats.result(AdmissionResult::kAccepted), 3u);
    EXPECT_EQ(stats.result(AdmissionResult::kAlreadyInQueue), 1u);
    EXPECT_EQ(stats.result(AdmissionResult::kQueueFull), 1u);
    EXPECT_EQ(stats.result(AdmissionResult::kFeeTooLow), 1u);
    EXPECT_EQ(stats.drops(MempoolDropReason::kEvicted), 1u);
}

TEST(MempoolAdmission, AdmissionResultNamesAreStable) {
    EXPECT_STREQ(admission_result_name(AdmissionResult::kAccepted), "ACCEPTED");
    EXPECT_STREQ(admission_result_name(AdmissionResult::kQueueFull), "QUEUE_FULL");
    EXPECT_STREQ(admission_result_name(AdmissionResult::kExpired), "EXPIRED");
    EXPECT_STREQ(admission_result_name(AdmissionResult::kAlreadyInQueue),
                 "ALREADY_IN_QUEUE");
    EXPECT_STREQ(admission_result_name(AdmissionResult::kFeeTooLow),
                 "FEE_TOO_LOW");
    EXPECT_STREQ(admission_result_name(AdmissionResult::kRbfReplaced),
                 "RBF_REPLACED");
}

// --- Replace-by-fee ---------------------------------------------------------------

TEST(MempoolRbf, OutpointConflictRequiresBump) {
    MempoolConfig config;
    config.rbf_min_bump = 1.5;
    Mempool pool(config);

    Transaction original = utxo_tx(7, 1'000);
    ASSERT_EQ(pool.admit(original), AdmissionResult::kAccepted);

    // Same prevout, marginally higher fee: below the 1.5x bump -> refused.
    Transaction weak = utxo_tx(7, 1'200);
    weak.nonce = 1; // distinct txid, same conflict
    EXPECT_EQ(pool.admit(weak), AdmissionResult::kFeeTooLow);
    EXPECT_TRUE(pool.contains(original.txid()));

    // Sufficient bump replaces the incumbent.
    Transaction strong = utxo_tx(7, 2'000);
    strong.nonce = 2;
    ASSERT_GE(rate_of(strong), rate_of(original) * 1.5);
    EXPECT_EQ(pool.admit(strong), AdmissionResult::kRbfReplaced);
    EXPECT_FALSE(pool.contains(original.txid()));
    EXPECT_TRUE(pool.contains(strong.txid()));
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.stats().drops(MempoolDropReason::kReplaced), 1u);
}

TEST(MempoolRbf, AccountNonceConflict) {
    Mempool pool; // default bump 1.1
    const Transaction first = account_tx("carol", 5, 100);
    ASSERT_EQ(pool.admit(first), AdmissionResult::kAccepted);

    // Same (sender, nonce), same fee: not a sufficient bump.
    Transaction same_fee = account_tx("carol", 5, 100);
    same_fee.data = to_bytes("other-payload");
    EXPECT_EQ(pool.admit(same_fee), AdmissionResult::kFeeTooLow);

    Transaction bumped = account_tx("carol", 5, 500);
    bumped.data = to_bytes("priority");
    EXPECT_EQ(pool.admit(bumped), AdmissionResult::kRbfReplaced);
    EXPECT_EQ(pool.size(), 1u);

    // A different nonce from the same sender is not a conflict.
    EXPECT_EQ(pool.admit(account_tx("carol", 6, 100)), AdmissionResult::kAccepted);
    EXPECT_EQ(pool.size(), 2u);
}

TEST(MempoolRbf, ReplacementFreesCapacityBeforeEviction) {
    MempoolConfig config;
    config.max_count = 2;
    config.rbf_min_bump = 1.0;
    Mempool pool(config);
    const Transaction a = utxo_tx(1, 1'000);
    const Transaction b = utxo_tx(2, 90'000);
    ASSERT_EQ(pool.admit(a), AdmissionResult::kAccepted);
    ASSERT_EQ(pool.admit(b), AdmissionResult::kAccepted);

    // Replacing `a` at a full pool must not evict `b`: the conflict's slot is
    // the capacity the newcomer uses.
    Transaction bump = utxo_tx(1, 2'000);
    bump.nonce = 9;
    EXPECT_EQ(pool.admit(bump), AdmissionResult::kRbfReplaced);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_TRUE(pool.contains(b.txid()));
    EXPECT_EQ(pool.stats().drops(MempoolDropReason::kEvicted), 0u);
}

// --- Byte budget -----------------------------------------------------------------

TEST(MempoolBytes, EvictionAtExactByteBudget) {
    // Three equal-size txs exactly fill the byte budget; a fourth must evict.
    const Transaction t1 = utxo_tx(1, 1'000, 32);
    const Transaction t2 = utxo_tx(2, 2'000, 32);
    const Transaction t3 = utxo_tx(3, 3'000, 32);
    ASSERT_EQ(t1.serialized_size(), t2.serialized_size());
    ASSERT_EQ(t2.serialized_size(), t3.serialized_size());
    const std::size_t unit = t1.serialized_size();

    MempoolConfig config;
    config.max_bytes = unit * 3; // exact fit, zero slack
    Mempool pool(config);
    EXPECT_EQ(pool.admit(t1), AdmissionResult::kAccepted);
    EXPECT_EQ(pool.admit(t2), AdmissionResult::kAccepted);
    EXPECT_EQ(pool.admit(t3), AdmissionResult::kAccepted);
    EXPECT_EQ(pool.bytes(), unit * 3);

    // Worse than the worst resident: shed, not swapped.
    EXPECT_EQ(pool.admit(utxo_tx(4, 500, 32)), AdmissionResult::kQueueFull);
    EXPECT_EQ(pool.bytes(), unit * 3);

    // Better: the lowest-feerate entry (t1) makes room.
    EXPECT_EQ(pool.admit(utxo_tx(5, 9'000, 32)), AdmissionResult::kAccepted);
    EXPECT_EQ(pool.bytes(), unit * 3);
    EXPECT_FALSE(pool.contains(t1.txid()));

    // An oversize newcomer may need several victims; all must be beatable.
    const Transaction wide = utxo_tx(6, 50'000, 32 + unit); // two units wide
    EXPECT_EQ(pool.admit(wide), AdmissionResult::kAccepted);
    EXPECT_LE(pool.bytes(), unit * 3);
    EXPECT_EQ(pool.size(), 2u);
}

TEST(MempoolBytes, FeeRateFloorTracksPressure) {
    MempoolConfig config;
    config.max_count = 2;
    config.min_fee_rate = 0.25;
    Mempool pool(config);
    EXPECT_DOUBLE_EQ(pool.fee_rate_floor(), 0.25); // relay floor while roomy
    const Transaction a = utxo_tx(1, 1'000);
    const Transaction b = utxo_tx(2, 4'000);
    pool.add(a);
    pool.add(b);
    // Full: floor becomes the worst resident feerate.
    EXPECT_DOUBLE_EQ(pool.fee_rate_floor(), rate_of(a));
    EXPECT_DOUBLE_EQ(pool.best_fee_rate().value(), rate_of(b));
}

// --- Expiry -----------------------------------------------------------------------

TEST(MempoolExpiry, ExpiresAndRefusesStaleRerelay) {
    MempoolConfig config;
    config.expiry = 10.0;
    Mempool pool(config);

    std::vector<std::pair<Hash256, MempoolDropReason>> drops;
    pool.set_drop_observer([&](const Hash256& id, MempoolDropReason why, SimTime) {
        drops.emplace_back(id, why);
    });

    const Transaction tx = utxo_tx(1, 1'000);
    ASSERT_EQ(pool.admit(tx, /*now=*/0.0), AdmissionResult::kAccepted);
    EXPECT_EQ(pool.expire(9.9), 0u);
    EXPECT_EQ(pool.expire(10.0), 1u);
    EXPECT_TRUE(pool.empty());
    ASSERT_EQ(drops.size(), 1u);
    EXPECT_EQ(drops[0].first, tx.txid());
    EXPECT_EQ(drops[0].second, MempoolDropReason::kExpired);

    // A stale re-relay of the expired tx is refused with the typed code.
    EXPECT_EQ(pool.admit(tx, 10.5), AdmissionResult::kExpired);
    EXPECT_EQ(pool.stats().result(AdmissionResult::kExpired), 1u);
}

TEST(MempoolExpiry, ReorgAddBackRestartsResidencyClock) {
    MempoolConfig config;
    config.expiry = 60.0;
    Mempool pool(config);

    const Transaction tx = utxo_tx(1, 1'000);
    ASSERT_EQ(pool.admit(tx, 0.0), AdmissionResult::kAccepted);

    // Confirmed at t=10, reorged back at t=50: a fresh residency period
    // starts at 50 — the stale t=0 ring slot must not expire it at t=60.
    pool.remove_confirmed({tx.txid()});
    EXPECT_TRUE(pool.empty());
    pool.add_back({tx}, 50.0);
    EXPECT_TRUE(pool.contains(tx.txid()));

    EXPECT_EQ(pool.expire(70.0), 0u); // old slot is stale, new one is young
    EXPECT_TRUE(pool.contains(tx.txid()));
    EXPECT_EQ(pool.expire(110.0), 1u); // 50 + 60
    EXPECT_TRUE(pool.empty());
}

TEST(MempoolEviction, AddBackNeverEvictsAncestorForItsOwnDescendant) {
    // Regression (E27 crash-during-reorg composition): a disconnected block's
    // transactions are re-added ancestors-first. With the pool at its exact
    // byte budget, admitting the high-feerate descendant used to evict the
    // worst-by-feerate resident — which could be the just-re-added ancestor
    // it spends, leaving the descendant an unminable orphan the moment it
    // entered. In-pool ancestors of the newcomer must never be eviction
    // victims; the eviction walk takes the next-worst unrelated resident.
    Transaction parent = utxo_tx(1, 30); // worst feerate in the pool
    Transaction child = make_transfer(
        {OutPoint{parent.txid(), 0}},
        {TxOutput{kCoin, crypto::PrivateKey::from_seed("r2").address()}});
    child.declared_fee = 50'000; // best feerate: descendant outbids everyone
    const Transaction filler_a = utxo_tx(2, 1'000);
    const Transaction filler_b = utxo_tx(3, 2'000);

    MempoolConfig config;
    config.min_fee_rate = 0.0;
    config.expiry = 0.0;
    // Exact byte budget: the two fillers plus the parent fit, and the child
    // is one byte over — its admission must evict exactly one resident.
    config.max_bytes = parent.serialized_size() + child.serialized_size() +
                       filler_a.serialized_size() + filler_b.serialized_size() -
                       1;
    Mempool pool(config);
    ASSERT_EQ(pool.admit(filler_a), AdmissionResult::kAccepted);
    ASSERT_EQ(pool.admit(filler_b), AdmissionResult::kAccepted);

    // The reorg hands back the disconnected block's txs in block order.
    pool.add_back({parent, child}, 1.0);

    EXPECT_TRUE(pool.contains(child.txid()));
    EXPECT_TRUE(pool.contains(parent.txid())); // not sacrificed to its child
    EXPECT_FALSE(pool.contains(filler_a.txid())); // next-worst paid instead
    EXPECT_TRUE(pool.contains(filler_b.txid()));
}

TEST(MempoolEviction, AddBackPoisonsDescendantsOfFailedAncestors) {
    // The companion guarantee: when the ancestor itself cannot re-enter (the
    // pool is saturated with better feerates), its in-batch descendants are
    // not admitted as orphans either.
    Transaction parent = utxo_tx(1, 10); // below everything resident
    Transaction child = make_transfer(
        {OutPoint{parent.txid(), 0}},
        {TxOutput{kCoin, crypto::PrivateKey::from_seed("r2").address()}});
    child.declared_fee = 50'000;

    MempoolConfig config;
    config.min_fee_rate = 0.0;
    config.max_count = 2;
    Mempool pool(config);
    ASSERT_EQ(pool.admit(utxo_tx(2, 10'000)), AdmissionResult::kAccepted);
    ASSERT_EQ(pool.admit(utxo_tx(3, 20'000)), AdmissionResult::kAccepted);

    pool.add_back({parent, child}, 1.0);
    EXPECT_FALSE(pool.contains(parent.txid())); // shed: pool full of better
    EXPECT_FALSE(pool.contains(child.txid()));  // poisoned, not an orphan
    EXPECT_EQ(pool.size(), 2u);
}

// --- Template vs oracle -----------------------------------------------------------

/// Reference template: deep-copy every entry, sort from scratch with the
/// published ordering (feerate desc, newest-first within ties), greedy-skip.
std::vector<Hash256> oracle_template(const std::vector<Transaction>& entries,
                                     const std::vector<std::uint64_t>& seqs,
                                     std::size_t max_bytes,
                                     std::size_t max_count) {
    std::vector<std::size_t> idx(entries.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        const double ra = rate_of(entries[a]);
        const double rb = rate_of(entries[b]);
        if (ra != rb) return ra > rb;
        return seqs[a] > seqs[b];
    });
    std::vector<Hash256> out;
    std::size_t used = 0;
    for (const std::size_t i : idx) {
        if (out.size() >= max_count) break;
        const std::size_t size = entries[i].serialized_size();
        if (used + size > max_bytes) continue;
        out.push_back(entries[i].txid());
        used += size;
    }
    return out;
}

TEST(MempoolTemplate, ByteIdenticalWithResortOracle) {
    Rng rng(42);
    Mempool pool;
    std::vector<Transaction> resident;
    std::vector<std::uint64_t> seqs;
    for (std::uint64_t i = 0; i < 400; ++i) {
        // Discrete fee menu: heavy ties, variable sizes.
        const Amount fee = 100 * (1 + static_cast<Amount>(rng.uniform(8)));
        Transaction tx = utxo_tx(1'000 + i, fee, rng.uniform(64));
        if (pool.admit(tx) == AdmissionResult::kAccepted) {
            resident.push_back(tx);
            seqs.push_back(i);
        }
    }
    for (const std::size_t budget : {800u, 4'000u, 20'000u, 1'000'000u}) {
        for (const std::size_t count : {3u, 50u, 10'000u}) {
            const auto tmpl = pool.build_template(budget, count);
            std::vector<Hash256> got;
            for (const auto& e : tmpl) got.push_back(e.tx->txid());
            EXPECT_EQ(got, oracle_template(resident, seqs, budget, count))
                << "budget=" << budget << " count=" << count;
        }
    }
}

TEST(MempoolTemplate, DeterministicAcrossThreadCounts) {
    // The pool is part of the simulation's deterministic core: its template
    // must not depend on the global worker count (DLT_THREADS).
    const auto run = [](std::size_t workers) {
        ThreadPool::set_global_workers(workers);
        Mempool pool;
        Rng rng(7);
        for (std::uint64_t i = 0; i < 300; ++i)
            pool.add(utxo_tx(i, 50 + static_cast<Amount>(rng.uniform(500)),
                             rng.uniform(48)));
        std::vector<Hash256> ids;
        for (const auto& e : pool.build_template(30'000, 200))
            ids.push_back(e.tx->txid());
        return ids;
    };
    const auto single = run(1);
    const auto pooled = run(4);
    ThreadPool::set_global_workers(0);
    EXPECT_EQ(single, pooled);
}

// --- Saturation hammer vs brute-force reference -----------------------------------

/// Straight reimplementation of the published default admission policy with
/// naive containers (the seed pool's semantics): count-bound only, evict the
/// lowest feerate (oldest within ties), refuse when the newcomer does not
/// strictly beat the worst.
class ReferencePool {
public:
    explicit ReferencePool(std::size_t cap) : cap_(cap) {}

    bool add(const Transaction& tx, std::uint64_t seq) {
        const Hash256 id = tx.txid();
        for (const auto& e : entries_)
            if (e.id == id) return false;
        const double rate = rate_of(tx);
        if (entries_.size() >= cap_) {
            const auto worst = std::min_element(
                entries_.begin(), entries_.end(), [](const E& a, const E& b) {
                    if (a.rate != b.rate) return a.rate < b.rate;
                    return a.seq < b.seq;
                });
            if (worst->rate >= rate) return false;
            entries_.erase(worst);
        }
        entries_.push_back(E{id, rate, seq, tx.serialized_size()});
        return true;
    }

    void remove(const Hash256& id) {
        entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                      [&](const E& e) { return e.id == id; }),
                       entries_.end());
    }

    std::vector<Hash256> select(std::size_t max_bytes, std::size_t max_count) const {
        auto sorted = entries_;
        std::sort(sorted.begin(), sorted.end(), [](const E& a, const E& b) {
            if (a.rate != b.rate) return a.rate > b.rate;
            return a.seq > b.seq;
        });
        std::vector<Hash256> out;
        std::size_t used = 0;
        for (const auto& e : sorted) {
            if (out.size() >= max_count) break;
            if (used + e.size > max_bytes) continue;
            out.push_back(e.id);
            used += e.size;
        }
        return out;
    }

    std::size_t size() const { return entries_.size(); }

private:
    struct E {
        Hash256 id;
        double rate;
        std::uint64_t seq;
        std::size_t size;
    };
    std::size_t cap_;
    std::vector<E> entries_;
};

TEST(MempoolHammer, IndexStaysConsistentWithBruteForce) {
    constexpr std::size_t kCap = 400;
    Mempool pool(kCap);
    ReferencePool reference(kCap);
    Rng rng(1234);

    std::vector<Transaction> universe;
    for (std::uint64_t i = 0; i < 1'500; ++i) {
        // 12 discrete fee levels: dense ties at every rate.
        const Amount fee = 60 * (1 + static_cast<Amount>(rng.uniform(12)));
        universe.push_back(utxo_tx(50'000 + i, fee, rng.uniform(32)));
    }

    std::uint64_t seq = 0;
    for (std::size_t round = 0; round < 30; ++round) {
        // Admission wave.
        for (std::size_t i = 0; i < 50; ++i) {
            const auto& tx = universe[rng.index(universe.size())];
            const bool got = pool.add(tx);
            const bool want = reference.add(tx, seq);
            ASSERT_EQ(got, want) << "round " << round;
            if (got) ++seq;
        }
        ASSERT_EQ(pool.size(), reference.size());

        // Mine: both confirm the same template prefix.
        const auto tmpl = pool.build_template(6'000, 25);
        std::vector<Hash256> ids;
        for (const auto& e : tmpl) ids.push_back(e.tx->txid());
        ASSERT_EQ(ids, reference.select(6'000, 25)) << "round " << round;
        pool.remove_confirmed(ids);
        for (const auto& id : ids) reference.remove(id);
        ASSERT_EQ(pool.size(), reference.size());
        ASSERT_EQ(pool.select(100'000).size(),
                  reference.select(100'000, SIZE_MAX).size());
    }
}

// --- Lifecycle drop stamps --------------------------------------------------------

TEST(TxLifecycleDrops, DropIsTerminalUnlessReaccepted) {
    obs::TxLifecycleTracker tracker(2);
    const Hash256 id = crypto::sha256(to_bytes("tx-1"));
    tracker.on_submitted(id, 1.0);
    tracker.on_mempool_accepted(id, 0, 1.5);
    tracker.on_dropped(id, 0, 9.0, obs::TxDropReason::kEvicted);

    const auto* rec = tracker.find(id);
    ASSERT_NE(rec, nullptr);
    ASSERT_TRUE(rec->dropped.has_value());
    EXPECT_DOUBLE_EQ(*rec->dropped, 9.0);
    EXPECT_EQ(rec->drop_reason, obs::TxDropReason::kEvicted);
    EXPECT_EQ(tracker.dropped_count(), 1u);

    // The drop-to-submit latency is measurable (no more infinite latency).
    const auto lat = tracker.latencies(obs::TxStage::kSubmitted,
                                       obs::TxStage::kDropped);
    ASSERT_EQ(lat.size(), 1u);
    EXPECT_DOUBLE_EQ(lat[0], 8.0);

    // Re-accept (reorg add_back / re-relay) clears the terminal stamp...
    tracker.on_mempool_accepted(id, 0, 12.0);
    EXPECT_EQ(tracker.dropped_count(), 0u);
    EXPECT_FALSE(tracker.find(id)->dropped.has_value());

    // ...and inclusion wins over a later stray drop report.
    tracker.on_block_connected(3, {id}, 20.0);
    tracker.on_dropped(id, 0, 21.0, obs::TxDropReason::kExpired);
    EXPECT_EQ(tracker.dropped_count(), 0u);
    EXPECT_FALSE(tracker.find(id)->dropped.has_value());
}

// --- Zipf sampler -----------------------------------------------------------------

TEST(ZipfSampler, BoundsAndSkew) {
    app::ZipfSampler zipf(1'000'000, 1.1);
    Rng rng(99);
    std::uint64_t rank1 = 0;
    std::uint64_t tail = 0;
    for (int i = 0; i < 50'000; ++i) {
        const std::uint64_t k = zipf.sample(rng);
        ASSERT_GE(k, 1u);
        ASSERT_LE(k, 1'000'000u);
        if (k == 1) ++rank1;
        if (k > 1'000) ++tail;
    }
    // Rank 1 of a million-element Zipf(1.1) carries a few percent of the mass;
    // the tail past rank 1000 carries a large minority.
    EXPECT_GT(rank1, 500u);
    EXPECT_GT(tail, 5'000u);
    EXPECT_LT(tail, 45'000u);
}

TEST(ZipfSampler, HigherExponentConcentrates) {
    Rng rng_a(5);
    Rng rng_b(5);
    app::ZipfSampler mild(100'000, 0.8);
    app::ZipfSampler steep(100'000, 1.6);
    std::uint64_t mild_top = 0;
    std::uint64_t steep_top = 0;
    for (int i = 0; i < 20'000; ++i) {
        if (mild.sample(rng_a) <= 10) ++mild_top;
        if (steep.sample(rng_b) <= 10) ++steep_top;
    }
    EXPECT_GT(steep_top, mild_top * 2);
}

// --- Workload engine --------------------------------------------------------------

consensus::NakamotoParams small_net_params() {
    consensus::NakamotoParams params;
    params.node_count = 3;
    params.block_interval = 5.0;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    params.mempool.max_count = 2'000;
    params.chain_tag = "wl-test";
    return params;
}

app::WorkloadParams small_workload() {
    app::WorkloadParams wl;
    wl.population = 50'000;
    wl.base_tps = 200.0;
    wl.submit_nodes = 3;
    wl.payload_bytes = 32;
    return wl;
}

TEST(WorkloadEngine, RateShapingDiurnalAndBurst) {
    consensus::NakamotoNetwork net(small_net_params(), 1);
    app::WorkloadParams wl = small_workload();
    wl.diurnal_amplitude = 0.5;
    wl.diurnal_period = 100.0;
    wl.burst_every = 50.0;
    wl.burst_duration = 10.0;
    wl.burst_multiplier = 3.0;
    app::WorkloadEngine engine(net, wl, 2);

    // Burst phase (t in [0, 10)): base * diurnal * 3.
    EXPECT_NEAR(engine.rate_at(25.0), 200.0 * 1.5, 1e-6); // sin peak, no burst
    EXPECT_GT(engine.rate_at(5.0), 3.0 * 200.0 * 0.9);
    EXPECT_NEAR(engine.rate_at(75.0), 200.0 * 0.5, 1e-6); // sin trough
}

TEST(WorkloadEngine, DeterministicAcrossRuns) {
    const auto run = [] {
        consensus::NakamotoNetwork net(small_net_params(), 11);
        app::WorkloadEngine engine(net, small_workload(), 22);
        net.start();
        engine.start();
        net.run_for(10.0);
        std::vector<std::pair<Hash256, double>> out;
        for (const auto& s : engine.submissions())
            out.emplace_back(s.txid, s.fee_rate);
        return out;
    };
    const auto first = run();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, run());
}

TEST(WorkloadEngine, SubmitsNearOfferedRateAndReachesChain) {
    consensus::NakamotoNetwork net(small_net_params(), 31);
    app::WorkloadEngine engine(net, small_workload(), 32);
    net.start();
    engine.start();
    net.run_for(20.0);
    engine.stop();
    net.run_for(30.0); // drain

    // 200 tps for 20 s -> ~4000 submissions (Poisson, wide tolerance).
    const auto& stats = engine.stats();
    EXPECT_GT(stats.submitted, 3'400u);
    EXPECT_LT(stats.submitted, 4'600u);
    EXPECT_GT(stats.distinct_agents, 100u);
    EXPECT_GT(net.confirmed_tx_count(), 0u);
    // Zipf identity: far fewer distinct agents than submissions.
    EXPECT_LT(stats.distinct_agents, stats.submitted);
}

TEST(WorkloadEngine, HotAccountsForceConflictResolution) {
    consensus::NakamotoParams params = small_net_params();
    consensus::NakamotoNetwork net(params, 41);
    app::WorkloadParams wl = small_workload();
    wl.hot_accounts = 4;
    wl.hot_fraction = 0.5;
    app::WorkloadEngine engine(net, wl, 42);
    net.start();
    engine.start();
    net.run_for(15.0);

    EXPECT_GT(engine.stats().hot_submissions, 0u);
    // Contended (sender, nonce) slots must produce RBF replacements and/or
    // insufficient-bump rejections at the pools.
    std::uint64_t replaced = 0;
    std::uint64_t too_low = 0;
    for (net::NodeId n = 0; n < net.node_count(); ++n) {
        replaced += net.mempool_of(n).stats().result(AdmissionResult::kRbfReplaced);
        too_low += net.mempool_of(n).stats().result(AdmissionResult::kFeeTooLow);
    }
    EXPECT_GT(replaced + too_low, 0u);
}

// --- Multi-observer ChainEvents ---------------------------------------------------

TEST(ChainEventsObservers, AnyNodeCanBeObserved) {
    consensus::NakamotoParams params = small_net_params();
    consensus::NakamotoNetwork net(params, 51);

    std::uint64_t tips0 = 0;
    std::uint64_t tips2 = 0;
    std::uint64_t inserted2 = 0;
    net.events().on_tip_changed = [&](const Hash256&, std::uint64_t, SimTime) {
        ++tips0;
    };
    net.events(2).on_tip_changed = [&](const Hash256&, std::uint64_t, SimTime) {
        ++tips2;
    };
    net.events(2).on_block_inserted = [&](const ledger::Block&, SimTime) {
        ++inserted2;
    };

    net.start();
    net.run_for(120.0);

    EXPECT_GT(tips0, 0u);
    EXPECT_GT(tips2, 0u);
    EXPECT_GT(inserted2, 0u);
    // Both replicas converged over the run, so observed tip counts are close.
    EXPECT_NEAR(static_cast<double>(tips0), static_cast<double>(tips2),
                static_cast<double>(std::max(tips0, tips2)));
}

} // namespace
