// Tests for the pluggable UTXO state engine (E28): the ShardedMemoryBackend
// against a reference map oracle, the strengthened OutPointHash (distribution
// + avalanche), duplicate-outpoint rejection in UtxoSet::decode, digest
// equality across backends and thread counts, LSM reopen/recovery semantics
// (flush, compaction, covers-rule healing, WAL batch replay, bloom-filter
// skips), block-file pruning, and the persistent-engine crash matrix — a node
// on the LSM engine killed at every write boundary across memtable-flush,
// compaction, and prune windows must reopen to a reference state and finish
// its workload.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <filesystem>
#include <map>
#include <random>

#include <unistd.h>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "core/persistent_node.hpp"
#include "crypto/keys.hpp"
#include "ledger/difficulty.hpp"
#include "ledger/outpoint_hash.hpp"
#include "ledger/state_backend.hpp"
#include "ledger/utxo.hpp"
#include "scaling/bootstrap.hpp"
#include "storage/lsm_backend.hpp"

namespace {

using namespace dlt;
using namespace dlt::ledger;

struct TempDir {
    std::filesystem::path path;

    TempDir() {
        static std::atomic<unsigned> counter{0};
        path = std::filesystem::temp_directory_path() /
               ("dlt-state-test-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter.fetch_add(1)));
        std::filesystem::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

crypto::Address addr(const std::string& seed) {
    return crypto::PrivateKey::from_seed(seed).address();
}

OutPoint random_outpoint(std::mt19937_64& rng) {
    OutPoint op;
    for (std::size_t i = 0; i < Hash256::size(); ++i)
        op.txid[i] = static_cast<std::uint8_t>(rng());
    op.index = static_cast<std::uint32_t>(rng() % 16);
    return op;
}

TxOutput random_output(std::mt19937_64& rng) {
    return TxOutput{static_cast<Amount>(1 + rng() % 100000),
                    addr("holder-" + std::to_string(rng() % 7))};
}

Block test_genesis() { return make_genesis("state-test", easy_bits(2)); }

// Same deterministic chain shape as test_storage: every block carries a
// coinbase, every third additionally spends the coinbase two blocks back, so
// the state engine sees both inserts and erases.
std::vector<Block> build_chain(const Block& genesis, int n) {
    std::vector<Block> blocks;
    std::vector<Hash256> coinbase_txids;
    Hash256 prev = genesis.hash();
    for (int i = 1; i <= n; ++i) {
        Block b;
        b.header.prev_hash = prev;
        b.header.height = static_cast<std::uint64_t>(i);
        b.header.timestamp = 10.0 * i;
        Transaction cb = make_coinbase(addr("miner-" + std::to_string(i)),
                                       block_subsidy(static_cast<std::uint64_t>(i)),
                                       static_cast<std::uint64_t>(i));
        b.txs.push_back(cb);
        coinbase_txids.push_back(cb.txid());
        if (i % 3 == 0 && i >= 3) {
            const Hash256 spend_txid = coinbase_txids[static_cast<std::size_t>(i - 3)];
            const Amount value = block_subsidy(static_cast<std::uint64_t>(i - 2));
            b.txs.push_back(make_transfer(
                {OutPoint{spend_txid, 0}},
                {TxOutput{value, addr("payee-" + std::to_string(i))}}));
        }
        b.header.merkle_root = b.compute_merkle_root();
        blocks.push_back(b);
        prev = b.hash();
    }
    return blocks;
}

// --- ShardedMemoryBackend vs a reference map ---------------------------------------

TEST(StateBackend, ShardedMatchesReferenceMap) {
    std::mt19937_64 rng(0xE28);
    ShardedMemoryBackend backend;
    std::map<OutPoint, TxOutput> reference;

    std::vector<OutPoint> keys;
    for (int step = 0; step < 4000; ++step) {
        const int action = static_cast<int>(rng() % 100);
        if (action < 50 || keys.empty()) {
            const OutPoint op = random_outpoint(rng);
            const TxOutput out = random_output(rng);
            const bool inserted = backend.insert_if_absent(op, out);
            EXPECT_EQ(inserted, reference.emplace(op, out).second);
            keys.push_back(op);
        } else if (action < 70) {
            const OutPoint& op = keys[rng() % keys.size()];
            const TxOutput out = random_output(rng);
            const auto previous = backend.put(op, out);
            const auto it = reference.find(op);
            if (it == reference.end()) {
                EXPECT_FALSE(previous.has_value());
                reference.emplace(op, out);
            } else {
                ASSERT_TRUE(previous.has_value());
                EXPECT_EQ(*previous, it->second);
                it->second = out;
            }
        } else if (action < 90) {
            const OutPoint& op = keys[rng() % keys.size()];
            const auto removed = backend.erase(op);
            const auto it = reference.find(op);
            if (it == reference.end()) {
                EXPECT_FALSE(removed.has_value());
            } else {
                ASSERT_TRUE(removed.has_value());
                EXPECT_EQ(*removed, it->second);
                reference.erase(it);
            }
        } else {
            const OutPoint& op = keys[rng() % keys.size()];
            const auto got = backend.get(op);
            const auto it = reference.find(op);
            EXPECT_EQ(got.has_value(), it != reference.end());
            if (got && it != reference.end()) {
                EXPECT_EQ(*got, it->second);
            }
            EXPECT_EQ(backend.contains(op), it != reference.end());
        }
    }
    EXPECT_EQ(backend.size(), reference.size());

    // for_each_sorted must walk exactly the reference map's (sorted) order.
    auto it = reference.begin();
    backend.for_each_sorted([&](const OutPoint& op, const TxOutput& out) {
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(op, it->first);
        EXPECT_EQ(out, it->second);
        ++it;
    });
    EXPECT_EQ(it, reference.end());

    // The parallel per-shard encode must be byte-identical to the serial
    // base-class path (varint count + sorted entries).
    Writer serial;
    serial.varint(reference.size());
    for (const auto& [op, out] : reference) {
        op.encode(serial);
        out.encode(serial);
    }
    Writer parallel;
    backend.encode_sorted(parallel);
    EXPECT_EQ(parallel.data(), serial.data());
}

// --- OutPointHash quality ----------------------------------------------------------

// Pinned distribution properties of the strengthened hash. The old xor-fold
// (`hash_value(txid) ^ (index * 0x9E3779B9)`) left the high output bits a
// function of the txid alone and let correlated inputs cancel; the avalanche
// finisher makes every output bit depend on every input bit. Inputs are drawn
// from a fixed seed, so these bounds are deterministic, not flaky.
TEST(StateBackend, ShardDistributionPinned) {
    std::mt19937_64 rng(7);
    const OutPointHash hasher;

    // 1) Bucket balance: 4096 random outpoints over 64 low-bit buckets.
    constexpr int kKeys = 4096;
    constexpr int kBuckets = 64;
    std::array<int, kBuckets> low_buckets{};
    std::array<int, kBuckets> high_buckets{};
    std::array<int, ShardedMemoryBackend::kShards> shards{};
    for (int i = 0; i < kKeys; ++i) {
        const OutPoint op = random_outpoint(rng);
        const std::uint64_t h = hasher(op);
        ++low_buckets[h % kBuckets];
        ++high_buckets[(h >> 58) % kBuckets];
        ++shards[ShardedMemoryBackend::shard_of(op)];
    }
    for (int b = 0; b < kBuckets; ++b) {
        // Expected 64 per bucket; allow 3x headroom over Poisson spread.
        EXPECT_GT(low_buckets[b], 24) << "low bucket " << b;
        EXPECT_LT(low_buckets[b], 128) << "low bucket " << b;
        EXPECT_GT(high_buckets[b], 24) << "high bucket " << b;
        EXPECT_LT(high_buckets[b], 128) << "high bucket " << b;
    }
    // shard_of splits on the txid's top nibble (uniform for real txids).
    for (std::size_t s = 0; s < shards.size(); ++s) {
        EXPECT_GT(shards[s], kKeys / 32) << "shard " << s;
        EXPECT_LT(shards[s], kKeys / 8) << "shard " << s;
    }

    // 2) Index avalanche: flipping one index bit must flip about half the
    // output bits — including high ones, which the weak fold left untouched.
    std::uint64_t total_flips = 0;
    std::uint64_t high_flip_pairs = 0;
    constexpr int kPairs = 256;
    for (int i = 0; i < kPairs; ++i) {
        OutPoint a = random_outpoint(rng);
        OutPoint b = a;
        b.index = a.index ^ (1u << (i % 4));
        const std::uint64_t diff = hasher(a) ^ hasher(b);
        const int flips = std::popcount(diff);
        total_flips += static_cast<std::uint64_t>(flips);
        EXPECT_GE(flips, 8) << "pair " << i;
        if ((diff >> 32) != 0) ++high_flip_pairs;
    }
    EXPECT_GE(total_flips / kPairs, 24u);        // avg ~32 for a good mixer
    EXPECT_EQ(high_flip_pairs, kPairs);          // index reaches the high bits
}

// --- UtxoSet::decode hardening -----------------------------------------------------

TEST(UtxoCodec, DuplicateOutpointRejected) {
    std::mt19937_64 rng(11);
    const OutPoint op = random_outpoint(rng);
    const TxOutput out = random_output(rng);

    Writer w;
    w.varint(2);
    op.encode(w);
    out.encode(w);
    op.encode(w); // same outpoint again — previously silently merged
    out.encode(w);
    Reader r{ByteView(w.data())};
    EXPECT_THROW(UtxoSet::decode(r), DecodeError);

    // Distinct entries still decode, and the index/total come out right.
    OutPoint op2 = op;
    op2.index ^= 1;
    Writer ok;
    ok.varint(2);
    // Canonical snapshots are sorted; keep the crafted one sorted too.
    const OutPoint& first = std::min(op, op2);
    const OutPoint& second = std::max(op, op2);
    first.encode(ok);
    out.encode(ok);
    second.encode(ok);
    out.encode(ok);
    Reader r2{ByteView(ok.data())};
    const UtxoSet decoded = UtxoSet::decode(r2);
    r2.expect_done();
    EXPECT_EQ(decoded.size(), 2u);
    EXPECT_EQ(decoded.total_value(), 2 * out.value);
    EXPECT_EQ(decoded.balance_of(out.recipient), 2 * out.value);
}

// --- Cross-backend and cross-thread-count digest equality --------------------------

TEST(StateBackend, BackendsAndThreadCountsAgreeOnSnapshotBytes) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 18);

    UtxoSet in_memory; // default sharded engine
    storage::LsmOptions lsm;
    lsm.memtable_limit = 8; // force flushes and compactions mid-workload
    lsm.compact_trigger = 3;
    UtxoSet persistent(std::make_unique<storage::LsmBackend>(dir.path, lsm));
    EXPECT_STREQ(persistent.backend().name(), "lsm");

    in_memory.apply_block(genesis);
    persistent.apply_block(genesis);
    std::uint64_t tag = 0;
    persistent.commit(++tag, ByteView{});
    for (const auto& b : blocks) {
        in_memory.apply_block(b);
        persistent.apply_block(b);
        persistent.commit(++tag, ByteView{});
    }

    EXPECT_EQ(in_memory.size(), persistent.size());
    EXPECT_EQ(in_memory.total_value(), persistent.total_value());
    EXPECT_EQ(in_memory.balance_of(addr("miner-18")),
              persistent.balance_of(addr("miner-18")));
    EXPECT_EQ(in_memory.coins_of(addr("payee-3")), persistent.coins_of(addr("payee-3")));

    const Bytes serial_bytes = scaling::serialize_utxo(in_memory);
    EXPECT_EQ(scaling::serialize_utxo(persistent), serial_bytes);

    // The parallel encode must produce the same bytes at any thread count.
    const std::size_t saved_workers = ThreadPool::global_workers();
    ThreadPool::set_global_workers(0);
    EXPECT_EQ(scaling::serialize_utxo(in_memory), serial_bytes);
    ThreadPool::set_global_workers(3);
    EXPECT_EQ(scaling::serialize_utxo(in_memory), serial_bytes);
    ThreadPool::set_global_workers(saved_workers);

    // Copies deep-clone: the persistent set materializes into memory and the
    // copy keeps matching after the original moves on.
    const UtxoSet copy = persistent;
    EXPECT_STREQ(copy.backend().name(), "sharded-memory");
    EXPECT_EQ(scaling::serialize_utxo(copy), serial_bytes);
}

// --- LsmBackend --------------------------------------------------------------------

TEST(Lsm, StateSurvivesReopenThroughFlushesAndCompactions) {
    TempDir dir;
    std::mt19937_64 rng(42);
    std::map<OutPoint, TxOutput> reference;

    storage::LsmOptions options;
    options.memtable_limit = 8;
    options.compact_trigger = 3;
    std::uint64_t tag = 0;
    {
        storage::LsmBackend backend(dir.path, options);
        for (int batch = 0; batch < 30; ++batch) {
            for (int i = 0; i < 5; ++i) {
                const OutPoint op = random_outpoint(rng);
                const TxOutput out = random_output(rng);
                backend.insert_if_absent(op, out);
                reference.emplace(op, out);
            }
            // Erase one existing key per batch: tombstones must shadow older
            // runs and be dropped by compaction.
            if (!reference.empty()) {
                auto victim = reference.begin();
                std::advance(victim, static_cast<long>(rng() % reference.size()));
                EXPECT_EQ(backend.erase(victim->first), victim->second);
                reference.erase(victim);
            }
            backend.commit_batch(++tag, ByteView{});
        }
        const auto stats = backend.stats();
        EXPECT_GT(stats.flushes, 0u);
        EXPECT_GT(stats.compactions, 0u);
        EXPECT_EQ(backend.size(), reference.size());
    }

    storage::LsmBackend reopened(dir.path, options);
    EXPECT_EQ(reopened.size(), reference.size());
    EXPECT_EQ(reopened.committed_tag(), tag);
    auto it = reference.begin();
    reopened.for_each_sorted([&](const OutPoint& op, const TxOutput& out) {
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(op, it->first);
        EXPECT_EQ(out, it->second);
        ++it;
    });
    EXPECT_EQ(it, reference.end());

    // Point reads after reopen hit the run files (not just the memtable).
    std::mt19937_64 probe_rng(42);
    for (int i = 0; i < 20; ++i) {
        const OutPoint op = random_outpoint(probe_rng);
        const auto expected = reference.find(op);
        const auto got = reopened.get(op);
        EXPECT_EQ(got.has_value(), expected != reference.end());
    }

    // clone() materializes into the in-memory engine with identical contents.
    const auto clone = reopened.clone();
    EXPECT_STREQ(clone->name(), "sharded-memory");
    Writer a, b;
    reopened.encode_sorted(a);
    clone->encode_sorted(b);
    EXPECT_EQ(a.data(), b.data());
}

TEST(Lsm, UncommittedMutationsDieWithTheProcess) {
    TempDir dir;
    std::mt19937_64 rng(9);
    const OutPoint committed_key = random_outpoint(rng);
    const TxOutput committed_val = random_output(rng);
    {
        storage::LsmBackend backend(dir.path);
        backend.insert_if_absent(committed_key, committed_val);
        backend.commit_batch(1, ByteView{});
        // Mutations after the last commit are volatile by contract.
        backend.insert_if_absent(random_outpoint(rng), random_output(rng));
        backend.erase(committed_key);
    }
    storage::LsmBackend reopened(dir.path);
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.get(committed_key), committed_val);
    EXPECT_EQ(reopened.committed_tag(), 1u);
    EXPECT_GT(reopened.stats().wal_replayed, 0u);
}

TEST(Lsm, BloomFilterSkipsNegativeLookups) {
    TempDir dir;
    std::mt19937_64 rng(5);
    storage::LsmOptions options;
    options.memtable_limit = 4;
    storage::LsmBackend backend(dir.path, options);
    for (int i = 0; i < 8; ++i)
        backend.insert_if_absent(random_outpoint(rng), random_output(rng));
    backend.commit_batch(1, ByteView{}); // memtable over limit -> flush to a run
    ASSERT_GT(backend.stats().runs, 0u);

    for (int i = 0; i < 200; ++i)
        EXPECT_FALSE(backend.get(random_outpoint(rng)).has_value());
    const auto stats = backend.stats();
    EXPECT_GT(stats.run_probes, 0u);
    // 10 bits/key + 6 probes gives a ~1% false-positive rate; virtually every
    // negative lookup must be answered by the bloom filter without disk I/O.
    EXPECT_GT(stats.bloom_skips, stats.run_probes * 9 / 10);
}

// --- PersistentNode on the LSM engine ----------------------------------------------

using core::PersistentNode;
using core::PersistentNodeOptions;
using core::StateEngine;

PersistentNodeOptions persistent_options() {
    PersistentNodeOptions options;
    options.state_engine = StateEngine::kPersistent;
    options.state_memtable_limit = 8;
    options.state_compact_trigger = 2;
    return options;
}

TEST(PersistentNode, LsmEngineRecoversWithoutSnapshots) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 15);

    UtxoSet reference;
    reference.apply_block(genesis);
    for (const auto& b : blocks) reference.apply_block(b);

    {
        PersistentNode node(dir.path, genesis, persistent_options());
        for (const auto& b : blocks) node.connect_block(b);
        EXPECT_STREQ(node.utxo().backend().name(), "lsm");
    }
    PersistentNode node(dir.path, genesis, persistent_options());
    EXPECT_TRUE(node.recovery().from_state_engine);
    EXPECT_FALSE(node.recovery().from_snapshot);
    // The engine committed through the last WAL record, so nothing replays.
    EXPECT_EQ(node.recovery().wal_records_replayed, 0u);
    EXPECT_EQ(node.recovery().state_tag, 15u);
    EXPECT_EQ(node.height(), 15u);
    EXPECT_EQ(node.tip(), blocks.back().hash());
    EXPECT_EQ(scaling::serialize_utxo(node.utxo()), scaling::serialize_utxo(reference));

    // Disconnect/reconnect keeps the engine in lockstep across another restart.
    node.disconnect_tip();
    node.disconnect_tip();
    EXPECT_EQ(node.height(), 13u);
    {
        PersistentNode reopened(dir.path, genesis, persistent_options());
        EXPECT_EQ(reopened.height(), 13u);
        reopened.connect_block(blocks[13]);
        reopened.connect_block(blocks[14]);
        EXPECT_EQ(scaling::serialize_utxo(reopened.utxo()),
                  scaling::serialize_utxo(reference));
    }
}

TEST(PersistentNode, EngineSwitchesPreserveState) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 10);

    UtxoSet reference;
    reference.apply_block(genesis);
    for (const auto& b : blocks) reference.apply_block(b);
    const Bytes want = scaling::serialize_utxo(reference);

    { // Start life on the in-memory engine.
        PersistentNode node(dir.path, genesis);
        for (int i = 0; i < 6; ++i) node.connect_block(blocks[i]);
    }
    { // Upgrade to the LSM engine: the node WAL replays onto a fresh engine.
        PersistentNode node(dir.path, genesis, persistent_options());
        EXPECT_FALSE(node.recovery().from_state_engine); // engine was empty
        EXPECT_EQ(node.recovery().wal_records_replayed, 6u);
        EXPECT_EQ(node.height(), 6u);
        for (int i = 6; i < 10; ++i) node.connect_block(blocks[i]);
        EXPECT_EQ(scaling::serialize_utxo(node.utxo()), want);
    }
    { // And back down: the in-memory engine ignores the state dir entirely.
        PersistentNode node(dir.path, genesis);
        EXPECT_EQ(node.height(), 10u);
        EXPECT_EQ(scaling::serialize_utxo(node.utxo()), want);
    }
}

TEST(PersistentNode, PruneDropsBlockFilesBelowSnapshot) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 14);

    UtxoSet reference;
    reference.apply_block(genesis);
    for (const auto& b : blocks) reference.apply_block(b);

    PersistentNodeOptions options = persistent_options();
    options.prune_blocks = true;
    options.snapshots_to_keep = 1;
    {
        PersistentNode node(dir.path, genesis, options);
        for (int i = 0; i < 10; ++i) node.connect_block(blocks[i]);
        node.snapshot(); // covers heights <= 10; prunes block files below 10
        EXPECT_EQ(node.block_store().pruned_below(), 10u);
        EXPECT_EQ(node.block_store().size(), 1u); // only height 10 survives
        for (int i = 10; i < 14; ++i) node.connect_block(blocks[i]);
        // Disconnecting back to the prune floor works (kept undo records)...
        for (int i = 0; i < 4; ++i) node.disconnect_tip();
        EXPECT_EQ(node.height(), 10u);
        // ...but crossing the floor is refused: the parent block is gone.
        EXPECT_THROW(node.disconnect_tip(), StorageError);
        EXPECT_EQ(node.height(), 10u);
        for (int i = 10; i < 14; ++i) node.connect_block(blocks[i]);
    }
    // Restart: the chain index anchors at a detached root, the engine carries
    // the state, and the node keeps extending with the exact reference state.
    PersistentNode node(dir.path, genesis, options);
    EXPECT_TRUE(node.recovery().from_state_engine);
    EXPECT_EQ(node.height(), 14u);
    EXPECT_EQ(node.tip(), blocks.back().hash());
    EXPECT_EQ(scaling::serialize_utxo(node.utxo()), scaling::serialize_utxo(reference));
}

// The E28 acceptance test: a node on the persistent engine killed at *every*
// write boundary — node WAL, state WAL, block store, memtable-flush run
// files, compaction run files, and prune rewrites — must reopen to a state
// the never-crashed reference passed through and finish the workload to the
// identical final state. Each boundary is hit clean (budget at the boundary)
// and torn (one byte short).
TEST(PersistentNode, LsmCrashMatrixAtEveryWriteBoundary) {
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 9);

    // Workload: 6 connects, a snapshot (which prunes below height 6), two
    // more connects, one disconnect, three reconnects. The tiny memtable and
    // trigger below force multiple flushes *and* compactions inside the
    // window, so every LSM write path crosses a crash boundary.
    struct Op {
        enum Kind { kConnect, kDisconnect, kSnapshot } kind;
        std::size_t block = 0;
    };
    std::vector<Op> script;
    for (std::size_t i = 0; i < 6; ++i) script.push_back({Op::kConnect, i});
    script.push_back({Op::kSnapshot, 0});
    for (std::size_t i = 6; i < 8; ++i) script.push_back({Op::kConnect, i});
    script.push_back({Op::kDisconnect, 0});
    for (std::size_t i = 7; i < 9; ++i) script.push_back({Op::kConnect, i});

    auto make_options = [](storage::CrashInjector* injector) {
        PersistentNodeOptions options;
        options.state_engine = StateEngine::kPersistent;
        options.state_memtable_limit = 4;
        options.state_compact_trigger = 2;
        options.prune_blocks = true;
        options.snapshots_to_keep = 1;
        options.injector = injector;
        return options;
    };

    // Reference (never crashed, purely in memory): state after each op.
    std::vector<std::pair<Hash256, Bytes>> ref_states;
    {
        UtxoSet state;
        state.apply_block(genesis);
        std::vector<std::pair<Hash256, UtxoUndo>> undo_stack;
        Hash256 tip = genesis.hash();
        ref_states.emplace_back(tip, scaling::serialize_utxo(state));
        for (const auto& op : script) {
            if (op.kind == Op::kConnect) {
                const Block& b = blocks[op.block];
                undo_stack.emplace_back(b.hash(), state.apply_block(b));
                tip = b.hash();
            } else if (op.kind == Op::kDisconnect) {
                state.undo_block(undo_stack.back().second);
                undo_stack.pop_back();
                tip = undo_stack.back().first;
            } // snapshots don't change logical state
            ref_states.emplace_back(tip, scaling::serialize_utxo(state));
        }
    }

    auto run_script = [&](PersistentNode& node, std::size_t from) {
        for (std::size_t i = from; i < script.size(); ++i) {
            switch (script[i].kind) {
            case Op::kConnect: node.connect_block(blocks[script[i].block]); break;
            case Op::kDisconnect: node.disconnect_tip(); break;
            case Op::kSnapshot: node.snapshot(); break;
            }
        }
    };

    // Dry run: learn every record boundary in the write stream.
    std::vector<std::uint64_t> boundaries;
    {
        TempDir dir;
        storage::CrashInjector probe;
        PersistentNode node(dir.path, genesis, make_options(&probe));
        run_script(node, 0);
        ASSERT_EQ(node.tip(), ref_states.back().first);
        boundaries = probe.write_boundaries();
        // Flushes and compactions (multi-record run files) plus the prune
        // rewrite must all have contributed boundaries beyond the per-op
        // block/undo/WAL records.
        ASSERT_GT(boundaries.size(), script.size() * 4);
    }

    for (const std::uint64_t boundary : boundaries) {
        for (const std::uint64_t budget : {boundary, boundary - 1}) {
            TempDir dir;
            storage::CrashInjector injector;
            injector.arm(budget);
            try {
                // The constructor writes too (the engine's genesis commit), so
                // it sits inside the crash scope with the workload.
                PersistentNode node(dir.path, genesis, make_options(&injector));
                run_script(node, 0);
            } catch (const storage::CrashError&) {
                // killed at (or one byte short of) the boundary
            }

            // Reopen without fault injection: recovery must land on a state
            // the reference passed through.
            PersistentNode node(dir.path, genesis, make_options(nullptr));
            const Bytes recovered_utxo = scaling::serialize_utxo(node.utxo());
            bool matched = false;
            std::size_t resume_op = 0;
            for (std::size_t i = 0; i < ref_states.size(); ++i) {
                if (ref_states[i].first == node.tip() &&
                    ref_states[i].second == recovered_utxo) {
                    matched = true;
                    resume_op = i;
                    break;
                }
            }
            ASSERT_TRUE(matched) << "budget " << budget
                                 << ": recovered state matches no reference state";

            // Finish the workload from the recovered state: the final tip and
            // state digest must equal the reference's, byte for byte.
            run_script(node, resume_op);
            EXPECT_EQ(node.tip(), ref_states.back().first) << "budget " << budget;
            EXPECT_EQ(scaling::serialize_utxo(node.utxo()), ref_states.back().second)
                << "budget " << budget;
        }
    }
}

} // namespace
