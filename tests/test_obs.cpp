// Observability layer tests: histogram bucket boundaries and quantile
// estimation, labeled-family lookup, concurrent counter hammering (run under
// TSan in CI), Chrome-trace JSON well-formedness, tx-lifecycle stage tracking
// through reorgs, the ReorgMonitor-vs-full-walk equivalence on a reorg-heavy
// chain, and the pure-observer determinism contract (identical simulation
// outcomes with observability on or off).
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <fstream>
#include <sstream>

#include "app/analytics.hpp"
#include "consensus/nakamoto.hpp"
#include "consensus/pbft.hpp"
#include "crypto/sha256.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/txlifecycle.hpp"

using namespace dlt;
using namespace dlt::obs;

namespace {

Hash256 make_txid(std::uint8_t tag) {
    Hash256 h{};
    h[0] = tag;
    h[31] = 0x77;
    return h;
}

// Minimal structural JSON validator: verifies balanced {}/[] nesting outside
// strings and correct escape handling inside them. Catches the classes of
// emitter bugs (trailing commas aside) a viewer would choke on; CI's jq pass
// does full grammar validation.
bool json_structure_ok(const std::string& text) {
    std::vector<char> stack;
    bool in_string = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\') {
                if (i + 1 >= text.size()) return false;
                ++i; // escaped character, don't interpret
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false; // raw control character inside a string
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        switch (c) {
            case '"': in_string = true; break;
            case '{': stack.push_back('}'); break;
            case '[': stack.push_back(']'); break;
            case '}':
            case ']':
                if (stack.empty() || stack.back() != c) return false;
                stack.pop_back();
                break;
            default: break;
        }
    }
    return !in_string && stack.empty();
}

} // namespace

// --- Counter / Gauge ---------------------------------------------------------

TEST(ObsCounter, IncrementValueReset) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, ConcurrentHammerIsExact) {
    // 8 threads x 100k relaxed increments must lose nothing (and be clean
    // under TSan, which CI runs this binary with).
    Counter c;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 100'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
        });
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGauge, SetAndAdd) {
    Gauge g;
    g.set(10.5);
    g.add(-0.5);
    EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

// --- Histogram ---------------------------------------------------------------

TEST(ObsHistogram, BucketBoundariesAreGeometric) {
    Histogram h({/*first_bound=*/1.0, /*growth=*/2.0, /*bucket_count=*/4});
    const std::vector<double> expected{1.0, 2.0, 4.0, 8.0};
    EXPECT_EQ(h.bucket_bounds(), expected);

    // Bucket i spans (bound(i-1), bound(i)]: boundary values land in the
    // lower bucket, anything past the last bound lands in overflow.
    h.record(0.5); // bucket 0
    h.record(1.0); // bucket 0 (inclusive upper bound)
    h.record(1.5); // bucket 1
    h.record(2.0); // bucket 1
    h.record(4.1); // bucket 3
    h.record(8.0); // bucket 3
    h.record(9.0); // overflow
    const std::vector<std::uint64_t> counts{2, 2, 0, 2, 1};
    EXPECT_EQ(h.bucket_counts(), counts);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.1 + 8.0 + 9.0);
}

TEST(ObsHistogram, QuantilesInterpolateWithinBuckets) {
    Histogram h({1.0, 2.0, 10});
    for (int i = 0; i < 100; ++i) h.record(3.0); // all in bucket (2, 4]
    const double p50 = h.quantile(0.5);
    EXPECT_GT(p50, 2.0);
    EXPECT_LE(p50, 4.0);
    // Quantiles are monotone in q.
    EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
    EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
}

TEST(ObsHistogram, QuantileEdgeCases) {
    Histogram empty({1.0, 2.0, 4});
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

    // Overflow-bucket samples report the last finite bound rather than
    // extrapolating past what the layout can resolve.
    Histogram h({1.0, 2.0, 4}); // last bound 8
    for (int i = 0; i < 10; ++i) h.record(1e6);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 8.0);
}

TEST(ObsHistogram, ResetClearsEverything) {
    Histogram h({1.0, 2.0, 4});
    h.record(1.0);
    h.record(100.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    for (const auto c : h.bucket_counts()) EXPECT_EQ(c, 0u);
}

TEST(ObsScopedTimer, RecordsOneSampleOnDestruction) {
    Histogram h;
    { ScopedTimer t(h); }
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GE(h.sum(), 0.0);
}

// --- Families ----------------------------------------------------------------

TEST(ObsFamily, LookupReturnsStableChildren) {
    CounterFamily family("msgs_total", "by kind", {"kind"});
    Counter& sent = family.with({"sent"});
    Counter& lost = family.with({"lost"});
    EXPECT_NE(&sent, &lost);
    sent.inc(3);
    // Same labels -> same child, values preserved.
    EXPECT_EQ(&family.with({"sent"}), &sent);
    EXPECT_EQ(family.with({"sent"}).value(), 3u);
    EXPECT_EQ(family.size(), 2u);
}

TEST(ObsFamily, VisitIsSortedByLabelValues) {
    CounterFamily family("f", "", {"k"});
    family.with({"zebra"});
    family.with({"apple"});
    family.with({"mango"});
    std::vector<std::string> seen;
    family.visit([&](const LabelValues& values, const Counter&) {
        seen.push_back(values[0]);
    });
    const std::vector<std::string> expected{"apple", "mango", "zebra"};
    EXPECT_EQ(seen, expected);
}

TEST(ObsFamily, ConcurrentWithIsSafe) {
    CounterFamily family("f", "", {"i"});
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&family, t] {
            for (int i = 0; i < 1000; ++i)
                family.with({std::to_string(i % 17)}).inc();
            (void)t;
        });
    for (auto& t : threads) t.join();
    std::uint64_t total = 0;
    family.visit([&](const LabelValues&, const Counter& c) { total += c.value(); });
    EXPECT_EQ(total, 8u * 1000u);
    EXPECT_EQ(family.size(), 17u);
}

TEST(ObsFamily, WithIndexSharesChildrenWithWith) {
    CounterFamily family("node_msgs_total", "by node", {"node"});
    Counter& dense = family.with_index(5);
    dense.inc(4);
    // Both lanes resolve to the same child, in either lookup order.
    EXPECT_EQ(&family.with({"5"}), &dense);
    EXPECT_EQ(&family.with_index(5), &dense);
    Counter& sparse_first = family.with({"12"});
    sparse_first.inc();
    EXPECT_EQ(&family.with_index(12), &sparse_first);
    // Exporters see exactly one child per index, not a dense/sparse pair.
    EXPECT_EQ(family.size(), 2u);
    EXPECT_EQ(family.with_index(5).value(), 4u);
}

TEST(ObsFamily, WithIndexRequiresSingleLabel) {
    CounterFamily two("pair_total", "", {"a", "b"});
    EXPECT_THROW(two.with_index(0), std::logic_error);
    CounterFamily zero("bare_total", "", {});
    EXPECT_THROW(zero.with_index(0), std::logic_error);
}

TEST(ObsFamily, WithIndexGrowsPastInitialSlab) {
    CounterFamily family("shard_total", "", {"shard"});
    // First touch far beyond the 64-slot initial slab, then everything below
    // it: earlier slots must survive the RCU-style slab growth.
    family.with_index(1000).inc(9);
    for (std::size_t i = 0; i < 200; ++i) family.with_index(i).inc();
    EXPECT_EQ(family.with_index(1000).value(), 9u);
    for (std::size_t i = 0; i < 200; ++i)
        EXPECT_EQ(family.with({std::to_string(i)}).value(), 1u) << i;
    EXPECT_EQ(family.size(), 201u);
}

TEST(ObsFamily, ConcurrentWithIndexIsSafe) {
    CounterFamily family("f", "", {"i"});
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&family] {
            // Mix both lanes and force slab growth mid-flight.
            for (int i = 0; i < 1000; ++i) {
                family.with_index(static_cast<std::size_t>(i % 17)).inc();
                if (i % 100 == 0) family.with_index(64 + static_cast<std::size_t>(i)).inc();
            }
        });
    for (auto& t : threads) t.join();
    std::uint64_t dense_total = 0;
    for (std::size_t i = 0; i < 17; ++i) dense_total += family.with_index(i).value();
    EXPECT_EQ(dense_total, 8u * 1000u);
}

// --- Registry ----------------------------------------------------------------

TEST(ObsRegistry, SameNameReturnsSameMetric) {
    MetricsRegistry reg;
    Counter& a = reg.counter("x_total", "help");
    Counter& b = reg.counter("x_total");
    EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, KindMismatchThrows) {
    MetricsRegistry reg;
    reg.counter("x_total");
    EXPECT_THROW(reg.gauge("x_total"), std::logic_error);
    EXPECT_THROW(reg.histogram("x_total"), std::logic_error);
    EXPECT_THROW(reg.counter_family("x_total", "", {"k"}), std::logic_error);
}

TEST(ObsRegistry, ResetZeroesButKeepsNames) {
    MetricsRegistry reg;
    reg.counter("a_total").inc(7);
    reg.gauge("b").set(3.5);
    reg.histogram("c_seconds").record(0.1);
    reg.counter_family("d_total", "", {"k"}).with({"x"}).inc(2);
    reg.reset();
    EXPECT_EQ(reg.counter("a_total").value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("b").value(), 0.0);
    EXPECT_EQ(reg.histogram("c_seconds").count(), 0u);
    EXPECT_EQ(reg.counter_family("d_total", "", {"k"}).with({"x"}).value(), 0u);
}

TEST(ObsRegistry, ExportsAreDeterministicAndWellFormed) {
    MetricsRegistry reg;
    reg.counter("zz_total", "last").inc(5);
    reg.counter("aa_total", "first").inc(1);
    reg.histogram("lat_seconds", "latency").record(0.25);
    reg.counter_family("labeled_total", "by \"kind\"", {"kind"})
        .with({"needs\\escaping\n"})
        .inc(9);

    const std::string text = reg.prometheus_text();
    // Sorted by name: aa before labeled before lat before zz.
    EXPECT_LT(text.find("aa_total"), text.find("labeled_total"));
    EXPECT_LT(text.find("labeled_total"), text.find("lat_seconds"));
    EXPECT_LT(text.find("lat_seconds"), text.find("zz_total"));
    EXPECT_NE(text.find("# HELP aa_total first"), std::string::npos);

    const std::string json = reg.json_snapshot();
    EXPECT_TRUE(json_structure_ok(json)) << json;
    // Two snapshots of unchanged state are byte-identical.
    EXPECT_EQ(json, reg.json_snapshot());
    EXPECT_EQ(text, reg.prometheus_text());
}

// --- JSON writer -------------------------------------------------------------

TEST(ObsJsonWriter, EscapesAndOverwritesInPlace) {
    JsonObjectWriter w;
    w.field_string("id", "E\"9\\9\n");
    w.field_number("v", 1.5);
    w.field_number("v", 2.5); // overwrite keeps position
    w.field_uint("n", 7);
    const std::string out = w.str();
    EXPECT_TRUE(json_structure_ok(out)) << out;
    EXPECT_NE(out.find("\"E\\\"9\\\\9\\n\""), std::string::npos);
    EXPECT_LT(out.find("\"v\""), out.find("\"n\""));
    EXPECT_NE(out.find("2.5"), std::string::npos);
    EXPECT_EQ(out.find("1.5"), std::string::npos);
}

TEST(ObsJsonWriter, NonFiniteNumbersBecomeZero) {
    EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
    EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
    EXPECT_EQ(json_number(0.5), "0.5");
}

// --- Tracer ------------------------------------------------------------------

TEST(ObsTracer, DisabledEmitsNothing) {
    Tracer tracer;
    tracer.instant("e", "cat", 1.0, 0);
    EXPECT_EQ(tracer.size(), 0u);
}

TEST(ObsTracer, BoundedBufferCountsDrops) {
    Tracer tracer(/*capacity=*/3);
    tracer.set_enabled(true);
    for (int i = 0; i < 5; ++i) tracer.instant("e", "cat", i, 0);
    EXPECT_EQ(tracer.size(), 3u);
    EXPECT_EQ(tracer.dropped(), 2u);
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsTracer, ChromeTraceJsonIsWellFormed) {
    Tracer tracer;
    tracer.set_enabled(true);
    tracer.instant("block.mined", "consensus", 12.5, 3,
                   {{"height", trace_arg(std::uint64_t{42})},
                    {"note", trace_arg(std::string("quotes \" and \\ and \n"))}});
    tracer.complete("validate", "ledger", 1.0, 0.25, 1,
                    {{"txs", trace_arg(7.0)}});
    tracer.counter("mempool", 2.0, 31.0);

    const std::string json = tracer.chrome_trace_json();
    EXPECT_TRUE(json_structure_ok(json)) << json;
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [", 0), 0u);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    // Virtual seconds become microseconds ("%.6g" formatting).
    EXPECT_NE(json.find("\"ts\": 1.25e+07"), std::string::npos);

    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].tid, 3u);
    EXPECT_DOUBLE_EQ(events[1].dur_us, 0.25 * 1e6);
}

// --- Streaming mode ----------------------------------------------------------

TEST(ObsTracerStreaming, ChunksMatchBufferedOutputByteForByte) {
    const std::string path = testing::TempDir() + "obs_stream_test.json";

    // Stream through a tracer whose buffer capacity is smaller than the event
    // count: streaming suspends the cap, so nothing may drop.
    Tracer streamer(/*capacity=*/3);
    ASSERT_TRUE(streamer.open_stream(path, /*chunk_events=*/2));
    EXPECT_TRUE(streamer.streaming());
    EXPECT_FALSE(streamer.open_stream(path)); // one stream at a time
    streamer.set_enabled(true);

    Tracer buffered;
    buffered.set_enabled(true);
    for (int i = 0; i < 7; ++i) {
        streamer.instant("e", "cat", i, static_cast<std::uint32_t>(i),
                         {{"i", trace_arg(static_cast<std::uint64_t>(i))}});
        buffered.instant("e", "cat", i, static_cast<std::uint32_t>(i),
                         {{"i", trace_arg(static_cast<std::uint64_t>(i))}});
    }

    EXPECT_EQ(streamer.emitted(), 7u);
    EXPECT_EQ(streamer.dropped(), 0u);  // cap suspended while streaming
    EXPECT_LE(streamer.size(), 2u);     // memory bounded by the chunk size
    ASSERT_TRUE(streamer.close_stream());
    EXPECT_FALSE(streamer.streaming());
    EXPECT_TRUE(streamer.close_stream()); // idempotent

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::stringstream contents;
    contents << in.rdbuf();
    EXPECT_TRUE(json_structure_ok(contents.str())) << contents.str();
    // The incremental writer and the one-shot serializer are the same code
    // path; the artifacts must be byte-identical.
    EXPECT_EQ(contents.str(), buffered.chrome_trace_json());

    // With the stream closed the bounded-buffer contract is back in force.
    streamer.clear();
    for (int i = 0; i < 5; ++i) streamer.instant("e", "cat", i, 0);
    EXPECT_EQ(streamer.size(), 3u);
    EXPECT_EQ(streamer.dropped(), 2u);
    std::remove(path.c_str());
}

// --- Tx lifecycle ------------------------------------------------------------

TEST(ObsTxLifecycle, StagesProgressToFinality) {
    TxLifecycleTracker tracker(/*finality_depth=*/2);
    const Hash256 tx = make_txid(1);
    tracker.on_submitted(tx, 1.0, /*origin=*/0);
    tracker.on_first_seen(tx, /*node=*/3, 1.5);
    tracker.on_mempool_accepted(tx, 3, 1.6);
    tracker.on_block_connected(/*height=*/5, {tx}, 10.0);
    tracker.on_tip_height(5, 10.0); // 1 confirmation: not final yet
    EXPECT_EQ(tracker.finalized(), 0u);
    tracker.on_tip_height(6, 20.0); // 2 confirmations: final
    EXPECT_EQ(tracker.finalized(), 1u);

    const TxRecord* rec = tracker.find(tx);
    ASSERT_NE(rec, nullptr);
    EXPECT_DOUBLE_EQ(*rec->submitted, 1.0);
    EXPECT_DOUBLE_EQ(*rec->first_seen, 1.5);
    EXPECT_DOUBLE_EQ(*rec->mempool, 1.6);
    EXPECT_DOUBLE_EQ(*rec->included, 10.0);
    EXPECT_DOUBLE_EQ(*rec->final_at, 20.0);

    const auto lat = tracker.latencies(TxStage::kSubmitted, TxStage::kFinal);
    ASSERT_EQ(lat.size(), 1u);
    EXPECT_DOUBLE_EQ(lat[0], 19.0);
}

TEST(ObsTxLifecycle, UntrackedAndRepeatedStampsAreIgnored) {
    TxLifecycleTracker tracker(2);
    const Hash256 tx = make_txid(2);
    tracker.on_first_seen(tx, 1, 5.0); // before submit: not tracked
    EXPECT_EQ(tracker.tracked(), 0u);
    tracker.on_submitted(tx, 1.0);
    tracker.on_first_seen(tx, 1, 2.0);
    tracker.on_first_seen(tx, 2, 3.0); // later sighting doesn't overwrite
    EXPECT_DOUBLE_EQ(*tracker.find(tx)->first_seen, 2.0);
}

TEST(ObsTxLifecycle, ReorgRevokesInclusionButNeverFinality) {
    TxLifecycleTracker tracker(/*finality_depth=*/3);
    const Hash256 tx = make_txid(3);
    tracker.on_submitted(tx, 0.0);
    tracker.on_block_connected(4, {tx}, 10.0);
    tracker.on_block_disconnected(4, {tx}); // reorg before finality
    EXPECT_FALSE(tracker.find(tx)->included.has_value());
    tracker.on_tip_height(10, 11.0); // deep tip, but tx not included anymore
    EXPECT_EQ(tracker.finalized(), 0u);

    tracker.on_block_connected(6, {tx}, 12.0); // re-included on the new branch
    tracker.on_tip_height(8, 13.0);            // 3 confirmations at height 8
    EXPECT_EQ(tracker.finalized(), 1u);

    // Finality is never revoked, even if the block disconnects afterwards.
    tracker.on_block_disconnected(6, {tx});
    EXPECT_TRUE(tracker.find(tx)->final_at.has_value());
    EXPECT_TRUE(tracker.find(tx)->included.has_value());
}

// --- ReorgMonitor vs full-walk oracle ---------------------------------------

TEST(ObsReorgMonitor, MatchesFullWalkOnReorgHeavyChain) {
    // E1-shaped run tuned for contention: a short block interval relative to
    // gossip latency makes forks and multi-block reorgs common. The
    // incremental monitor (fed only insert/reorg events from peer 0) must
    // report the exact branch statistics of a full DAG walk.
    consensus::NakamotoParams params;
    params.node_count = 8;
    params.block_interval = 1.0;    // seconds, on par with link latency...
    params.link.latency_mean = 0.8; // ...so peers mine on stale tips routinely
    params.link.latency_jitter = 0.5;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    consensus::NakamotoNetwork net(params, /*seed=*/424242);

    app::ReorgMonitor monitor(net.chain_of(0).genesis_hash());
    net.events().on_block_inserted = [&](const ledger::Block& b, SimTime at) {
        monitor.on_block_inserted(b, at);
    };
    net.events().on_reorg = [&](const std::vector<Hash256>& disconnected,
                                const std::vector<Hash256>& connected,
                                SimTime at) {
        monitor.on_reorg(disconnected, connected, at);
    };
    net.start();
    net.run_for(1200.0);
    net.run_for(30.0); // settle in-flight gossip

    const app::BranchStats walked =
        app::branch_stats_full_walk(net.chain_of(0), net.tip_of(0));
    const app::BranchStats incremental = monitor.branch_stats();
    EXPECT_EQ(incremental, walked);

    // The run must actually have exercised reorgs, or this test proves nothing.
    EXPECT_GT(monitor.reorg_count(), 10u);
    EXPECT_GT(walked.stale_blocks, 0u);
    EXPECT_GE(monitor.max_reorg_depth(), 2u);
    EXPECT_EQ(monitor.blocks_disconnected(),
              [&] {
                  std::uint64_t sum = 0;
                  for (const auto& [depth, n] : monitor.reorg_depths())
                      sum += depth * n;
                  return sum;
              }());
}

// --- Determinism contract ----------------------------------------------------

// --- PBFT request lifecycle ---------------------------------------------------

TEST(ObsPbftLifecycle, RequestsProgressSubmitToExecute) {
    consensus::PbftConfig config;
    config.f = 1; // n = 4
    config.batch_size = 4;
    consensus::PbftCluster cluster(config, /*seed=*/4242);

    std::vector<Bytes> requests;
    for (int i = 0; i < 6; ++i)
        requests.push_back(to_bytes("pbft-req-" + std::to_string(i)));
    for (const Bytes& req : requests) cluster.submit(req);
    cluster.run_for(30.0);

    ASSERT_EQ(cluster.executed_requests(0), requests.size());
    const auto& lifecycle = cluster.lifecycle();
    EXPECT_EQ(lifecycle.tracked(), requests.size());
    EXPECT_EQ(lifecycle.finalized(), requests.size());

    for (const Bytes& req : requests) {
        const auto* rec =
            lifecycle.find(crypto::tagged_hash("dlt/pbft-req", req));
        ASSERT_NE(rec, nullptr);
        // submit → pre-prepare (first seen) → commit (included at the batch
        // sequence) → execute (final); the mempool stage has no PBFT analogue.
        ASSERT_TRUE(rec->submitted.has_value());
        ASSERT_TRUE(rec->first_seen.has_value());
        ASSERT_TRUE(rec->included.has_value());
        ASSERT_TRUE(rec->final_at.has_value());
        EXPECT_FALSE(rec->mempool.has_value());
        EXPECT_LE(*rec->submitted, *rec->first_seen);
        EXPECT_LE(*rec->first_seen, *rec->included);
        EXPECT_LE(*rec->included, *rec->final_at);
        EXPECT_GE(rec->inclusion_height, 1u); // PBFT sequence number
    }

    // Execution happens at or after commit, so every submit→final latency is
    // bounded below by that request's submit→included (commit) latency.
    const auto submit_to_final =
        lifecycle.latencies(TxStage::kSubmitted, TxStage::kFinal);
    const auto submit_to_commit =
        lifecycle.latencies(TxStage::kSubmitted, TxStage::kIncluded);
    ASSERT_EQ(submit_to_final.size(), requests.size());
    ASSERT_EQ(submit_to_commit.size(), requests.size());
    for (std::size_t i = 0; i < submit_to_final.size(); ++i) {
        EXPECT_GT(submit_to_final[i], 0.0);
        EXPECT_GE(submit_to_final[i], submit_to_commit[i]);
    }
    EXPECT_TRUE(cluster.mean_commit_latency().has_value());
}

TEST(ObsDeterminism, IdenticalOutcomesWithTracingOnAndOff) {
    // Metrics and traces are pure observers: the same seeded run must reach a
    // byte-identical tip whether the global tracer is recording or not.
    auto run_once = [] {
        consensus::NakamotoParams params;
        params.node_count = 6;
        params.block_interval = 10.0;
        params.validation.sig_mode = ledger::SigCheckMode::kSkip;
        consensus::NakamotoNetwork net(params, /*seed=*/777);
        net.start();
        net.run_for(600.0);
        return std::pair{net.tip_of(0), net.height_of(0)};
    };

    Tracer& tracer = Tracer::global();
    tracer.set_enabled(false);
    const auto off = run_once();
    tracer.clear();
    tracer.set_enabled(true);
    const auto on = run_once();
    tracer.set_enabled(false);

    EXPECT_EQ(off.first, on.first);
    EXPECT_EQ(off.second, on.second);
    EXPECT_GT(tracer.size(), 0u); // tracing actually happened in the "on" run
    tracer.clear();
}
