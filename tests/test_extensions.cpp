// Tests for the extension modules: the SPV light client (§2.2), wallets,
// difficulty retargeting in the Nakamoto network (§2.7), the ABCI replicated
// application interface (§5.2), the off-chain data store (§4.5), and atomic
// cross-chain swaps (§5.2).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "consensus/nakamoto.hpp"
#include "core/abci.hpp"
#include "crypto/sha256.hpp"
#include "datastruct/merkle.hpp"
#include "ledger/difficulty.hpp"
#include "ledger/offchain.hpp"
#include "ledger/spv.hpp"
#include "ledger/wallet.hpp"
#include "scaling/atomicswap.hpp"

namespace {

using namespace dlt;
using namespace dlt::ledger;

// --- SPV --------------------------------------------------------------------------

struct SpvFixture {
    consensus::NakamotoParams params;
    std::unique_ptr<consensus::NakamotoNetwork> net;

    SpvFixture() {
        params.node_count = 4;
        params.block_interval = 20.0;
        params.validation.sig_mode = SigCheckMode::kSkip;
        net = std::make_unique<consensus::NakamotoNetwork>(params, 61);
        net->start();
        net->run_for(20.0 * 40);
    }
};

TEST(Spv, FollowsHeaderChain) {
    SpvFixture fx;
    const auto& chain = fx.net->chain_of(0);
    const auto path = chain.path_from_genesis(fx.net->tip_of(0));

    SpvClient client(chain.find(path[0])->block.header);
    for (std::size_t i = 1; i < path.size(); ++i)
        EXPECT_TRUE(client.add_header(chain.find(path[i])->block.header));
    EXPECT_EQ(client.best_height(), path.size() - 1);
    EXPECT_EQ(client.best_hash(), fx.net->tip_of(0));
}

TEST(Spv, RejectsHeaderWithUnknownParent) {
    SpvFixture fx;
    const auto& chain = fx.net->chain_of(0);
    const auto path = chain.path_from_genesis(fx.net->tip_of(0));
    SpvClient client(chain.find(path[0])->block.header);
    // Skipping ahead (missing intermediate headers) returns false.
    EXPECT_FALSE(client.add_header(chain.find(path[5])->block.header));
}

TEST(Spv, VerifiesPaymentWithMerkleProof) {
    SpvFixture fx;
    // Submit a record tx and let it confirm.
    Transaction tx;
    tx.kind = TxKind::kRecord;
    tx.nonce = 7;
    tx.data = to_bytes("pay-me");
    tx.declared_fee = 50;
    const Hash256 txid = tx.txid();
    fx.net->submit_transaction(tx, 1);
    fx.net->run_for(20.0 * 20);

    const auto& chain = fx.net->chain_of(0);
    const auto path = chain.path_from_genesis(fx.net->tip_of(0));
    SpvClient client(chain.find(path[0])->block.header);
    for (std::size_t i = 1; i < path.size(); ++i)
        client.add_header(chain.find(path[i])->block.header);

    // Find the confirming block and build the full node's response.
    SpvPayment payment;
    bool found = false;
    for (const auto& hash : path) {
        const auto& block = chain.find(hash)->block;
        const auto txids = block.txids();
        for (std::size_t i = 0; i < txids.size(); ++i) {
            if (txids[i] == txid) {
                const datastruct::MerkleTree tree(txids);
                payment = SpvPayment{txid, hash, tree.prove(i)};
                found = true;
            }
        }
    }
    ASSERT_TRUE(found) << "transaction did not confirm";
    EXPECT_TRUE(client.verify_payment(payment, 1));

    // A tampered proof fails.
    SpvPayment bad = payment;
    bad.proof.steps[0].sibling[0] ^= 1;
    EXPECT_FALSE(client.verify_payment(bad, 1));

    // A proof against an unknown block fails.
    SpvPayment unknown = payment;
    unknown.block_hash = crypto::sha256(to_bytes("nope"));
    EXPECT_FALSE(client.verify_payment(unknown, 1));
}

TEST(Spv, StorageIsTinyComparedToFullBlocks) {
    SpvFixture fx;
    const auto& chain = fx.net->chain_of(0);
    const auto path = chain.path_from_genesis(fx.net->tip_of(0));
    SpvClient client(chain.find(path[0])->block.header);
    std::size_t full_bytes = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
        client.add_header(chain.find(path[i])->block.header);
        full_bytes += chain.find(path[i])->block.serialized_size();
    }
    EXPECT_LT(client.storage_bytes(), full_bytes);
}

TEST(Spv, ConfirmationDepthChecksBestChain) {
    SpvFixture fx;
    const auto& chain = fx.net->chain_of(0);
    const auto path = chain.path_from_genesis(fx.net->tip_of(0));
    SpvClient client(chain.find(path[0])->block.header);
    for (std::size_t i = 1; i < path.size(); ++i)
        client.add_header(chain.find(path[i])->block.header);

    const Hash256 deep = path[path.size() / 2];
    EXPECT_TRUE(client.confirmed(deep, 1));
    EXPECT_TRUE(client.confirmed(deep, path.size() / 2 - 1));
    EXPECT_FALSE(client.confirmed(deep, path.size() + 10));
}

// --- Wallet ---------------------------------------------------------------------------

TEST(Wallet, TracksCoinsAcrossBlocks) {
    Wallet wallet("w1");
    const auto addr = wallet.fresh_address();

    Block b1;
    b1.header.height = 1;
    b1.txs.push_back(make_coinbase(addr, 50 * kCoin, 1));
    wallet.process_block(b1);
    EXPECT_EQ(wallet.balance(), 50 * kCoin);
    EXPECT_EQ(wallet.coin_count(), 1u);
}

TEST(Wallet, BuildsValidSignedPayment) {
    Wallet wallet("w2");
    const auto addr = wallet.fresh_address();
    Block b1;
    b1.header.height = 1;
    b1.txs.push_back(make_coinbase(addr, 50 * kCoin, 1));
    wallet.process_block(b1);

    const auto to = crypto::PrivateKey::from_seed("payee").address();
    const auto tx = wallet.pay(to, 20 * kCoin, 1000);
    ASSERT_TRUE(tx.has_value());
    EXPECT_TRUE(tx->verify_signatures());
    // amount + change = input - fee
    Amount out_total = 0;
    for (const auto& out : tx->outputs) out_total += out.value;
    EXPECT_EQ(out_total, 50 * kCoin - 1000);
    EXPECT_EQ(tx->outputs[0].recipient, to);
    EXPECT_EQ(tx->outputs[0].value, 20 * kCoin);
}

TEST(Wallet, RefusesOverdraft) {
    Wallet wallet("w3");
    const auto addr = wallet.fresh_address();
    Block b1;
    b1.header.height = 1;
    b1.txs.push_back(make_coinbase(addr, kCoin, 1));
    wallet.process_block(b1);
    EXPECT_FALSE(wallet.pay(crypto::PrivateKey::from_seed("x").address(), 2 * kCoin, 0)
                     .has_value());
}

TEST(Wallet, PendingCoinsAreNotDoubleSpent) {
    Wallet wallet("w4");
    const auto addr = wallet.fresh_address();
    Block b1;
    b1.header.height = 1;
    b1.txs.push_back(make_coinbase(addr, 10 * kCoin, 1));
    wallet.process_block(b1);

    const auto to = crypto::PrivateKey::from_seed("y").address();
    ASSERT_TRUE(wallet.pay(to, 8 * kCoin, 0).has_value());
    // The single coin is now pending: a second spend must fail even though no
    // block confirmed the first yet.
    EXPECT_FALSE(wallet.pay(to, 8 * kCoin, 0).has_value());
}

TEST(Wallet, MultiKeyCoinSelectionSignsEachInput) {
    Wallet wallet("w5");
    const auto a1 = wallet.fresh_address();
    const auto a2 = wallet.fresh_address();
    Block b1;
    b1.header.height = 1;
    b1.txs.push_back(make_coinbase(a1, 3 * kCoin, 1));
    Block b2;
    b2.header.height = 2;
    b2.txs.push_back(make_coinbase(a2, 3 * kCoin, 2));
    wallet.process_block(b1);
    wallet.process_block(b2);

    // Needs both coins -> two inputs under two different keys.
    const auto tx = wallet.pay(crypto::PrivateKey::from_seed("z").address(),
                               5 * kCoin, 1000);
    ASSERT_TRUE(tx.has_value());
    EXPECT_EQ(tx->inputs.size(), 2u);
    EXPECT_TRUE(tx->verify_signatures());
    EXPECT_NE(tx->inputs[0].pubkey, tx->inputs[1].pubkey);
}

TEST(Wallet, SpendsAreRemovedOnConfirmation) {
    Wallet wallet("w6");
    const auto addr = wallet.fresh_address();
    Block b1;
    b1.header.height = 1;
    b1.txs.push_back(make_coinbase(addr, 10 * kCoin, 1));
    wallet.process_block(b1);

    const auto to = crypto::PrivateKey::from_seed("q").address();
    const auto tx = wallet.pay(to, 4 * kCoin, 0);
    ASSERT_TRUE(tx.has_value());

    Block b2;
    b2.header.height = 2;
    b2.txs.push_back(make_coinbase(addr, 0, 2));
    b2.txs.push_back(*tx);
    wallet.process_block(b2);
    // Change output (6 coins) is back, original coin gone.
    EXPECT_EQ(wallet.balance(), 6 * kCoin);
}

// --- Difficulty retargeting in the network (E2 ablation) -----------------------------------

TEST(Retargeting, HoldsIntervalUnderHashPowerGrowth) {
    consensus::NakamotoParams params;
    params.node_count = 4;
    params.block_interval = 60.0;
    params.validation.sig_mode = SigCheckMode::kSkip;
    params.enable_retargeting = true;
    params.retarget.interval_blocks = 8;
    params.retarget.target_spacing = 60.0;
    consensus::NakamotoNetwork net(params, 62);
    net.set_network_hashrate(8.0); // 8x power from the start
    net.start();
    net.run_for(60.0 * 120);

    // Without retargeting the interval would sit near 60/8 = 7.5 s; with it,
    // difficulty climbs until the interval recovers toward 60 s.
    const auto interval = net.observed_interval(24);
    ASSERT_TRUE(interval.has_value());
    EXPECT_GT(*interval, 30.0);
}

TEST(Retargeting, WithoutItHashPowerSpeedsBlocks) {
    consensus::NakamotoParams params;
    params.node_count = 4;
    params.block_interval = 60.0;
    params.validation.sig_mode = SigCheckMode::kSkip;
    params.enable_retargeting = false;
    consensus::NakamotoNetwork net(params, 63);
    net.set_network_hashrate(8.0);
    net.start();
    net.run_for(60.0 * 40);
    const auto interval = net.observed_interval(24);
    ASSERT_TRUE(interval.has_value());
    EXPECT_LT(*interval, 20.0); // ~7.5 s expected
}

// --- ABCI ------------------------------------------------------------------------------

TEST(Abci, KvStoreAppliesAndQueries) {
    core::KvStoreApp app;
    app.begin_block(1);
    EXPECT_TRUE(app.deliver_tx(to_bytes("set color blue")).ok);
    EXPECT_TRUE(app.deliver_tx(to_bytes("set shape round")).ok);
    EXPECT_FALSE(app.deliver_tx(to_bytes("nonsense")).ok);
    app.end_block(1);
    EXPECT_EQ(app.query(to_bytes("color")), to_bytes("blue"));
    EXPECT_TRUE(app.query(to_bytes("missing")).empty());
}

TEST(Abci, AppHashIsDeterministic) {
    core::KvStoreApp a, b;
    for (auto* app : {&a, &b}) {
        app->begin_block(1);
        app->deliver_tx(to_bytes("set k1 v1"));
        app->deliver_tx(to_bytes("set k2 v2"));
    }
    EXPECT_EQ(a.end_block(1), b.end_block(1));
    a.begin_block(2);
    a.deliver_tx(to_bytes("del k1"));
    EXPECT_NE(a.end_block(2), b.end_block(1));
}

TEST(Abci, ReplicatedKvStoreStaysConsistent) {
    consensus::PbftConfig config;
    config.f = 1;
    config.batch_size = 5;
    config.batch_interval = 0.1;
    core::ReplicatedApp app(config, [] { return std::make_unique<core::KvStoreApp>(); },
                            64);
    for (int i = 0; i < 20; ++i)
        app.submit(to_bytes("set key" + std::to_string(i) + " value" +
                            std::to_string(i)));
    app.run_for(20.0);

    EXPECT_TRUE(app.app_hashes_consistent());
    EXPECT_GT(app.applied_blocks(0), 0u);
    for (std::uint32_t r = 0; r < 4; ++r) {
        EXPECT_EQ(app.applied_blocks(r), app.applied_blocks(0));
        EXPECT_EQ(app.query(r, to_bytes("key7")), to_bytes("value7")) << r;
    }
}

TEST(Abci, SurvivesCrashedBackup) {
    consensus::PbftConfig config;
    config.f = 1;
    config.batch_size = 5;
    config.batch_interval = 0.1;
    core::ReplicatedApp app(config, [] { return std::make_unique<core::KvStoreApp>(); },
                            65);
    app.cluster().set_fault(3, consensus::PbftFault::kCrashed);
    for (int i = 0; i < 10; ++i) app.submit(to_bytes("set k" + std::to_string(i) + " v"));
    app.run_for(20.0);
    EXPECT_TRUE(app.app_hashes_consistent());
    EXPECT_EQ(app.query(0, to_bytes("k3")), to_bytes("v"));
}

// --- Off-chain store ------------------------------------------------------------------

TEST(Offchain, PutGetVerified) {
    OffchainStore store;
    const Bytes payload = to_bytes("a very large sensor telemetry dump");
    const auto ref = store.put(payload);
    const auto back = store.get_verified(ref);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
}

TEST(Offchain, SubstitutedPayloadRejected) {
    OffchainStore store;
    const auto ref = store.put(to_bytes("original"));
    OffchainRef forged = ref;
    forged.digest[0] ^= 1; // claim a different digest
    EXPECT_FALSE(store.get_verified(forged).has_value());
}

TEST(Offchain, DataLossIsDetectableNotSilent) {
    // §4.5's trade-off: the digest survives on-chain, the data may not.
    OffchainStore store;
    const auto ref = store.put(to_bytes("ephemeral"));
    EXPECT_TRUE(store.forget(ref));
    EXPECT_FALSE(store.get_verified(ref).has_value()); // gone, and we know it
    EXPECT_FALSE(store.forget(ref));
}

TEST(Offchain, SavingsScaleWithPayloadSize) {
    OffchainStore store;
    store.put(Bytes(10'000, 0xAA));
    store.put(Bytes(90'000, 0xBB));
    EXPECT_GT(store.bytes_saved_on_chain(), 99'000);
}

// --- Atomic swaps ----------------------------------------------------------------------

struct SwapFixture {
    scaling::HtlcChain chain_a{"chain-A"};
    scaling::HtlcChain chain_b{"chain-B"};
    crypto::Address alice = crypto::PrivateKey::from_seed("swap/alice").address();
    crypto::Address bob = crypto::PrivateKey::from_seed("swap/bob").address();

    SwapFixture() {
        chain_a.credit(alice, 100);
        chain_b.credit(bob, 2000);
    }
};

TEST(AtomicSwap, HappyPathSwapsBothSides) {
    SwapFixture fx;
    const auto outcome = scaling::execute_swap(fx.chain_a, fx.chain_b, fx.alice,
                                               fx.bob, 100, 2000,
                                               to_bytes("alice-secret"), 100.0);
    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(fx.chain_a.balance_of(fx.bob), 100);
    EXPECT_EQ(fx.chain_b.balance_of(fx.alice), 2000);
    EXPECT_EQ(fx.chain_a.balance_of(fx.alice), 0);
    EXPECT_EQ(fx.chain_b.balance_of(fx.bob), 0);
}

TEST(AtomicSwap, WrongPreimageCannotClaim) {
    SwapFixture fx;
    const auto hashlock = scaling::swap_hashlock(to_bytes("real"));
    const auto id = fx.chain_a.lock(fx.alice, fx.bob, 50, hashlock, 100.0);
    EXPECT_THROW(fx.chain_a.claim(id, to_bytes("fake")), ValidationError);
    EXPECT_EQ(fx.chain_a.balance_of(fx.bob), 0);
}

TEST(AtomicSwap, RefundOnlyAfterTimelock) {
    SwapFixture fx;
    const auto hashlock = scaling::swap_hashlock(to_bytes("s"));
    const auto id = fx.chain_a.lock(fx.alice, fx.bob, 50, hashlock, 100.0);
    EXPECT_THROW(fx.chain_a.refund(id), ValidationError); // too early
    fx.chain_a.advance_time(101.0);
    fx.chain_a.refund(id);
    EXPECT_EQ(fx.chain_a.balance_of(fx.alice), 100); // funds restored
    // Claim after refund impossible.
    EXPECT_THROW(fx.chain_a.claim(id, to_bytes("s")), ValidationError);
}

TEST(AtomicSwap, ClaimWindowClosesAtTimelock) {
    SwapFixture fx;
    const auto hashlock = scaling::swap_hashlock(to_bytes("late"));
    const auto id = fx.chain_a.lock(fx.alice, fx.bob, 50, hashlock, 100.0);
    fx.chain_a.advance_time(150.0);
    EXPECT_THROW(fx.chain_a.claim(id, to_bytes("late")), ValidationError);
    fx.chain_a.refund(id); // the sender recovers instead
    EXPECT_EQ(fx.chain_a.balance_of(fx.alice), 100);
}

TEST(AtomicSwap, AbortedSwapRefundsBothSides) {
    // Bob locks but Alice never claims (loses interest): both sides refund
    // after their timelocks — atomicity holds in the negative direction too.
    SwapFixture fx;
    const Bytes secret = to_bytes("never-revealed");
    const auto hashlock = scaling::swap_hashlock(secret);
    const auto a_id = fx.chain_a.lock(fx.alice, fx.bob, 100, hashlock, 200.0);
    const auto b_id = fx.chain_b.lock(fx.bob, fx.alice, 2000, hashlock, 100.0);

    fx.chain_b.advance_time(101.0);
    fx.chain_b.refund(b_id);
    fx.chain_a.advance_time(201.0);
    fx.chain_a.refund(a_id);

    EXPECT_EQ(fx.chain_a.balance_of(fx.alice), 100);
    EXPECT_EQ(fx.chain_b.balance_of(fx.bob), 2000);
}

TEST(AtomicSwap, PreimageIsPublicAfterClaim) {
    SwapFixture fx;
    const Bytes secret = to_bytes("watch-me");
    const auto hashlock = scaling::swap_hashlock(secret);
    const auto id = fx.chain_b.lock(fx.bob, fx.alice, 10, hashlock, 100.0);
    EXPECT_FALSE(fx.chain_b.revealed_preimage(id).has_value());
    fx.chain_b.claim(id, secret);
    const auto revealed = fx.chain_b.revealed_preimage(id);
    ASSERT_TRUE(revealed.has_value());
    EXPECT_EQ(*revealed, secret);
}

} // namespace
