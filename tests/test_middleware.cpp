// Tests for the §5.2 blockchain-middleware suite: event notification, identity
// management, physical-world data integration, and chain analytics.
#include <gtest/gtest.h>

#include "app/analytics.hpp"
#include "app/dataintegration.hpp"
#include "app/identity.hpp"
#include "common/error.hpp"
#include "consensus/nakamoto.hpp"
#include "contract/events.hpp"
#include "contract/stdlib.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace dlt;
using namespace dlt::contract;
using ledger::kCoin;

// --- Event bus --------------------------------------------------------------------

struct EventFixture {
    WorldState world;
    ContractEngine engine{world};
    Address alice = crypto::PrivateKey::from_seed("ev/alice").address();
    Address bob = crypto::PrivateKey::from_seed("ev/bob").address();
    Address miner = crypto::PrivateKey::from_seed("ev/miner").address();
    Address token;

    EventFixture() {
        world.credit(alice, 100 * kCoin);
        world.credit(bob, 100 * kCoin);
        const auto compiled = compile(stdlib::token_source());
        token = engine.deploy(compiled, alice, {Word(100'000)}, 0, 2'000'000, 1,
                              miner)
                    .contract;
    }

    void transfer(ledger::Amount amount) {
        ASSERT_TRUE(engine
                        .call(token, "transfer",
                              {address_to_word(bob), Word(static_cast<std::uint64_t>(amount))},
                              alice, 0, 100'000, 1, miner)
                        .ok());
    }
};

TEST(EventBus, DeliversMatchingEventsExactlyOnce) {
    EventFixture fx;
    EventBus bus(fx.world);
    std::vector<Notification> seen;
    bus.subscribe(EventFilter{fx.token, event_topic("Transfer")},
                  [&](const Notification& n) { seen.push_back(n); });

    fx.transfer(10);
    fx.transfer(20);
    EXPECT_EQ(bus.poll(), 2u);
    EXPECT_EQ(bus.poll(), 0u); // cursor advanced: no duplicates
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].event.value, Word(10));
    EXPECT_EQ(seen[1].event.value, Word(20));
}

TEST(EventBus, TopicFilterExcludesOtherEvents) {
    EventFixture fx;
    EventBus bus(fx.world);
    int approvals = 0;
    bus.subscribe(EventFilter{std::nullopt, event_topic("Approval")},
                  [&](const Notification&) { ++approvals; });
    fx.transfer(5); // emits Transfer, not Approval
    EXPECT_EQ(bus.poll(), 0u);
    ASSERT_TRUE(fx.engine
                    .call(fx.token, "approve", {address_to_word(fx.bob), Word(7)},
                          fx.alice, 0, 100'000, 1, fx.miner)
                    .ok());
    EXPECT_EQ(bus.poll(), 1u);
    EXPECT_EQ(approvals, 1);
}

TEST(EventBus, FromStartReplaysHistory) {
    EventFixture fx;
    fx.transfer(1);
    fx.transfer(2);
    EventBus bus(fx.world);
    int replayed = 0;
    bus.subscribe(EventFilter{}, [&](const Notification&) { ++replayed; },
                  /*from_start=*/true);
    bus.poll();
    EXPECT_EQ(replayed, 2);
}

TEST(EventBus, UnsubscribeStopsDelivery) {
    EventFixture fx;
    EventBus bus(fx.world);
    int count = 0;
    const auto id = bus.subscribe(EventFilter{}, [&](const Notification&) { ++count; });
    fx.transfer(1);
    bus.poll();
    EXPECT_TRUE(bus.unsubscribe(id));
    EXPECT_FALSE(bus.unsubscribe(id));
    fx.transfer(2);
    bus.poll();
    EXPECT_EQ(count, 1);
}

// --- Identity registry ------------------------------------------------------------

TEST(Identity, RegisterResolveVerify) {
    app::IdentityRegistry registry;
    const auto key = crypto::PrivateKey::from_seed("id/alice");
    registry.register_name("alice", key);

    EXPECT_EQ(registry.resolve("alice"), key.address());
    const Hash256 msg = crypto::sha256(to_bytes("login-challenge"));
    EXPECT_TRUE(registry.verify_as("alice", msg, key.sign(msg)));
    const auto eve = crypto::PrivateKey::from_seed("id/eve");
    EXPECT_FALSE(registry.verify_as("alice", msg, eve.sign(msg)));
}

TEST(Identity, NameSquattingRejected) {
    app::IdentityRegistry registry;
    registry.register_name("acme", crypto::PrivateKey::from_seed("id/1"));
    EXPECT_THROW(registry.register_name("acme", crypto::PrivateKey::from_seed("id/2")),
                 ValidationError);
}

TEST(Identity, KeyRotationRequiresOldKey) {
    app::IdentityRegistry registry;
    const auto old_key = crypto::PrivateKey::from_seed("id/old");
    const auto new_key = crypto::PrivateKey::from_seed("id/new");
    const auto attacker = crypto::PrivateKey::from_seed("id/attacker");
    registry.register_name("corp", old_key);

    EXPECT_THROW(registry.rotate_key("corp", attacker, new_key.public_key()),
                 ValidationError);
    registry.rotate_key("corp", old_key, new_key.public_key());
    EXPECT_EQ(registry.resolve("corp"), new_key.address());
    EXPECT_EQ(registry.lookup("corp")->version, 2u);

    // Old key no longer speaks for the name.
    const Hash256 msg = crypto::sha256(to_bytes("act-as-corp"));
    EXPECT_FALSE(registry.verify_as("corp", msg, old_key.sign(msg)));
    EXPECT_TRUE(registry.verify_as("corp", msg, new_key.sign(msg)));
}

TEST(Identity, RevokedNamesStayBurned) {
    app::IdentityRegistry registry;
    const auto key = crypto::PrivateKey::from_seed("id/rev");
    registry.register_name("ghost", key);
    registry.revoke("ghost", key);

    EXPECT_FALSE(registry.resolve("ghost").has_value());
    EXPECT_FALSE(registry.verify_as("ghost", crypto::sha256(to_bytes("x")),
                                    key.sign(crypto::sha256(to_bytes("x")))));
    // Cannot re-register or rotate a revoked name.
    EXPECT_THROW(registry.register_name("ghost", crypto::PrivateKey::from_seed("id/sq")),
                 ValidationError);
    EXPECT_THROW(registry.rotate_key("ghost", key,
                                     crypto::PrivateKey::from_seed("id/n").public_key()),
                 ValidationError);
}

// --- Sensor gateway ----------------------------------------------------------------

struct SensorFixture {
    app::SensorGateway gateway{8, 5.0};
    crypto::PrivateKey key = crypto::PrivateKey::from_seed("sensor/thermo-1");

    SensorFixture() { gateway.register_sensor("thermo-1", key.public_key()); }

    app::IngestResult feed(double value, double t) {
        return gateway.ingest(
            app::SensorGateway::make_signed_reading("thermo-1", value, t, key));
    }
};

TEST(Sensors, AuthenticReadingsAccepted) {
    SensorFixture fx;
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fx.feed(20.0 + 0.1 * i, i).status, app::ReadingStatus::kAccepted);
    EXPECT_EQ(fx.gateway.accepted_count(), 10u);
}

TEST(Sensors, TamperedValueRejected) {
    SensorFixture fx;
    auto reading = app::SensorGateway::make_signed_reading("thermo-1", 20.0, 1, fx.key);
    reading.value = 99.0; // tampered after signing
    EXPECT_EQ(fx.gateway.ingest(reading).status, app::ReadingStatus::kBadSignature);
}

TEST(Sensors, ImpersonationRejected) {
    SensorFixture fx;
    const auto imposter = crypto::PrivateKey::from_seed("sensor/fake");
    const auto reading =
        app::SensorGateway::make_signed_reading("thermo-1", 20.0, 1, imposter);
    EXPECT_EQ(fx.gateway.ingest(reading).status, app::ReadingStatus::kBadSignature);
    EXPECT_EQ(fx.gateway
                  .ingest(app::SensorGateway::make_signed_reading("nobody", 1, 1,
                                                                  imposter))
                  .status,
              app::ReadingStatus::kUnknownSensor);
}

TEST(Sensors, PhysicalOutliersFlagged) {
    SensorFixture fx;
    // Stable readings around 20 degrees...
    for (int i = 0; i < 8; ++i) fx.feed(20.0 + 0.05 * (i % 3), i);
    // ...then a spike a tampered probe might produce.
    const auto result = fx.feed(85.0, 9);
    EXPECT_EQ(result.status, app::ReadingStatus::kOutlier);
    EXPECT_GT(result.deviation, 5.0);
    // Normal reading afterwards is fine again.
    EXPECT_EQ(fx.feed(20.1, 10).status, app::ReadingStatus::kAccepted);
}

TEST(Sensors, BatchAnchoringProvesReadings) {
    SensorFixture fx;
    std::vector<app::SensorReading> readings;
    for (int i = 0; i < 6; ++i) {
        readings.push_back(
            app::SensorGateway::make_signed_reading("thermo-1", 20.0 + i, i, fx.key));
        fx.gateway.ingest(readings.back());
    }
    const auto batch = fx.gateway.seal_batch();
    EXPECT_EQ(batch.leaves.size(), 6u);
    EXPECT_EQ(fx.gateway.accepted_count(), 0u); // pending cleared

    const auto proof = app::SensorGateway::prove_in_batch(batch, 3);
    EXPECT_TRUE(app::SensorGateway::verify_anchored(readings[3], proof, batch.root));
    // A reading not in the batch fails against the anchored root.
    const auto other =
        app::SensorGateway::make_signed_reading("thermo-1", 99.0, 99, fx.key);
    EXPECT_FALSE(app::SensorGateway::verify_anchored(other, proof, batch.root));
}

// --- Chain analytics ------------------------------------------------------------------

TEST(Analytics, MeasuresMinerConcentration) {
    consensus::NakamotoParams params;
    params.node_count = 4;
    params.block_interval = 20.0;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    params.hashrate_shares = {0.7, 0.1, 0.1, 0.1}; // one whale
    consensus::NakamotoNetwork net(params, 71);
    net.start();
    net.run_for(20.0 * 120);

    const auto analytics = app::analyze_chain(net.chain_of(0), net.tip_of(0));
    EXPECT_GT(analytics.canonical_blocks, 60u);
    ASSERT_FALSE(analytics.miners.empty());
    // The whale leads, and alone controls >50%: Nakamoto coefficient 1.
    EXPECT_EQ(analytics.miners[0].miner, net.miner_address(0));
    EXPECT_EQ(analytics.nakamoto_coefficient(), 1u);
    EXPECT_GT(analytics.miner_gini(), 0.3);
    EXPECT_NEAR(analytics.mean_block_interval, 20.0, 8.0);
}

TEST(Analytics, UniformMinersLookDecentralized) {
    consensus::NakamotoParams params;
    params.node_count = 8;
    params.block_interval = 20.0;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    consensus::NakamotoNetwork net(params, 72);
    net.start();
    net.run_for(20.0 * 160);

    const auto analytics = app::analyze_chain(net.chain_of(0), net.tip_of(0));
    EXPECT_GE(analytics.nakamoto_coefficient(), 3u);
    EXPECT_LT(analytics.miner_gini(), 0.35);
}

TEST(Analytics, CountsFeesAndTransactions) {
    consensus::NakamotoParams params;
    params.node_count = 4;
    params.block_interval = 15.0;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    consensus::NakamotoNetwork net(params, 73);
    net.start();
    for (int i = 0; i < 10; ++i) {
        ledger::Transaction tx;
        tx.kind = ledger::TxKind::kRecord;
        tx.nonce = static_cast<std::uint64_t>(i);
        tx.declared_fee = 100;
        net.submit_transaction(tx, 0);
    }
    net.run_for(15.0 * 60);

    const auto analytics = app::analyze_chain(net.chain_of(0), net.tip_of(0));
    EXPECT_EQ(analytics.total_transactions, 10u);
    EXPECT_EQ(analytics.total_fees, 1000);
    EXPECT_GT(analytics.mean_txs_per_block, 0.0);
}

} // namespace
