// Parameterized property sweeps (TEST_P): protocol invariants checked across
// whole parameter ranges rather than single points — PBFT across cluster sizes,
// gossip across fanouts, sharding across shard counts, VM arithmetic across
// operand classes, and validation of the simulated-mining model against real
// SHA-256d grinding (the DESIGN.md "dual mode" ablation).
#include <gtest/gtest.h>

#include <cmath>

#include "common/serialize.hpp"
#include "consensus/pbft.hpp"
#include "consensus/pow.hpp"
#include "contract/assembler.hpp"
#include "contract/vm.hpp"
#include "crypto/keys.hpp"
#include "ledger/difficulty.hpp"
#include "net/gossip.hpp"
#include "scaling/sharding.hpp"

namespace {

using namespace dlt;

// --- PBFT across f --------------------------------------------------------------------

class PbftSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PbftSweep, CommitsAndStaysConsistentAtEveryClusterSize) {
    const std::uint32_t f = GetParam();
    consensus::PbftConfig config;
    config.f = f;
    config.batch_size = 20;
    config.batch_interval = 0.1;
    consensus::PbftCluster cluster(config, 300 + f);
    for (int i = 0; i < 60; ++i) {
        Writer w;
        w.u64(static_cast<std::uint64_t>(i));
        cluster.submit(std::move(w).take());
    }
    cluster.run_for(30.0);
    EXPECT_EQ(cluster.executed_requests(0), 60u) << "n=" << 3 * f + 1;
    EXPECT_TRUE(cluster.logs_consistent());
}

TEST_P(PbftSweep, ToleratesExactlyFCrashes) {
    const std::uint32_t f = GetParam();
    consensus::PbftConfig config;
    config.f = f;
    config.batch_size = 10;
    config.batch_interval = 0.1;
    config.view_change_timeout = 2.0;
    consensus::PbftCluster cluster(config, 400 + f);
    // Crash the LAST f replicas (never the view-0 primary).
    for (std::uint32_t k = 0; k < f; ++k)
        cluster.set_fault(3 * f - k, consensus::PbftFault::kCrashed);
    for (int i = 0; i < 30; ++i) {
        Writer w;
        w.u64(static_cast<std::uint64_t>(i));
        cluster.submit(std::move(w).take());
    }
    cluster.run_for(40.0);
    EXPECT_EQ(cluster.executed_requests(0), 30u) << "n=" << 3 * f + 1;
    EXPECT_TRUE(cluster.logs_consistent());
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, PbftSweep, ::testing::Values(1u, 2u, 3u));

// --- Gossip across fanouts --------------------------------------------------------------

class GossipSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GossipSweep, DedupHoldsAtEveryFanout) {
    const std::size_t fanout = GetParam();
    sim::Scheduler sched;
    net::Network network(sched, Rng(500 + fanout));
    std::vector<int> deliveries(40, 0);
    net::GossipParams params;
    params.fanout = fanout;
    net::GossipOverlay overlay(network, 40, params,
                               [&](net::NodeId node, net::NodeId, const std::string&,
                                   ByteView) { ++deliveries[node]; });
    network.build_unstructured_overlay(6);

    overlay.broadcast(0, "b", to_bytes("payload"));
    sched.run();
    // Exactly-once delivery per node regardless of redundancy level.
    for (const int count : deliveries) EXPECT_LE(count, 1);
    // Flooding must reach everyone; even fanout 3 on a degree-6 overlay should.
    if (fanout == 0 || fanout >= 3) {
        int reached = 0;
        for (const int count : deliveries) reached += count;
        EXPECT_GT(reached, 35) << "fanout " << fanout;
    }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, GossipSweep, ::testing::Values(0u, 2u, 3u, 5u));

// --- Sharding across shard counts --------------------------------------------------------

class ShardSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardSweep, ConservationAndDrainAtEveryShardCount) {
    const std::size_t shards = GetParam();
    scaling::ShardingParams params;
    params.shard_count = shards;
    params.per_shard_block_capacity = 10;
    scaling::ShardedLedger ledger(params, 600 + shards);

    std::vector<crypto::Address> users;
    ledger::Amount total = 0;
    for (int i = 0; i < 40; ++i) {
        users.push_back(
            crypto::PrivateKey::from_seed("sw" + std::to_string(i)).address());
        ledger.credit(users.back(), 500);
        total += 500;
    }
    Rng rng(700 + shards);
    int submitted = 0;
    for (int i = 0; i < 600; ++i) {
        const auto& from = users[rng.index(users.size())];
        const auto& to = users[rng.index(users.size())];
        if (from == to) continue;
        if (ledger.submit({from, to, 1 + static_cast<ledger::Amount>(rng.uniform(5))}))
            ++submitted;
    }
    int steps = 0;
    while (ledger.pending() > 0 && steps < 1000) {
        ledger.step();
        ++steps;
    }
    EXPECT_EQ(ledger.pending(), 0u) << shards << " shards";
    EXPECT_EQ(ledger.total_balance(), total);
    EXPECT_EQ(ledger.stats().intra_committed + ledger.stats().cross_committed,
              static_cast<std::uint64_t>(submitted));
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// --- VM arithmetic across operand classes --------------------------------------------------

struct VmCase {
    const char* name;
    const char* asm_src;
    std::uint64_t expected;
};

class VmArithmetic : public ::testing::TestWithParam<VmCase> {};

class SinkHost : public contract::HostInterface {
public:
    contract::Word storage_load(const contract::Word&) override {
        return contract::Word::zero();
    }
    void storage_store(const contract::Word&, const contract::Word&) override {}
    std::int64_t balance_of(const contract::Word&) override { return 0; }
    bool transfer(const contract::Word&, std::int64_t) override { return true; }
    void emit(const contract::Event&) override {}
    double timestamp() override { return 0; }
};

TEST_P(VmArithmetic, EvaluatesCorrectly) {
    const VmCase& test_case = GetParam();
    SinkHost host;
    contract::CallContext ctx;
    const auto result =
        contract::execute(contract::assemble(test_case.asm_src), ctx, host);
    ASSERT_TRUE(result.ok()) << test_case.name;
    ASSERT_TRUE(result.return_value.has_value()) << test_case.name;
    EXPECT_EQ(*result.return_value, contract::Word(test_case.expected))
        << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VmArithmetic,
    ::testing::Values(
        VmCase{"add", "PUSH 2\nPUSH 3\nADD\nRETURN", 5},
        VmCase{"sub", "PUSH 10\nPUSH 4\nSUB\nRETURN", 6},
        VmCase{"mul", "PUSH 7\nPUSH 6\nMUL\nRETURN", 42},
        VmCase{"div", "PUSH 42\nPUSH 5\nDIV\nRETURN", 8},
        VmCase{"div0", "PUSH 42\nPUSH 0\nDIV\nRETURN", 0},
        VmCase{"mod", "PUSH 42\nPUSH 5\nMOD\nRETURN", 2},
        VmCase{"mod0", "PUSH 42\nPUSH 0\nMOD\nRETURN", 0},
        VmCase{"lt_true", "PUSH 1\nPUSH 2\nLT\nRETURN", 1},
        VmCase{"lt_false", "PUSH 2\nPUSH 1\nLT\nRETURN", 0},
        VmCase{"gt", "PUSH 9\nPUSH 3\nGT\nRETURN", 1},
        VmCase{"eq", "PUSH 4\nPUSH 4\nEQ\nRETURN", 1},
        VmCase{"iszero", "PUSH 0\nISZERO\nRETURN", 1},
        VmCase{"and_logic", "PUSH 3\nPUSH 5\nAND\nRETURN", 1},
        VmCase{"or_logic", "PUSH 0\nPUSH 0\nOR\nRETURN", 0},
        VmCase{"dup", "PUSH 6\nDUP 0\nADD\nRETURN", 12},
        VmCase{"swap", "PUSH 3\nPUSH 10\nSWAP 1\nSUB\nRETURN", 7}),
    [](const ::testing::TestParamInfo<VmCase>& info) {
        return info.param.name;
    });

// --- Mining model validation (real grind vs exponential race) -----------------------------

TEST(MiningModel, RealGrindMatchesGeometricExpectation) {
    // At difficulty 2^-bits, the number of nonces tried is geometric with mean
    // 2^bits; the simulated-time model uses the continuous (exponential)
    // analogue. Validate mean and coefficient of variation of the real grind.
    const unsigned bits = 10; // mean 1024 hashes, cheap enough to repeat
    const double expected_mean = std::pow(2.0, bits);
    Rng rng(800);
    std::vector<double> samples;
    ledger::BlockHeader header;
    header.bits = ledger::easy_bits(bits);
    for (int i = 0; i < 120; ++i) {
        header.nonce = 0;
        header.height = static_cast<std::uint64_t>(i); // vary the puzzle
        header.timestamp = static_cast<double>(i);
        const auto start = rng.next(); // randomize nonce origin
        const auto solution =
            consensus::mine_nonce(header, 1'000'000, start);
        ASSERT_TRUE(solution.has_value());
        samples.push_back(static_cast<double>(*solution - start + 1));
    }
    double sum = 0;
    for (const double s : samples) sum += s;
    const double mean = sum / static_cast<double>(samples.size());
    double var = 0;
    for (const double s : samples) var += (s - mean) * (s - mean);
    var /= static_cast<double>(samples.size());
    const double cv = std::sqrt(var) / mean;

    // Geometric/exponential: CV ~ 1; mean within 30% at n=120 (se ~ 9%).
    EXPECT_NEAR(mean, expected_mean, expected_mean * 0.3);
    EXPECT_NEAR(cv, 1.0, 0.35);
}

TEST(MiningModel, SimulatedRaceSharesAreProportional) {
    // In the exponential race, the probability a miner with share p wins a
    // round equals p — the property the whole Nakamoto simulation rests on.
    Rng rng(801);
    const double shares[3] = {0.6, 0.3, 0.1};
    int wins[3] = {0, 0, 0};
    const int rounds = 30000;
    for (int r = 0; r < rounds; ++r) {
        double best = 1e18;
        int winner = 0;
        for (int m = 0; m < 3; ++m) {
            const double t = consensus::sample_block_time(shares[m], 600.0, rng);
            if (t < best) {
                best = t;
                winner = m;
            }
        }
        ++wins[winner];
    }
    for (int m = 0; m < 3; ++m)
        EXPECT_NEAR(wins[m] / double(rounds), shares[m], 0.01) << "miner " << m;
}

} // namespace
