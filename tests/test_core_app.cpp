// Tests for the core platform (ChainSpec presets, the unified experiment
// runner, DCS scoring — E8) and the application layer (the §5.1 use-case
// template and the feasibility recommender).
#include <gtest/gtest.h>

#include "app/usecase.hpp"
#include "core/chainspec.hpp"
#include "core/dcs.hpp"
#include "core/experiment.hpp"

namespace {

using namespace dlt;
using namespace dlt::core;
using namespace dlt::app;

Workload light_load(double rate = 5.0, double duration = 2000.0) {
    Workload w;
    w.tx_rate = rate;
    w.duration = duration;
    return w;
}

TEST(ChainSpec, PresetsHaveDistinctCharacters) {
    const auto bitcoin = ChainSpec::bitcoin_like();
    const auto ethereum = ChainSpec::ethereum_like();
    const auto fabric = ChainSpec::hyperledger_like();
    EXPECT_GT(bitcoin.block_interval, ethereum.block_interval);
    EXPECT_EQ(fabric.openness, Openness::kPermissioned);
    EXPECT_EQ(bitcoin.openness, Openness::kPublic);
    EXPECT_EQ(ethereum.branch_rule, consensus::BranchRule::kGhost);
}

TEST(ChainSpec, BitcoinTxsPerBlockMatchesPaperMath) {
    // 1 MB / 250 B = 4000 txs per block; at 600 s that's ~6.7 tps — the
    // paper's "7 transactions per second".
    const auto spec = ChainSpec::bitcoin_like();
    EXPECT_EQ(spec.txs_per_block(), 4000u);
    const double ceiling = spec.txs_per_block() / spec.block_interval;
    EXPECT_NEAR(ceiling, 6.7, 0.1);
}

TEST(Experiment, OrderingServiceKeepsUpWithLoad) {
    const auto metrics =
        run_experiment(ChainSpec::hyperledger_like(), light_load(200.0, 60.0), 1);
    EXPECT_GT(metrics.throughput_tps, 150.0);
    EXPECT_EQ(metrics.stale_rate, 0.0);
    EXPECT_FALSE(metrics.forks_possible);
    ASSERT_TRUE(metrics.mean_confirmation_latency.has_value());
    EXPECT_LT(*metrics.mean_confirmation_latency, 1.0);
}

TEST(Experiment, PosChainConfirmsWithinSlots) {
    const auto metrics = run_experiment(ChainSpec::pos_chain(), light_load(20.0, 600.0), 2);
    EXPECT_GT(metrics.throughput_tps, 15.0);
    ASSERT_TRUE(metrics.mean_confirmation_latency.has_value());
    EXPECT_LT(*metrics.mean_confirmation_latency, 3 * ChainSpec::pos_chain().block_interval);
}

TEST(Experiment, PoetChainProgresses) {
    const auto metrics =
        run_experiment(ChainSpec::poet_chain(), light_load(5.0, 600.0), 3);
    EXPECT_GT(metrics.blocks, 10u);
    EXPECT_GT(metrics.throughput_tps, 3.0);
}

TEST(Experiment, PbftClusterCommits) {
    auto spec = ChainSpec::pbft_cluster();
    const auto metrics = run_experiment(spec, light_load(100.0, 30.0), 4);
    EXPECT_GT(metrics.throughput_tps, 70.0);
    ASSERT_TRUE(metrics.mean_confirmation_latency.has_value());
    EXPECT_LT(*metrics.mean_confirmation_latency, 2.0);
}

TEST(Experiment, LossySpecStillConfirmsViaGossipRedundancy) {
    // The ChainSpec fault knobs reach the simulated links: under 10% ambient
    // loss the flooding overlay still converges and confirms the workload.
    auto spec = ChainSpec::ethereum_like();
    spec.node_count = 8;
    spec.faults.loss = 0.1;
    const auto metrics = run_experiment(spec, light_load(2.0, 300.0), 6);
    EXPECT_GT(metrics.throughput_tps, 1.0);
    EXPECT_GT(metrics.blocks, 5u);
}

TEST(Experiment, BitcoinLikeThroughputIsCappedNearSeven) {
    auto spec = ChainSpec::bitcoin_like();
    spec.node_count = 6; // keep the sim light
    Workload load;
    load.tx_rate = 15.0; // offered load well above the ~7 tps ceiling
    load.duration = 600.0 * 6;
    const auto metrics = run_experiment(spec, load, 5);
    EXPECT_LT(metrics.throughput_tps, 8.0);
    EXPECT_GT(metrics.throughput_tps, 4.0);
}

// --- DCS (E8) --------------------------------------------------------------------------

TEST(Dcs, HyperledgerIsCS) {
    const auto spec = ChainSpec::hyperledger_like();
    const auto metrics = run_experiment(spec, light_load(2000.0, 30.0), 6);
    const auto score = score_dcs(spec, metrics);
    EXPECT_LT(score.decentralization, 0.5);
    EXPECT_GT(score.consistency, 0.9);
    EXPECT_GT(score.scalability, 0.65);
    EXPECT_EQ(score.strong_properties(), 2);
}

TEST(Dcs, BitcoinIsDC) {
    auto spec = ChainSpec::bitcoin_like();
    spec.node_count = 6;
    Workload load;
    load.tx_rate = 10.0;
    load.duration = 600.0 * 6;
    const auto metrics = run_experiment(spec, load, 7);
    const auto score = score_dcs(spec, metrics);
    EXPECT_GT(score.decentralization, 0.65);
    EXPECT_GT(score.consistency, 0.65);
    EXPECT_LT(score.scalability, 0.5);
    EXPECT_EQ(score.strong_properties(), 2);
}

TEST(Dcs, NoConfigurationGetsAllThree) {
    // The paper's conjecture, checked across every preset under load.
    const ChainSpec specs[] = {ChainSpec::bitcoin_like(), ChainSpec::ethereum_like(),
                               ChainSpec::hyperledger_like(), ChainSpec::pos_chain(),
                               ChainSpec::pbft_cluster()};
    int index = 0;
    for (auto spec : specs) {
        spec.node_count = std::min<std::size_t>(spec.node_count, 6);
        Workload load;
        load.tx_rate = 15.0;
        load.duration = spec.consensus == ConsensusKind::kProofOfWork
                            ? spec.block_interval * 8
                            : 120.0;
        const auto metrics = run_experiment(spec, load, 100 + index++);
        const auto score = score_dcs(spec, metrics);
        EXPECT_LE(score.strong_properties(), 2) << spec.name << ": " << describe(score);
    }
}

TEST(Dcs, DescribeNamesTheStrongPair) {
    DcsScore score;
    score.decentralization = 0.9;
    score.consistency = 0.9;
    score.scalability = 0.1;
    EXPECT_NE(describe(score).find("DC system"), std::string::npos);
}

// --- App layer ----------------------------------------------------------------------------

TEST(UseCase, CryptocurrencyGetsPublicProofBased) {
    const auto rec = recommend(cryptocurrency_usecase());
    EXPECT_EQ(rec.spec.openness, Openness::kPublic);
    EXPECT_TRUE(rec.spec.consensus == ConsensusKind::kProofOfWork ||
                rec.spec.consensus == ConsensusKind::kProofOfStake);
    EXPECT_FALSE(rec.needs_multichannel);
}

TEST(UseCase, SupplyChainGetsPermissionedHighThroughput) {
    const auto rec = recommend(supply_chain_usecase());
    EXPECT_EQ(rec.spec.openness, Openness::kPermissioned);
    EXPECT_EQ(rec.spec.consensus, ConsensusKind::kOrderingService);
    EXPECT_TRUE(rec.needs_multichannel);   // confidential pricing terms
    EXPECT_TRUE(rec.needs_offchain_store); // sensor telemetry
}

TEST(UseCase, EhealthNeedsPrivacyDomains) {
    const auto rec = recommend(ehealth_usecase());
    EXPECT_TRUE(rec.needs_multichannel);
    EXPECT_EQ(rec.spec.openness, Openness::kPermissioned);
}

TEST(UseCase, CrowdfundingStaysPublic) {
    const auto rec = recommend(crowdfunding_usecase());
    EXPECT_EQ(rec.spec.openness, Openness::kPublic);
}

TEST(UseCase, RationaleIsNonEmptyAndTraceable) {
    for (const auto& uc : {cryptocurrency_usecase(), crowdfunding_usecase(),
                           supply_chain_usecase(), land_registry_usecase(),
                           ehealth_usecase()}) {
        const auto rec = recommend(uc);
        EXPECT_FALSE(rec.rationale.empty()) << uc.name;
        EXPECT_NE(rec.spec.name.find(uc.name), std::string::npos);
    }
}

TEST(UseCase, GenerationsAreLabelled) {
    EXPECT_STREQ(generation_name(Generation::kCryptocurrency),
                 "Blockchain 1.0 (cryptocurrency)");
    EXPECT_EQ(cryptocurrency_usecase().generation, Generation::kCryptocurrency);
    EXPECT_EQ(crowdfunding_usecase().generation, Generation::kDApps);
    EXPECT_EQ(supply_chain_usecase().generation, Generation::kPervasive);
}

} // namespace
