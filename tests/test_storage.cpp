// Tests for the persistency layer (src/storage + core::PersistentNode):
// CRC framing, LRU cache eviction, WAL torn-tail repair at every truncation
// offset, BlockStore reopen/index rebuild, atomic snapshots with
// corrupt-input rejection, and the crash-recovery matrix — a node killed via
// CrashInjector at arbitrary write offsets must reopen to a state equal to a
// never-crashed reference.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "common/error.hpp"
#include "core/persistent_node.hpp"
#include "crypto/keys.hpp"
#include "ledger/difficulty.hpp"
#include "scaling/bootstrap.hpp"
#include "storage/blockstore.hpp"
#include "storage/crc32.hpp"
#include "storage/lru.hpp"
#include "storage/recordio.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace {

using namespace dlt;
using namespace dlt::ledger;
using namespace dlt::storage;

// All artifacts live under a per-test directory inside the system temp dir and
// are removed on scope exit — nothing leaks into the source tree or CWD.
struct TempDir {
    std::filesystem::path path;

    TempDir() {
        static std::atomic<unsigned> counter{0};
        path = std::filesystem::temp_directory_path() /
               ("dlt-storage-test-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter.fetch_add(1)));
        std::filesystem::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

crypto::Address addr(const std::string& seed) {
    return crypto::PrivateKey::from_seed(seed).address();
}

Block test_genesis() { return make_genesis("storage-test", easy_bits(2)); }

// A deterministic chain of `n` valid blocks on top of `genesis`: every block
// carries a coinbase, and every third block additionally spends the coinbase
// of the block two back (so undo records contain both spends and creates).
std::vector<Block> build_chain(const Block& genesis, int n) {
    std::vector<Block> blocks;
    std::vector<Hash256> coinbase_txids;
    Hash256 prev = genesis.hash();
    for (int i = 1; i <= n; ++i) {
        Block b;
        b.header.prev_hash = prev;
        b.header.height = static_cast<std::uint64_t>(i);
        b.header.timestamp = 10.0 * i;
        Transaction cb = make_coinbase(addr("miner-" + std::to_string(i)),
                                       block_subsidy(static_cast<std::uint64_t>(i)),
                                       static_cast<std::uint64_t>(i));
        b.txs.push_back(cb);
        coinbase_txids.push_back(cb.txid());
        if (i % 3 == 0 && i >= 3) {
            const Hash256 spend_txid = coinbase_txids[static_cast<std::size_t>(i - 3)];
            const Amount value = block_subsidy(static_cast<std::uint64_t>(i - 2));
            b.txs.push_back(make_transfer(
                {OutPoint{spend_txid, 0}},
                {TxOutput{value, addr("payee-" + std::to_string(i))}}));
        }
        b.header.merkle_root = b.compute_merkle_root();
        blocks.push_back(b);
        prev = b.hash();
    }
    return blocks;
}

// A competing branch of `n` coinbase-only blocks forked off `parent` (which
// sits at `parent_height`). Distinct miner seeds keep the hashes disjoint
// from the main chain's blocks at the same heights.
std::vector<Block> build_fork(const Block& parent, std::uint64_t parent_height, int n,
                              const std::string& tag) {
    std::vector<Block> blocks;
    Hash256 prev = parent.hash();
    for (int i = 1; i <= n; ++i) {
        const std::uint64_t h = parent_height + static_cast<std::uint64_t>(i);
        Block b;
        b.header.prev_hash = prev;
        b.header.height = h;
        b.header.timestamp = 10.0 * static_cast<double>(h) + 5.0;
        b.txs.push_back(make_coinbase(addr(tag + "-" + std::to_string(i)),
                                      block_subsidy(h), h));
        b.header.merkle_root = b.compute_merkle_root();
        blocks.push_back(b);
        prev = b.hash();
    }
    return blocks;
}

// --- CRC32C ------------------------------------------------------------------------

TEST(Crc32c, KnownCheckValue) {
    const std::string msg = "123456789";
    const ByteView view{reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()};
    EXPECT_EQ(crc32c(view), 0xE3069283u); // the CRC-32C check value
}

TEST(Crc32c, SeedChains) {
    const Bytes data{1, 2, 3, 4, 5, 6};
    const auto whole = crc32c(ByteView(data));
    const auto first = crc32c(ByteView(data).subspan(0, 3));
    const auto chained = crc32c(ByteView(data).subspan(3), first);
    EXPECT_EQ(whole, chained);
}

// --- LRU cache ---------------------------------------------------------------------

TEST(Lru, EvictsLeastRecentlyUsed) {
    LruCache<int, std::string> cache(2);
    cache.put(1, "a");
    cache.put(2, "b");
    ASSERT_TRUE(cache.get(1).has_value()); // 1 is now most recent
    cache.put(3, "c");                     // evicts 2
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_FALSE(cache.get(2).has_value());
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Lru, RefreshingExistingKeyDoesNotEvict) {
    LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    cache.put(1, 11); // refresh, not insert
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(*cache.get(1), 11);
    EXPECT_TRUE(cache.contains(2));
    EXPECT_EQ(cache.evictions(), 0u);
}

TEST(Lru, ZeroCapacityDisablesCaching) {
    LruCache<int, int> cache(0);
    cache.put(1, 10);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.get(1).has_value());
}

// --- WAL ---------------------------------------------------------------------------

TEST(Wal, AppendReopenRoundTrip) {
    TempDir dir;
    const auto path = dir.path / "wal.log";
    {
        Wal wal(path);
        EXPECT_EQ(wal.append(1, Bytes{0xAA}), 1u);
        EXPECT_EQ(wal.append(2, Bytes{0xBB, 0xCC}), 2u);
        EXPECT_EQ(wal.append(1, Bytes{}), 3u);
    }
    Wal wal(path);
    ASSERT_EQ(wal.records().size(), 3u);
    EXPECT_EQ(wal.records()[0].seq, 1u);
    EXPECT_EQ(wal.records()[0].type, 1);
    EXPECT_EQ(wal.records()[0].payload, (Bytes{0xAA}));
    EXPECT_EQ(wal.records()[1].payload, (Bytes{0xBB, 0xCC}));
    EXPECT_EQ(wal.records()[2].payload, Bytes{});
    EXPECT_EQ(wal.open_stats().truncated_bytes, 0u);
    EXPECT_EQ(wal.append(1, Bytes{0xDD}), 4u); // sequence continues
}

TEST(Wal, TornTailTruncatedAtEveryOffset) {
    // Write a log of known record sizes, then re-open after truncating the
    // file to every possible length. The recovered prefix must always be the
    // set of records whose frames fit entirely below the cut.
    TempDir dir;
    const auto path = dir.path / "wal.log";
    std::vector<std::uint64_t> boundaries{0}; // file size after k records
    {
        Wal wal(path);
        for (int k = 0; k < 5; ++k) {
            wal.append(1, Bytes(static_cast<std::size_t>(3 * k + 1), 0x5A));
            boundaries.push_back(wal.size_bytes());
        }
    }
    const std::uint64_t full_size = boundaries.back();
    const Bytes image = read_file(path);
    ASSERT_EQ(image.size(), full_size);

    for (std::uint64_t cut = 0; cut <= full_size; ++cut) {
        const auto trimmed = dir.path / "wal-cut.log";
        {
            std::ofstream out(trimmed, std::ios::binary | std::ios::trunc);
            out.write(reinterpret_cast<const char*>(image.data()),
                      static_cast<std::streamsize>(cut));
        }
        std::size_t expect_records = 0;
        while (expect_records + 1 < boundaries.size() &&
               boundaries[expect_records + 1] <= cut)
            ++expect_records;

        Wal wal(trimmed);
        EXPECT_EQ(wal.records().size(), expect_records) << "cut at " << cut;
        EXPECT_EQ(wal.open_stats().truncated_bytes, cut - boundaries[expect_records])
            << "cut at " << cut;
        // The torn tail must be physically gone so new appends start clean.
        EXPECT_EQ(wal.size_bytes(), boundaries[expect_records]) << "cut at " << cut;
        std::filesystem::remove(trimmed);
    }
}

TEST(Wal, CrashInjectorTearsExactlyAtBudget) {
    TempDir dir;
    const auto path = dir.path / "wal.log";
    CrashInjector injector;
    WalOptions options;
    options.injector = &injector;
    Wal wal(path, options);
    wal.append(1, Bytes{1, 2, 3});

    injector.arm(5); // the second record tears 5 bytes into its frame
    EXPECT_THROW(wal.append(1, Bytes{4, 5, 6}), CrashError);
    EXPECT_TRUE(injector.crashed());
    EXPECT_THROW(wal.append(1, Bytes{7}), CrashError); // dead stays dead

    Wal recovered(path);
    ASSERT_EQ(recovered.records().size(), 1u);
    EXPECT_EQ(recovered.records()[0].payload, (Bytes{1, 2, 3}));
    EXPECT_EQ(recovered.open_stats().truncated_bytes, 5u);
}

TEST(Wal, ResetKeepsSequenceMonotonic) {
    TempDir dir;
    const auto path = dir.path / "wal.log";
    Wal wal(path);
    wal.append(1, Bytes{1});
    wal.append(1, Bytes{2});
    wal.reset();
    EXPECT_EQ(wal.size_bytes(), 0u);
    EXPECT_EQ(wal.append(1, Bytes{3}), 3u); // continues past the reset
    Wal reopened(path);
    ASSERT_EQ(reopened.records().size(), 1u);
    EXPECT_EQ(reopened.records()[0].seq, 3u);
}

// --- BlockStore --------------------------------------------------------------------

TEST(BlockStore, ReopenRebuildsIndex) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 12);

    UtxoSet state;
    state.apply_block(genesis);
    {
        BlockStore store(dir.path);
        for (const auto& b : blocks) store.append(b, state.apply_block(b));
        EXPECT_EQ(store.size(), blocks.size());
    }

    BlockStore store(dir.path);
    EXPECT_EQ(store.size(), blocks.size());
    EXPECT_EQ(store.stats().blocks_indexed, blocks.size());
    EXPECT_EQ(store.stats().truncated_bytes, 0u);

    const auto all = store.all_blocks();
    ASSERT_EQ(all.size(), blocks.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i].first, blocks[i].hash());
        EXPECT_EQ(all[i].second, i + 1);
    }
    for (const auto& b : blocks) {
        const auto read = store.read_block(b.hash());
        ASSERT_NE(read, nullptr);
        EXPECT_EQ(*read, b);
    }
    EXPECT_EQ(store.read_block(Hash256{}), nullptr);
}

TEST(BlockStore, UndoRecordsRoundTrip) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 9);

    UtxoSet state;
    state.apply_block(genesis);
    std::vector<UtxoUndo> undos;
    {
        BlockStore store(dir.path);
        for (const auto& b : blocks) {
            undos.push_back(state.apply_block(b));
            store.append(b, undos.back());
        }
    }
    BlockStore store(dir.path);
    for (std::size_t i = 0; i < blocks.size(); ++i)
        EXPECT_EQ(store.read_undo(blocks[i].hash()), undos[i]);
    EXPECT_THROW(store.read_undo(Hash256{}), StorageError);
}

TEST(BlockStore, CorruptTailRecordDroppedOnReopen) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 4);
    UtxoSet state;
    state.apply_block(genesis);
    std::uint64_t third_block_end = 0;
    {
        BlockStore store(dir.path);
        for (int i = 0; i < 3; ++i) store.append(blocks[i], state.apply_block(blocks[i]));
        third_block_end = std::filesystem::file_size(dir.path / "blocks.dat");
        store.append(blocks[3], state.apply_block(blocks[3]));
    }
    // Flip one payload byte inside the last record.
    {
        Bytes image = read_file(dir.path / "blocks.dat");
        image[third_block_end + kRecordHeaderSize + 7] ^= 0x01;
        write_file_atomic(dir.path / "blocks.dat", ByteView(image));
    }
    BlockStore store(dir.path);
    EXPECT_EQ(store.size(), 3u);
    EXPECT_GT(store.stats().truncated_bytes, 0u);
    EXPECT_EQ(store.read_block(blocks[3].hash()), nullptr);
    EXPECT_NE(store.read_block(blocks[2].hash()), nullptr);
    // The store keeps working: the dropped block can simply be re-appended.
    UtxoSet replay;
    replay.apply_block(genesis);
    for (int i = 0; i < 3; ++i) replay.apply_block(blocks[i]);
    store.append(blocks[3], replay.apply_block(blocks[3]));
    EXPECT_EQ(*store.read_block(blocks[3].hash()), blocks[3]);
}

TEST(BlockStore, LruCacheColdAndWarmReads) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 6);
    UtxoSet state;
    state.apply_block(genesis);
    {
        BlockStore store(dir.path);
        for (const auto& b : blocks) store.append(b, state.apply_block(b));
    }

    BlockStoreOptions options;
    options.cache_capacity = 2;
    BlockStore store(dir.path, options);
    // Cold: every first read misses.
    for (const auto& b : blocks) ASSERT_NE(store.read_block(b.hash()), nullptr);
    EXPECT_EQ(store.stats().cache_hits, 0u);
    EXPECT_EQ(store.stats().cache_misses, blocks.size());
    // Warm: the two most recent blocks hit, an older one misses again.
    ASSERT_NE(store.read_block(blocks[5].hash()), nullptr);
    ASSERT_NE(store.read_block(blocks[4].hash()), nullptr);
    EXPECT_EQ(store.stats().cache_hits, 2u);
    ASSERT_NE(store.read_block(blocks[0].hash()), nullptr);
    EXPECT_EQ(store.stats().cache_misses, blocks.size() + 1);
    EXPECT_GT(store.stats().cache_evictions, 0u);
}

// --- Snapshots ---------------------------------------------------------------------

TEST(Snapshot, SaveLoadRoundTripAndCheckpointCompat) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 5);
    UtxoSet state;
    state.apply_block(genesis);
    for (const auto& b : blocks) state.apply_block(b);

    SnapshotManager mgr(dir.path / "snaps");
    const Snapshot snap = SnapshotManager::make(state, 5, blocks[4].hash(), 42);
    const auto path = mgr.save(snap);
    EXPECT_TRUE(std::filesystem::exists(path));

    const Snapshot loaded = mgr.load(path);
    EXPECT_EQ(loaded.height, 5u);
    EXPECT_EQ(loaded.block_hash, blocks[4].hash());
    EXPECT_EQ(loaded.wal_seq, 42u);
    EXPECT_EQ(loaded.utxo_snapshot, snap.utxo_snapshot);

    // Digest-verified restore through the bootstrap path.
    const UtxoSet restored = scaling::restore_snapshot(loaded.to_checkpoint());
    EXPECT_EQ(restored.size(), state.size());
    EXPECT_EQ(restored.total_value(), state.total_value());
}

TEST(Snapshot, EveryByteFlipIsRejected) {
    // Property-style corruption sweep: flipping any single byte of the
    // snapshot file must make the strict loader throw — never crash, never
    // silently accept.
    TempDir dir;
    UtxoSet state;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 3);
    state.apply_block(genesis);
    for (const auto& b : blocks) state.apply_block(b);

    SnapshotManager mgr(dir.path / "snaps");
    const auto path = mgr.save(SnapshotManager::make(state, 3, blocks[2].hash(), 7));
    const Bytes original = read_file(path);
    ASSERT_FALSE(original.empty());

    for (std::size_t i = 0; i < original.size(); ++i) {
        Bytes mutated = original;
        mutated[i] ^= 0x40;
        write_file_atomic(path, ByteView(mutated));
        EXPECT_THROW(mgr.load(path), Error) << "flipped byte " << i;
    }
    // Truncations are rejected too.
    for (const std::size_t keep : {std::size_t{0}, std::size_t{5}, original.size() - 1}) {
        Bytes truncated(original.begin(),
                        original.begin() + static_cast<std::ptrdiff_t>(keep));
        write_file_atomic(path, ByteView(truncated));
        EXPECT_THROW(mgr.load(path), Error) << "truncated to " << keep;
    }
}

TEST(Snapshot, LoadLatestFallsBackPastCorruptFiles) {
    TempDir dir;
    UtxoSet state;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 4);
    state.apply_block(genesis);
    state.apply_block(blocks[0]);

    SnapshotManager mgr(dir.path / "snaps");
    mgr.save(SnapshotManager::make(state, 1, blocks[0].hash(), 1));
    state.apply_block(blocks[1]);
    const auto newest = mgr.save(SnapshotManager::make(state, 2, blocks[1].hash(), 2));

    // Corrupt the newest snapshot; load_latest must fall back to height 1.
    Bytes raw = read_file(newest);
    raw[raw.size() / 2] ^= 0xFF;
    write_file_atomic(newest, ByteView(raw));

    const auto loaded = mgr.load_latest();
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->height, 1u);
}

TEST(Snapshot, PruneKeepsNewest) {
    TempDir dir;
    UtxoSet state;
    SnapshotManager mgr(dir.path / "snaps");
    for (std::uint64_t h = 1; h <= 5; ++h)
        mgr.save(SnapshotManager::make(state, h, Hash256{}, h));
    mgr.prune(2);
    const auto remaining = mgr.list();
    ASSERT_EQ(remaining.size(), 2u);
    EXPECT_NE(remaining[0].string().find("snapshot-4"), std::string::npos);
    EXPECT_NE(remaining[1].string().find("snapshot-5"), std::string::npos);
}

// --- Hardened snapshot decoding ----------------------------------------------------

TEST(UtxoCodec, UndoRoundTrip) {
    UtxoUndo undo;
    undo.spent.emplace_back(OutPoint{Hash256::from_hex_str(std::string(64, 'a')), 1},
                            TxOutput{1234, addr("x")});
    undo.created.push_back(OutPoint{Hash256::from_hex_str(std::string(64, 'b')), 7});
    Writer w;
    undo.encode(w);
    Reader r(ByteView(w.data()));
    EXPECT_EQ(UtxoUndo::decode(r), undo);
    r.expect_done();
}

TEST(UtxoCodec, TruncatedSnapshotRejected) {
    UtxoSet state;
    const Block genesis = test_genesis();
    state.apply_block(genesis);
    const auto blocks = build_chain(genesis, 3);
    for (const auto& b : blocks) state.apply_block(b);
    const Bytes raw = scaling::serialize_utxo(state);

    for (const std::size_t keep : {std::size_t{0}, raw.size() / 2, raw.size() - 1}) {
        const ByteView view = ByteView(raw).subspan(0, keep);
        EXPECT_THROW(scaling::deserialize_utxo(view), DecodeError) << "kept " << keep;
    }
    // Trailing garbage is rejected as well.
    Bytes padded = raw;
    padded.push_back(0x00);
    EXPECT_THROW(scaling::deserialize_utxo(ByteView(padded)), DecodeError);
}

TEST(UtxoCodec, HugeDeclaredCountRejectedBeforeAllocation) {
    Writer w;
    w.varint(0xFFFFFFFFFFFFull); // claims trillions of entries, provides none
    EXPECT_THROW(scaling::deserialize_utxo(ByteView(w.data())), DecodeError);
}

// --- PersistentNode ----------------------------------------------------------------

using core::PersistentNode;
using core::PersistentNodeOptions;

TEST(PersistentNode, StateSurvivesCleanRestart) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 20);

    UtxoSet reference;
    reference.apply_block(genesis);
    for (const auto& b : blocks) reference.apply_block(b);

    {
        PersistentNode node(dir.path, genesis);
        for (const auto& b : blocks) node.connect_block(b);
        EXPECT_EQ(node.height(), 20u);
    }
    PersistentNode node(dir.path, genesis);
    EXPECT_EQ(node.height(), 20u);
    EXPECT_EQ(node.tip(), blocks.back().hash());
    EXPECT_FALSE(node.recovery().from_snapshot);
    EXPECT_EQ(node.recovery().wal_records_replayed, 20u);
    EXPECT_EQ(scaling::serialize_utxo(node.utxo()), scaling::serialize_utxo(reference));
}

TEST(PersistentNode, SnapshotShortensReplay) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 15);
    {
        PersistentNode node(dir.path, genesis);
        for (int i = 0; i < 10; ++i) node.connect_block(blocks[i]);
        node.snapshot();
        for (int i = 10; i < 15; ++i) node.connect_block(blocks[i]);
    }
    PersistentNode node(dir.path, genesis);
    EXPECT_TRUE(node.recovery().from_snapshot);
    EXPECT_EQ(node.recovery().snapshot_height, 10u);
    EXPECT_EQ(node.recovery().wal_records_replayed, 5u);
    EXPECT_EQ(node.height(), 15u);
    EXPECT_EQ(node.tip(), blocks.back().hash());
}

TEST(PersistentNode, DisconnectBelowSnapshotUsesDurableUndo) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 10);

    UtxoSet reference;
    reference.apply_block(genesis);
    std::vector<Bytes> state_at; // serialized UTXO after each height
    state_at.push_back(scaling::serialize_utxo(reference));
    for (const auto& b : blocks) {
        reference.apply_block(b);
        state_at.push_back(scaling::serialize_utxo(reference));
    }

    {
        PersistentNode node(dir.path, genesis);
        for (const auto& b : blocks) node.connect_block(b);
        node.snapshot(); // snapshot at height 10
    }
    PersistentNode node(dir.path, genesis);
    ASSERT_TRUE(node.recovery().from_snapshot);
    // Walk back below the snapshot height using persisted undo data.
    for (int i = 0; i < 4; ++i) node.disconnect_tip();
    EXPECT_EQ(node.height(), 6u);
    EXPECT_EQ(node.tip(), blocks[5].hash());
    EXPECT_EQ(scaling::serialize_utxo(node.utxo()), state_at[6]);
    // And forward again: reconnect the same blocks.
    for (int i = 6; i < 10; ++i) node.connect_block(blocks[static_cast<std::size_t>(i)]);
    EXPECT_EQ(node.height(), 10u);
    EXPECT_EQ(scaling::serialize_utxo(node.utxo()), state_at[10]);
}

TEST(PersistentNode, RejectsBlockOffTip) {
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 3);
    PersistentNode node(dir.path, genesis);
    node.connect_block(blocks[0]);
    EXPECT_THROW(node.connect_block(blocks[2]), ValidationError);
    EXPECT_EQ(node.height(), 1u);
}

// The acceptance-criterion test: crash the node at write offsets covering
// every WAL record boundary and many mid-record positions, across a workload
// of connects and disconnects. After every crash the reopened node must be in
// a state a never-crashed reference also passed through, and must be able to
// finish the workload to the identical final state.
TEST(PersistentNode, CrashRecoveryMatrix) {
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 8);

    // Workload script: connect 6, disconnect 2 (a reorg rollback), reconnect.
    struct Op {
        bool connect;
        std::size_t block; // index into `blocks` for connects
    };
    std::vector<Op> script;
    for (std::size_t i = 0; i < 6; ++i) script.push_back({true, i});
    script.push_back({false, 0});
    script.push_back({false, 0});
    for (std::size_t i = 4; i < 8; ++i) script.push_back({true, i});

    // Reference (never crashed, purely in memory): state after each op.
    std::vector<std::pair<Hash256, Bytes>> ref_states; // tip -> serialized utxo
    {
        UtxoSet state;
        state.apply_block(genesis);
        std::vector<std::pair<Hash256, UtxoUndo>> undo_stack;
        Hash256 tip = genesis.hash();
        ref_states.emplace_back(tip, scaling::serialize_utxo(state));
        for (const auto& op : script) {
            if (op.connect) {
                const Block& b = blocks[op.block];
                undo_stack.emplace_back(b.hash(), state.apply_block(b));
                tip = b.hash();
            } else {
                state.undo_block(undo_stack.back().second);
                undo_stack.pop_back();
                tip = undo_stack.empty() ? genesis.hash() : undo_stack.back().first;
            }
            ref_states.emplace_back(tip, scaling::serialize_utxo(state));
        }
    }

    // Dry run to learn the total byte volume the workload writes.
    std::uint64_t total_bytes = 0;
    {
        TempDir dir;
        CrashInjector probe;
        PersistentNodeOptions options;
        options.injector = &probe;
        PersistentNode node(dir.path, genesis, options);
        for (const auto& op : script) {
            if (op.connect)
                node.connect_block(blocks[op.block]);
            else
                node.disconnect_tip();
        }
        total_bytes = probe.total_written();
        ASSERT_EQ(node.tip(), ref_states.back().first);
    }
    ASSERT_GT(total_bytes, 0u);

    // Crash at byte budgets sweeping the whole write stream (prime stride so
    // offsets drift across record boundaries), plus the exact endpoints.
    std::vector<std::uint64_t> budgets{0, 1, total_bytes - 1};
    for (std::uint64_t b = 2; b < total_bytes; b += 97) budgets.push_back(b);

    for (const std::uint64_t budget : budgets) {
        TempDir dir;
        CrashInjector injector;
        injector.arm(budget);
        PersistentNodeOptions options;
        options.injector = &injector;
        {
            PersistentNode node(dir.path, genesis, options);
            try {
                for (const auto& op : script) {
                    if (op.connect)
                        node.connect_block(blocks[op.block]);
                    else
                        node.disconnect_tip();
                }
            } catch (const CrashError&) {
                // killed mid-write — expected for every budget < total_bytes
            }
        }

        // Reopen without fault injection: recovery must land on a state the
        // reference node passed through, with matching chain state.
        PersistentNode node(dir.path, genesis);
        const Bytes recovered_utxo = scaling::serialize_utxo(node.utxo());
        bool matched = false;
        std::size_t resume_op = 0;
        for (std::size_t i = 0; i < ref_states.size(); ++i) {
            if (ref_states[i].first == node.tip() &&
                ref_states[i].second == recovered_utxo) {
                matched = true;
                resume_op = i;
                break;
            }
        }
        ASSERT_TRUE(matched) << "budget " << budget
                             << ": recovered state matches no reference state";

        // The recovered node must be able to finish the workload and reach
        // the reference's final state exactly.
        for (std::size_t i = resume_op; i < script.size(); ++i) {
            if (script[i].connect)
                node.connect_block(blocks[script[i].block]);
            else
                node.disconnect_tip();
        }
        EXPECT_EQ(node.tip(), ref_states.back().first) << "budget " << budget;
        EXPECT_EQ(scaling::serialize_utxo(node.utxo()), ref_states.back().second)
            << "budget " << budget;
    }
}

// The stride matrix above samples the write stream; E27's crash-during-reorg
// cells demand more: a node killed at *every* record boundary (undo, block,
// WAL) inside a disconnect/connect reorg window — where the replacement chain
// is a genuine fork, not a re-extension of the rolled-back blocks — must
// recover to a reference state and finish the reorg. Each boundary is hit
// twice: clean (budget lands exactly between records, so the next record is
// refused whole) and torn (the boundary record loses its last byte).
TEST(PersistentNode, CrashMatrixAtEveryWalBoundaryInReorgWindow) {
    const Block genesis = test_genesis();
    const auto main_chain = build_chain(genesis, 6);
    // Fork off height 3: rollback depth 3, replacement branch of 4.
    const auto fork = build_fork(main_chain[2], 3, 4, "fork-miner");

    struct Op {
        bool connect;
        const Block* block; // null for disconnects
    };
    std::vector<Op> script;
    for (const auto& b : main_chain) script.push_back({true, &b});
    const std::size_t window_begin = script.size();
    for (int i = 0; i < 3; ++i) script.push_back({false, nullptr});
    for (const auto& b : fork) script.push_back({true, &b});

    // Reference (never crashed, purely in memory): state after each op.
    std::vector<std::pair<Hash256, Bytes>> ref_states;
    {
        UtxoSet state;
        state.apply_block(genesis);
        std::vector<std::pair<Hash256, UtxoUndo>> undo_stack;
        Hash256 tip = genesis.hash();
        ref_states.emplace_back(tip, scaling::serialize_utxo(state));
        for (const auto& op : script) {
            if (op.connect) {
                undo_stack.emplace_back(op.block->hash(), state.apply_block(*op.block));
                tip = op.block->hash();
            } else {
                state.undo_block(undo_stack.back().second);
                undo_stack.pop_back();
                tip = undo_stack.empty() ? genesis.hash() : undo_stack.back().first;
            }
            ref_states.emplace_back(tip, scaling::serialize_utxo(state));
        }
    }

    // Dry run: learn the exact record-boundary offsets and where the reorg
    // window starts in the write stream.
    std::uint64_t window_start_bytes = 0;
    std::vector<std::uint64_t> window_boundaries;
    {
        TempDir dir;
        CrashInjector probe;
        PersistentNodeOptions options;
        options.injector = &probe;
        PersistentNode node(dir.path, genesis, options);
        for (std::size_t i = 0; i < script.size(); ++i) {
            if (i == window_begin) window_start_bytes = probe.total_written();
            if (script[i].connect)
                node.connect_block(*script[i].block);
            else
                node.disconnect_tip();
        }
        ASSERT_EQ(node.tip(), ref_states.back().first);
        for (const std::uint64_t b : probe.write_boundaries())
            if (b > window_start_bytes) window_boundaries.push_back(b);
    }
    // 3 disconnects (one WAL record each) + 4 connects (undo + block + WAL).
    ASSERT_EQ(window_boundaries.size(), 3u + 4u * 3u);

    for (const std::uint64_t boundary : window_boundaries) {
        for (const std::uint64_t budget : {boundary, boundary - 1}) {
            TempDir dir;
            CrashInjector injector;
            injector.arm(budget);
            PersistentNodeOptions options;
            options.injector = &injector;
            {
                PersistentNode node(dir.path, genesis, options);
                try {
                    for (const auto& op : script) {
                        if (op.connect)
                            node.connect_block(*op.block);
                        else
                            node.disconnect_tip();
                    }
                } catch (const CrashError&) {
                    // killed at (or one byte short of) the boundary
                }
            }

            PersistentNode node(dir.path, genesis);
            const Bytes recovered_utxo = scaling::serialize_utxo(node.utxo());
            bool matched = false;
            std::size_t resume_op = 0;
            for (std::size_t i = 0; i < ref_states.size(); ++i) {
                if (ref_states[i].first == node.tip() &&
                    ref_states[i].second == recovered_utxo) {
                    matched = true;
                    resume_op = i;
                    break;
                }
            }
            ASSERT_TRUE(matched) << "budget " << budget
                                 << ": recovered state matches no reference state";

            for (std::size_t i = resume_op; i < script.size(); ++i) {
                if (script[i].connect)
                    node.connect_block(*script[i].block);
                else
                    node.disconnect_tip();
            }
            EXPECT_EQ(node.tip(), ref_states.back().first) << "budget " << budget;
            EXPECT_EQ(scaling::serialize_utxo(node.utxo()), ref_states.back().second)
                << "budget " << budget;
        }
    }
}

TEST(PersistentNode, CrashDuringSnapshotWindowIsSafe) {
    // A crash between snapshot save and WAL reset must not double-apply
    // journaled blocks: replay skips records the snapshot already covers.
    TempDir dir;
    const Block genesis = test_genesis();
    const auto blocks = build_chain(genesis, 6);
    {
        PersistentNode node(dir.path, genesis);
        for (const auto& b : blocks) node.connect_block(b);
        // Simulate the crash window: write the snapshot by hand, leaving the
        // WAL full (exactly the state between save() and reset()).
        SnapshotManager mgr(dir.path / "snapshots");
        mgr.save(SnapshotManager::make(node.utxo(), node.height(), node.tip(), 6));
    }
    PersistentNode node(dir.path, genesis);
    EXPECT_TRUE(node.recovery().from_snapshot);
    EXPECT_EQ(node.recovery().wal_records_replayed, 0u); // all skipped via seq
    EXPECT_EQ(node.height(), 6u);
    EXPECT_EQ(node.tip(), blocks.back().hash());
}

} // namespace
