// Tests for the privacy module: taint/traceability analysis, CoinJoin mixing
// and its effect on anonymity sets (E12), commitments, and the multi-channel
// ledger's isolation and anchoring (E15).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "privacy/commitment.hpp"
#include "privacy/mixer.hpp"
#include "privacy/multichannel.hpp"
#include "privacy/taint.hpp"

namespace {

using namespace dlt;
using namespace dlt::privacy;
using namespace dlt::ledger;

crypto::Address addr(const std::string& seed) {
    return crypto::PrivateKey::from_seed(seed).address();
}

// Build a tiny chain: coinbases to users, then user transfers.
struct TaintFixture {
    TaintAnalyzer analyzer;
    Transaction cb_a = make_coinbase(addr("ta"), kCoin, 1);
    Transaction cb_b = make_coinbase(addr("tb"), kCoin, 2);
    Transaction cb_c = make_coinbase(addr("tc"), kCoin, 3);

    TaintFixture() {
        analyzer.add_transaction(cb_a);
        analyzer.add_transaction(cb_b);
        analyzer.add_transaction(cb_c);
    }
};

TEST(Taint, CoinbaseIsItsOwnOrigin) {
    TaintFixture fx;
    const OutPoint op{fx.cb_a.txid(), 0};
    const auto origins = fx.analyzer.origins_of(op);
    ASSERT_EQ(origins.size(), 1u);
    EXPECT_TRUE(origins.contains(op));
    EXPECT_TRUE(fx.analyzer.fully_traceable(op));
}

TEST(Taint, SimpleSpendChainStaysTraceable) {
    TaintFixture fx;
    const Transaction spend =
        make_transfer({OutPoint{fx.cb_a.txid(), 0}}, {TxOutput{kCoin, addr("x")}});
    fx.analyzer.add_transaction(spend);
    const OutPoint op{spend.txid(), 0};
    EXPECT_TRUE(fx.analyzer.fully_traceable(op));
    EXPECT_EQ(fx.analyzer.anonymity_set_size(op), 1u);
}

TEST(Taint, MergingInputsMergesOrigins) {
    TaintFixture fx;
    const Transaction merge = make_transfer(
        {OutPoint{fx.cb_a.txid(), 0}, OutPoint{fx.cb_b.txid(), 0}},
        {TxOutput{2 * kCoin, addr("merged")}});
    fx.analyzer.add_transaction(merge);
    EXPECT_EQ(fx.analyzer.anonymity_set_size(OutPoint{merge.txid(), 0}), 2u);
}

TEST(Taint, TaintFractionTracksDirtyOrigins) {
    TaintFixture fx;
    const Transaction merge = make_transfer(
        {OutPoint{fx.cb_a.txid(), 0}, OutPoint{fx.cb_b.txid(), 0}},
        {TxOutput{2 * kCoin, addr("merged")}});
    fx.analyzer.add_transaction(merge);

    OutPointSet dirty;
    dirty.insert(OutPoint{fx.cb_a.txid(), 0});
    EXPECT_DOUBLE_EQ(fx.analyzer.taint_fraction(OutPoint{merge.txid(), 0}, dirty), 0.5);
    // A coin with clean lineage scores zero.
    EXPECT_DOUBLE_EQ(fx.analyzer.taint_fraction(OutPoint{fx.cb_c.txid(), 0}, dirty),
                     0.0);
}

TEST(Mixer, CoinJoinGrowsAnonymitySet) {
    TaintFixture fx;
    Rng rng(1);
    std::vector<MixParticipant> participants = {
        {OutPoint{fx.cb_a.txid(), 0}, addr("fresh-a")},
        {OutPoint{fx.cb_b.txid(), 0}, addr("fresh-b")},
        {OutPoint{fx.cb_c.txid(), 0}, addr("fresh-c")},
    };
    const Transaction join = build_coinjoin(participants, kCoin, rng);
    fx.analyzer.add_transaction(join);

    // Every output of the join inherits all three origins.
    for (std::uint32_t i = 0; i < 3; ++i)
        EXPECT_EQ(fx.analyzer.anonymity_set_size(OutPoint{join.txid(), i}), 3u);
}

TEST(Mixer, ChainedRoundsMultiplyAnonymity) {
    // Two mixing populations of 3, then a second round mixing one output of
    // each: origins accumulate across rounds.
    TaintAnalyzer analyzer;
    std::vector<Transaction> roots;
    for (int i = 0; i < 6; ++i) {
        roots.push_back(make_coinbase(addr("root" + std::to_string(i)), kCoin, 10 + i));
        analyzer.add_transaction(roots.back());
    }
    Rng rng(2);
    const Transaction join1 = build_coinjoin(
        {{OutPoint{roots[0].txid(), 0}, addr("f0")},
         {OutPoint{roots[1].txid(), 0}, addr("f1")},
         {OutPoint{roots[2].txid(), 0}, addr("f2")}},
        kCoin, rng);
    const Transaction join2 = build_coinjoin(
        {{OutPoint{roots[3].txid(), 0}, addr("f3")},
         {OutPoint{roots[4].txid(), 0}, addr("f4")},
         {OutPoint{roots[5].txid(), 0}, addr("f5")}},
        kCoin, rng);
    analyzer.add_transaction(join1);
    analyzer.add_transaction(join2);

    const Transaction join3 = build_coinjoin(
        {{OutPoint{join1.txid(), 0}, addr("g0")},
         {OutPoint{join2.txid(), 0}, addr("g1")}},
        kCoin, rng);
    analyzer.add_transaction(join3);
    EXPECT_EQ(analyzer.anonymity_set_size(OutPoint{join3.txid(), 0}), 6u);
}

TEST(Mixer, OutputsAreEqualDenomination) {
    TaintFixture fx;
    Rng rng(3);
    const Transaction join = build_coinjoin(
        {{OutPoint{fx.cb_a.txid(), 0}, addr("fa")},
         {OutPoint{fx.cb_b.txid(), 0}, addr("fb")}},
        kCoin / 2, rng);
    ASSERT_EQ(join.outputs.size(), 2u);
    for (const auto& out : join.outputs) EXPECT_EQ(out.value, kCoin / 2);
}

TEST(Mixer, LatencyGrowsWithRounds) {
    EXPECT_DOUBLE_EQ(mixing_latency(3, 600.0), 1800.0);
    EXPECT_GT(mixing_latency(5, 600.0), mixing_latency(1, 600.0));
}

// --- Commitments ----------------------------------------------------------------------

TEST(Commitment, OpenVerifies) {
    Rng rng(4);
    const Opening opening = make_opening(to_bytes("secret-value"), rng);
    const Commitment c = commit(opening);
    EXPECT_TRUE(verify_opening(c, opening));
}

TEST(Commitment, WrongValueRejected) {
    Rng rng(5);
    const Opening opening = make_opening(to_bytes("truth"), rng);
    const Commitment c = commit(opening);
    Opening lie = opening;
    lie.value = to_bytes("lie");
    EXPECT_FALSE(verify_opening(c, lie));
}

TEST(Commitment, HidingUnderDifferentBlinding) {
    Rng rng(6);
    const Opening a = make_opening(to_bytes("same"), rng);
    const Opening b = make_opening(to_bytes("same"), rng);
    EXPECT_NE(commit(a).digest, commit(b).digest); // blinding hides equality
}

// --- Multi-channel ----------------------------------------------------------------------

struct ChannelFixture {
    MultiChannelLedger ledger{7};
    crypto::Address hospital = addr("hospital");
    crypto::Address clinic = addr("clinic");
    crypto::Address insurer = addr("insurer");

    ChannelFixture() {
        ledger.create_channel("care-team", {hospital, clinic});
        ledger.create_channel("billing", {hospital, insurer});
    }
};

TEST(MultiChannel, MembersReadNonMembersCannot) {
    ChannelFixture fx;
    fx.ledger.submit("care-team", fx.hospital, to_bytes("patient record"));
    EXPECT_EQ(fx.ledger.read("care-team", fx.clinic).size(), 1u);
    EXPECT_THROW(fx.ledger.read("care-team", fx.insurer), ValidationError);
}

TEST(MultiChannel, NonMemberCannotSubmit) {
    ChannelFixture fx;
    EXPECT_THROW(fx.ledger.submit("billing", fx.clinic, to_bytes("x")),
                 ValidationError);
}

TEST(MultiChannel, ChannelsProgressIndependently) {
    ChannelFixture fx;
    for (int i = 0; i < 5; ++i)
        fx.ledger.submit("care-team", fx.hospital, to_bytes("r" + std::to_string(i)));
    fx.ledger.submit("billing", fx.insurer, to_bytes("invoice"));
    EXPECT_EQ(fx.ledger.height_of("care-team"), 5u);
    EXPECT_EQ(fx.ledger.height_of("billing"), 1u);
}

TEST(MultiChannel, AnchorsRevealProgressNotContent) {
    ChannelFixture fx;
    const auto anchor = fx.ledger.submit("care-team", fx.hospital,
                                         to_bytes("confidential diagnosis"));
    // The anchor is public and carries only channel/sequence/commitment.
    ASSERT_EQ(fx.ledger.anchors().size(), 1u);
    EXPECT_EQ(fx.ledger.anchors()[0].channel, "care-team");
    EXPECT_EQ(fx.ledger.anchors()[0].sequence, 1u);

    // A member can open the commitment to an auditor.
    const Opening& opening = fx.ledger.opening_for("care-team", 1, fx.hospital);
    EXPECT_TRUE(verify_opening(anchor.commitment, opening));
    EXPECT_EQ(opening.value, to_bytes("confidential diagnosis"));

    // Non-members cannot obtain openings.
    EXPECT_THROW(fx.ledger.opening_for("care-team", 1, fx.insurer), ValidationError);
}

TEST(MultiChannel, DuplicateChannelRejected) {
    ChannelFixture fx;
    EXPECT_THROW(fx.ledger.create_channel("billing", {fx.hospital}), ValidationError);
}

TEST(MultiChannel, UnknownChannelRejected) {
    ChannelFixture fx;
    EXPECT_THROW(fx.ledger.read("nonexistent", fx.hospital), ValidationError);
}

} // namespace
