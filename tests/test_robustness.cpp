// Robustness / fuzz-style property tests: adversarial bytes must never crash
// the decoders or the VM — they either parse or throw typed errors. A peer that
// aborts on malformed gossip is a denial-of-service vector, so these paths are
// load-bearing for the network layer's safety.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "contract/minisol.hpp"
#include "contract/vm.hpp"
#include "crypto/sha256.hpp"
#include "crypto/secp256k1.hpp"
#include "datastruct/merkle.hpp"
#include "datastruct/mpt.hpp"
#include "ledger/block.hpp"
#include "ledger/transaction.hpp"

namespace {

using namespace dlt;
using namespace dlt::ledger;

Bytes random_bytes(Rng& rng, std::size_t max_len) {
    Bytes out(rng.uniform(max_len + 1));
    for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
    return out;
}

/// Decode must either succeed or throw DecodeError/CryptoError — never crash,
/// never throw anything else.
template <typename T>
void fuzz_decoder(std::uint64_t seed, int iterations, std::size_t max_len) {
    Rng rng(seed);
    int decoded = 0;
    for (int i = 0; i < iterations; ++i) {
        const Bytes raw = random_bytes(rng, max_len);
        try {
            (void)decode_from_bytes<T>(raw);
            ++decoded;
        } catch (const Error&) {
            // expected for malformed input
        }
    }
    // Random bytes almost never decode; the point is we got here alive.
    SUCCEED() << decoded << " of " << iterations << " random buffers decoded";
}

TEST(Fuzz, TransactionDecoderNeverCrashes) {
    fuzz_decoder<Transaction>(101, 3000, 300);
}

TEST(Fuzz, BlockDecoderNeverCrashes) { fuzz_decoder<Block>(102, 3000, 500); }

TEST(Fuzz, MerkleProofDecoderNeverCrashes) {
    fuzz_decoder<datastruct::MerkleProof>(103, 3000, 200);
}

TEST(Fuzz, TruncatedValidTransactionsThrowCleanly) {
    // Take a valid serialized tx and truncate at every length.
    Transaction tx = make_transfer(
        {OutPoint{crypto::tagged_hash("f", to_bytes("x")), 0}},
        {TxOutput{1000, crypto::PrivateKey::from_seed("fz").address()}});
    tx.sign_with(crypto::PrivateKey::from_seed("fz"));
    const Bytes full = encode_to_bytes(tx);
    for (std::size_t len = 0; len < full.size(); ++len) {
        const ByteView prefix{full.data(), len};
        EXPECT_THROW((void)decode_from_bytes<Transaction>(prefix), DecodeError)
            << "length " << len;
    }
    // The full buffer decodes to the original.
    EXPECT_EQ(decode_from_bytes<Transaction>(full), tx);
}

TEST(Fuzz, BitflippedTransactionsNeverCrash) {
    Transaction tx = make_transfer(
        {OutPoint{crypto::tagged_hash("f", to_bytes("y")), 1}},
        {TxOutput{5000, crypto::PrivateKey::from_seed("fz2").address()}});
    tx.sign_with(crypto::PrivateKey::from_seed("fz2"));
    const Bytes full = encode_to_bytes(tx);
    Rng rng(104);
    for (int i = 0; i < 2000; ++i) {
        Bytes mutated = full;
        const std::size_t pos = rng.index(mutated.size());
        mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
        try {
            const Transaction decoded = decode_from_bytes<Transaction>(mutated);
            // If it decoded, signature verification must not crash either.
            (void)decoded.verify_signatures();
        } catch (const Error&) {
        }
    }
}

TEST(Fuzz, SignatureDecodingRejectsGarbage) {
    Rng rng(105);
    for (int i = 0; i < 500; ++i) {
        const Bytes raw = random_bytes(rng, 80);
        try {
            (void)crypto::secp256k1::Signature::decode(raw);
        } catch (const Error&) {
        }
        try {
            (void)crypto::secp256k1::decode_compressed(raw);
        } catch (const Error&) {
        }
    }
}

TEST(Fuzz, MptProofVerifierNeverCrashes) {
    datastruct::MerklePatriciaTrie trie;
    for (int i = 0; i < 32; ++i)
        trie.put(to_bytes("k" + std::to_string(i)), to_bytes("v"));
    const Hash256 root = trie.root_hash();
    const Bytes key = to_bytes("k7");
    auto proof = trie.prove(key);

    Rng rng(106);
    for (int i = 0; i < 1000; ++i) {
        auto mutated = proof;
        // Mutate one byte of one node, or truncate the node list.
        if (rng.chance(0.8) && !mutated.nodes.empty()) {
            auto& node = mutated.nodes[rng.index(mutated.nodes.size())];
            if (!node.empty()) node[rng.index(node.size())] ^= 0xFF;
        } else if (!mutated.nodes.empty()) {
            mutated.nodes.resize(rng.index(mutated.nodes.size()));
        }
        try {
            (void)datastruct::MerklePatriciaTrie::verify_proof(root, key, mutated);
        } catch (const Error&) {
        }
    }
}

// --- VM fuzz ---------------------------------------------------------------------------

class NullHost : public contract::HostInterface {
public:
    contract::Word storage_load(const contract::Word& key) override {
        const auto it = storage_.find(key);
        return it == storage_.end() ? contract::Word::zero() : it->second;
    }
    void storage_store(const contract::Word& key, const contract::Word& v) override {
        storage_[key] = v;
    }
    std::int64_t balance_of(const contract::Word&) override { return 1000; }
    bool transfer(const contract::Word&, std::int64_t) override { return true; }
    void emit(const contract::Event&) override {}
    double timestamp() override { return 0; }

private:
    std::map<contract::Word, contract::Word> storage_;
};

TEST(Fuzz, RandomBytecodeTerminatesUnderGas) {
    Rng rng(107);
    for (int i = 0; i < 3000; ++i) {
        const Bytes code = random_bytes(rng, 200);
        NullHost host;
        contract::CallContext ctx;
        ctx.gas_limit = 5000;
        ctx.calldata = {contract::Word(1), contract::Word(2)};
        const auto result = contract::execute(code, ctx, host);
        // Whatever the bytes were, the VM halted with a classified status and
        // within the gas budget.
        EXPECT_LE(result.gas_used, ctx.gas_limit);
    }
}

TEST(Fuzz, OpcodeSoupWithValidStructureTerminates) {
    // Bias toward valid opcodes so execution goes deeper than the first byte.
    const std::uint8_t ops[] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x10, 0x11, 0x12,
                                0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1A,
                                0x20, 0x21, 0x30, 0x31, 0x40, 0x41, 0x42, 0x43,
                                0x44, 0x45, 0x50, 0x51, 0x52, 0x53, 0x54, 0x60,
                                0x70, 0x80, 0x81, 0x82};
    Rng rng(108);
    for (int i = 0; i < 2000; ++i) {
        Bytes code;
        const std::size_t len = 5 + rng.uniform(60);
        for (std::size_t k = 0; k < len; ++k) {
            const std::uint8_t op = ops[rng.index(std::size(ops))];
            code.push_back(op);
            if (op == 0x01) { // PUSH needs a 32-byte immediate
                for (int b = 0; b < 32; ++b)
                    code.push_back(static_cast<std::uint8_t>(rng.next()));
            } else if (op == 0x03 || op == 0x04) { // DUP/SWAP need a depth
                code.push_back(static_cast<std::uint8_t>(rng.uniform(4)));
            }
        }
        NullHost host;
        contract::CallContext ctx;
        ctx.gas_limit = 20'000;
        const auto result = contract::execute(code, ctx, host);
        EXPECT_LE(result.gas_used, ctx.gas_limit);
    }
}

TEST(Fuzz, MiniSolCompilerRejectsGarbageWithTypedErrors) {
    Rng rng(109);
    const std::string alphabet = "abcdefz(){};=+-*/<>!&|0123456789 \n\tcontractfnstoragemapletifwhilereturn";
    for (int i = 0; i < 1500; ++i) {
        std::string source = "contract F { ";
        const std::size_t len = rng.uniform(120);
        for (std::size_t k = 0; k < len; ++k)
            source.push_back(alphabet[rng.index(alphabet.size())]);
        source += " }";
        try {
            (void)contract::compile(source);
        } catch (const Error&) {
            // ContractError with a line number is the contract here.
        }
    }
}

// --- Serialization round-trip properties over random valid values --------------------------

TEST(Property, RandomTransactionsRoundTrip) {
    Rng rng(110);
    for (int i = 0; i < 300; ++i) {
        Transaction tx;
        tx.kind = static_cast<TxKind>(rng.uniform(5));
        const std::size_t n_in = rng.uniform(4);
        for (std::size_t k = 0; k < n_in; ++k) {
            TxInput in;
            for (auto& b : in.prevout.txid.data)
                b = static_cast<std::uint8_t>(rng.next());
            in.prevout.index = static_cast<std::uint32_t>(rng.uniform(10));
            in.pubkey = random_bytes(rng, 40);
            in.signature = random_bytes(rng, 70);
            tx.inputs.push_back(std::move(in));
        }
        const std::size_t n_out = rng.uniform(4);
        for (std::size_t k = 0; k < n_out; ++k) {
            TxOutput out;
            out.value = static_cast<Amount>(rng.uniform(kMaxMoney));
            for (auto& b : out.recipient.data)
                b = static_cast<std::uint8_t>(rng.next());
            tx.outputs.push_back(out);
        }
        tx.nonce = rng.next();
        tx.data = random_bytes(rng, 100);
        tx.gas_limit = rng.next() % 1'000'000;
        tx.gas_price = static_cast<Amount>(rng.uniform(100));
        tx.declared_fee = static_cast<Amount>(rng.uniform(100000));

        const Bytes encoded = encode_to_bytes(tx);
        const Transaction back = decode_from_bytes<Transaction>(encoded);
        EXPECT_EQ(back, tx);
        EXPECT_EQ(back.txid(), tx.txid());
    }
}

TEST(Property, RandomHeadersRoundTrip) {
    Rng rng(111);
    for (int i = 0; i < 500; ++i) {
        BlockHeader h;
        for (auto& b : h.prev_hash.data) b = static_cast<std::uint8_t>(rng.next());
        for (auto& b : h.merkle_root.data) b = static_cast<std::uint8_t>(rng.next());
        for (auto& b : h.state_root.data) b = static_cast<std::uint8_t>(rng.next());
        h.height = rng.next();
        h.timestamp = rng.uniform01() * 1e9;
        h.bits = static_cast<std::uint32_t>(rng.next());
        h.nonce = rng.next();
        h.annex = random_bytes(rng, 50);
        const Bytes encoded = encode_to_bytes(h);
        EXPECT_EQ(decode_from_bytes<BlockHeader>(encoded), h);
    }
}

} // namespace
