// Integration tests for the Nakamoto-consensus network simulation: convergence
// (E1), throughput characteristics (E2), branch behaviour under short block
// intervals and GHOST (E3), transaction confirmation, and PoW primitives.
#include <gtest/gtest.h>

#include "consensus/attack.hpp"
#include "consensus/nakamoto.hpp"
#include "consensus/pow.hpp"
#include "ledger/difficulty.hpp"

namespace {

using namespace dlt;
using namespace dlt::consensus;
using namespace dlt::ledger;

NakamotoParams fast_params() {
    NakamotoParams p;
    p.node_count = 8;
    p.block_interval = 30.0;
    p.validation.sig_mode = SigCheckMode::kSkip;
    p.link.latency_mean = 0.05;
    p.link.latency_jitter = 0.02;
    return p;
}

TEST(Pow, RealMiningFindsValidNonce) {
    BlockHeader header;
    header.bits = easy_bits(12); // ~4096 hashes expected
    const auto nonce = mine_nonce(header, 1'000'000);
    ASSERT_TRUE(nonce.has_value());
    header.nonce = *nonce;
    EXPECT_TRUE(check_proof_of_work(header));
}

TEST(Pow, WrongNonceFailsCheck) {
    BlockHeader header;
    header.bits = easy_bits(20);
    header.nonce = 12345;
    // A random nonce at difficulty 2^-20 is essentially never valid.
    EXPECT_FALSE(check_proof_of_work(header));
}

TEST(Pow, BlockTimeScalesInverselyWithHashrate) {
    Rng rng(5);
    double sum_small = 0, sum_large = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sum_small += sample_block_time(0.1, 600, rng);
        sum_large += sample_block_time(0.5, 600, rng);
    }
    EXPECT_NEAR(sum_small / n, 6000, 200);
    EXPECT_NEAR(sum_large / n, 1200, 40);
}

TEST(Nakamoto, NetworkConvergesToOneChain) {
    NakamotoNetwork net(fast_params(), /*seed=*/1);
    net.start();
    net.run_for(60 * 30); // 30 expected blocks
    // Let in-flight blocks settle with mining stopped implicitly by time window:
    net.run_for(10);
    ASSERT_TRUE(net.majority_tip().has_value());
    EXPECT_GT(net.height_of(0), 10u);
    EXPECT_GT(net.stats().blocks_mined, 10u);
}

TEST(Nakamoto, AllPeersAgreeOnPrefix) {
    NakamotoNetwork net(fast_params(), 2);
    net.start();
    net.run_for(60 * 20);
    // Even if tips differ transiently, chains must share a long common prefix:
    // compare height-minus-6 ancestor of every peer.
    const auto& chain0 = net.chain_of(0);
    const Hash256 anchor = chain0.ancestor(net.tip_of(0), 6);
    const std::uint64_t anchor_height = chain0.find(anchor)->height;
    for (std::size_t i = 1; i < net.node_count(); ++i) {
        const auto& chain = net.chain_of(i);
        ASSERT_TRUE(chain.contains(anchor)) << "peer " << i;
        // The anchor must be on peer i's active path.
        const auto path = chain.path_from_genesis(net.tip_of(i));
        ASSERT_GT(path.size(), anchor_height);
        EXPECT_EQ(path[anchor_height], anchor) << "peer " << i;
    }
}

TEST(Nakamoto, MinersEarnRewards) {
    NakamotoNetwork net(fast_params(), 3);
    net.start();
    net.run_for(60 * 20);
    Amount total = 0;
    for (std::size_t i = 0; i < net.node_count(); ++i)
        total += net.utxo_of(0).balance_of(net.miner_address(i));
    // Peer 0's view: all confirmed coinbases pay some miner.
    EXPECT_EQ(total, net.utxo_of(0).total_value());
    EXPECT_GT(total, 0);
}

TEST(Nakamoto, TransactionsConfirm) {
    auto params = fast_params();
    params.block_interval = 20.0;
    NakamotoNetwork net(params, 4);
    net.start();
    net.run_for(200); // let some blocks mine so miner 0 has coins at every peer

    const auto& utxo = net.utxo_of(0);
    const auto coins = utxo.coins_of(net.miner_address(0));
    ASSERT_FALSE(coins.empty());

    Transaction tx = make_transfer(
        {coins[0].first},
        {TxOutput{coins[0].second.value - 1000,
                  crypto::PrivateKey::from_seed("recipient").address()}});
    tx.declared_fee = 1000;
    const Hash256 txid = tx.txid();
    net.submit_transaction(tx, 0);
    net.run_for(600);

    const auto confs = net.confirmations_of(txid);
    ASSERT_TRUE(confs.has_value());
    EXPECT_GE(*confs, 1u);
    EXPECT_GE(net.confirmed_tx_count(), 1u);
}

TEST(Nakamoto, ShortBlockIntervalRaisesStaleRate) {
    auto slow = fast_params();
    slow.node_count = 10;
    slow.block_interval = 600.0;
    slow.link.latency_mean = 2.0; // pronounced propagation delay
    slow.link.latency_jitter = 1.0;
    NakamotoNetwork net_slow(slow, 5);
    net_slow.start();
    net_slow.run_for(600.0 * 120);

    auto fast = slow;
    fast.block_interval = 10.0;
    NakamotoNetwork net_fast(fast, 5);
    net_fast.start();
    net_fast.run_for(10.0 * 120);

    // Same expected block count; the fast chain must see more stale blocks.
    EXPECT_GT(net_fast.stale_rate(), net_slow.stale_rate());
}

TEST(Nakamoto, GhostSelectsHeaviestSubtree) {
    auto params = fast_params();
    params.branch_rule = BranchRule::kGhost;
    params.block_interval = 10.0;
    params.link.latency_mean = 1.0;
    NakamotoNetwork net(params, 6);
    net.start();
    net.run_for(10.0 * 100);
    ASSERT_TRUE(net.majority_tip().has_value());
    EXPECT_GT(net.height_of(0), 20u);
}

TEST(Nakamoto, HashrateSharesSkewBlockProduction) {
    auto params = fast_params();
    params.node_count = 4;
    params.hashrate_shares = {0.7, 0.1, 0.1, 0.1};
    params.block_interval = 20.0;
    NakamotoNetwork net(params, 7);
    net.start();
    net.run_for(20.0 * 150);

    // Count canonical blocks by proposer.
    std::size_t by_whale = 0, total = 0;
    for (const auto& block : net.canonical_chain()) {
        ++total;
        if (block.header.proposer == net.miner_address(0)) ++by_whale;
    }
    ASSERT_GT(total, 50u);
    const double share = static_cast<double>(by_whale) / static_cast<double>(total);
    EXPECT_GT(share, 0.55);
    EXPECT_LT(share, 0.85);
}

// --- Partition & heal (E22) --------------------------------------------------------

TEST(Nakamoto, PartitionDivergesAndHealReconverges) {
    auto params = fast_params();
    params.block_interval = 20.0;
    NakamotoNetwork net(params, 22);
    net.start();
    net.run_for(200); // establish a common prefix

    // Cut the network into two mining halves.
    net.network().partition("cut", {{0, 1, 2, 3}, {4, 5, 6, 7}});
    net.run_for(400); // ~20 blocks mined across both halves

    // The halves must have diverged: node 0's tip vs node 4's tip differ and
    // neither side knows the other's blocks.
    const Hash256 tip_a = net.tip_of(0);
    const Hash256 tip_b = net.tip_of(4);
    EXPECT_NE(tip_a, tip_b);
    EXPECT_FALSE(net.chain_of(0).contains(tip_b));
    EXPECT_FALSE(net.chain_of(4).contains(tip_a));
    EXPECT_GT(net.traffic().messages_partitioned, 0u);

    // Heal: the next cross-cut block announcement triggers the orphan-parent
    // fetch walk-back, after which every peer adopts the heavier branch.
    net.network().heal("cut");
    net.run_for(600);
    EXPECT_TRUE(net.converged());
    EXPECT_GT(net.stats().reorgs, 0u); // the losing half reorganized
}

TEST(Nakamoto, PeerChurnRejoinCatchesUp) {
    auto params = fast_params();
    params.block_interval = 20.0;
    // Node 7 contributes no hash power so its absence stalls nobody else and
    // catching up is purely a matter of block sync.
    params.hashrate_shares = {1, 1, 1, 1, 1, 1, 1, 0};
    NakamotoNetwork net(params, 23);
    net.start();
    net.run_for(100);

    net.network().leave(7);
    const std::uint64_t height_at_leave = net.height_of(7);
    net.run_for(400);
    EXPECT_EQ(net.height_of(7), height_at_leave); // heard nothing while away

    net.network().rejoin(7);
    net.run_for(600);
    // After rejoining, the first block announcement pulls the missing ancestors.
    EXPECT_GT(net.height_of(7), height_at_leave);
    EXPECT_EQ(net.tip_of(7), net.tip_of(0));
}

// --- 51% attack model (E6) ---------------------------------------------------------

TEST(Attack, AnalyticMatchesWhitepaperValues) {
    // Values from the Bitcoin whitepaper, section 11 (q = 0.1).
    EXPECT_NEAR(attacker_success_probability(0.1, 0), 1.0, 1e-9);
    EXPECT_NEAR(attacker_success_probability(0.1, 1), 0.2045873, 1e-4);
    EXPECT_NEAR(attacker_success_probability(0.1, 5), 0.0009137, 1e-5);
    EXPECT_NEAR(attacker_success_probability(0.3, 5), 0.1773523, 1e-4);
}

TEST(Attack, MajorityHashpowerAlwaysWins) {
    EXPECT_DOUBLE_EQ(attacker_success_probability(0.5, 100), 1.0);
    EXPECT_DOUBLE_EQ(attacker_success_probability(0.6, 100), 1.0);
    Rng rng(11);
    EXPECT_GT(simulate_attack_success(0.55, 6, 500, rng), 0.95);
}

TEST(Attack, SimulationMatchesAnalytic) {
    // The analytic form approximates the attacker's head start with a Poisson;
    // the simulation is exact (negative binomial), so allow the approximation
    // gap, which grows with q (~0.03 at q=0.4).
    Rng rng(13);
    for (const double q : {0.1, 0.25, 0.4}) {
        for (const unsigned z : {1u, 3u, 6u}) {
            const double analytic = attacker_success_probability(q, z);
            const double simulated = simulate_attack_success(q, z, 20000, rng);
            EXPECT_NEAR(simulated, analytic, 0.04) << "q=" << q << " z=" << z;
        }
    }
}

TEST(Attack, DeeperConfirmationsExponentiallySafer) {
    const double p1 = attacker_success_probability(0.1, 1);
    const double p6 = attacker_success_probability(0.1, 6);
    EXPECT_LT(p6, p1 / 100);
}

} // namespace
