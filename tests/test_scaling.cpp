// Tests for the scaling module: sharding throughput and cross-shard two-phase
// commits (E10), payment channels with signed commitments and HTLC-style
// routing (E11), side-chain pegs, and checkpoint bootstrap (E14).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "consensus/nakamoto.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "datastruct/merkle.hpp"
#include "ledger/difficulty.hpp"
#include "scaling/bootstrap.hpp"
#include "scaling/channels.hpp"
#include "scaling/sharding.hpp"
#include "scaling/sidechain.hpp"

namespace {

using namespace dlt;
using namespace dlt::scaling;
using namespace dlt::ledger;

crypto::Address addr(const std::string& seed) {
    return crypto::PrivateKey::from_seed(seed).address();
}

// --- Sharding ---------------------------------------------------------------------------

struct ShardFixture {
    ShardingParams params;
    std::vector<crypto::Address> users;

    ShardFixture(std::size_t shards, std::size_t capacity) {
        params.shard_count = shards;
        params.per_shard_block_capacity = capacity;
        for (int i = 0; i < 64; ++i) users.push_back(addr("shard-user-" + std::to_string(i)));
    }
};

TEST(Sharding, IntraShardTransferCommitsInOneSlot) {
    ShardFixture fx(4, 10);
    ShardedLedger ledger(fx.params, 1);
    // Find two users in the same shard.
    crypto::Address a = fx.users[0];
    crypto::Address b;
    for (const auto& u : fx.users) {
        if (u != a && ledger.shard_of(u) == ledger.shard_of(a)) {
            b = u;
            break;
        }
    }
    ledger.credit(a, 100);
    ASSERT_TRUE(ledger.submit({a, b, 40}));
    ledger.step();
    EXPECT_EQ(ledger.balance_of(a), 60);
    EXPECT_EQ(ledger.balance_of(b), 40);
    EXPECT_EQ(ledger.stats().intra_committed, 1u);
}

TEST(Sharding, CrossShardTransferTakesTwoSlots) {
    ShardFixture fx(4, 10);
    ShardedLedger ledger(fx.params, 2);
    crypto::Address a = fx.users[0];
    crypto::Address b;
    for (const auto& u : fx.users) {
        if (ledger.shard_of(u) != ledger.shard_of(a)) {
            b = u;
            break;
        }
    }
    ledger.credit(a, 100);
    ASSERT_TRUE(ledger.submit({a, b, 30}));
    ledger.step(); // lock phase
    EXPECT_EQ(ledger.balance_of(a), 70);
    EXPECT_EQ(ledger.balance_of(b), 0); // not yet committed
    ledger.step(); // commit phase
    EXPECT_EQ(ledger.balance_of(b), 30);
    EXPECT_EQ(ledger.stats().cross_committed, 1u);
    EXPECT_GT(ledger.stats().cross_messages, 0u);
}

TEST(Sharding, OverdraftRejectedAtSubmit) {
    ShardFixture fx(2, 10);
    ShardedLedger ledger(fx.params, 3);
    ledger.credit(fx.users[0], 50);
    EXPECT_TRUE(ledger.submit({fx.users[0], fx.users[1], 30}));
    // Second spend exceeds balance minus the queued spend.
    EXPECT_FALSE(ledger.submit({fx.users[0], fx.users[2], 30}));
}

TEST(Sharding, ValueConservedUnderRandomWorkload) {
    ShardFixture fx(4, 25);
    ShardedLedger ledger(fx.params, 4);
    Rng rng(99);
    ledger::Amount total = 0;
    for (const auto& u : fx.users) {
        ledger.credit(u, 1000);
        total += 1000;
    }
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 30; ++i) {
            const auto& from = fx.users[rng.index(fx.users.size())];
            const auto& to = fx.users[rng.index(fx.users.size())];
            if (from == to) continue;
            ledger.submit({from, to, static_cast<ledger::Amount>(rng.uniform(20) + 1)});
        }
        ledger.step();
        ASSERT_EQ(ledger.total_balance(), total) << "round " << round;
    }
    // Drain.
    for (int i = 0; i < 20; ++i) ledger.step();
    EXPECT_EQ(ledger.total_balance(), total);
    EXPECT_EQ(ledger.pending(), 0u);
}

TEST(Sharding, ThroughputScalesWithShardCount) {
    // Same offered load, same per-shard capacity: more shards clear it faster.
    auto run = [](std::size_t shards) {
        ShardingParams params;
        params.shard_count = shards;
        params.per_shard_block_capacity = 20;
        ShardedLedger ledger(params, 5);
        std::vector<crypto::Address> users;
        for (int i = 0; i < 128; ++i) {
            users.push_back(addr("su" + std::to_string(i)));
            ledger.credit(users.back(), 1'000'000);
        }
        Rng rng(7);
        // Intra-shard only workload: pair users within the same shard.
        int submitted = 0;
        for (int i = 0; i < 4000 && submitted < 2000; ++i) {
            const auto& from = users[rng.index(users.size())];
            const auto& to = users[rng.index(users.size())];
            if (from == to || ledger.shard_of(from) != ledger.shard_of(to)) continue;
            if (ledger.submit({from, to, 1})) ++submitted;
        }
        while (ledger.pending() > 0) ledger.step();
        return ledger.throughput_tps();
    };
    const double one = run(1);
    const double eight = run(8);
    EXPECT_GT(eight, one * 3);
}

// --- Payment channels ----------------------------------------------------------------------

TEST(Channels, OffchainPaymentsUpdateBalances) {
    const auto ka = crypto::PrivateKey::from_seed("ch/a");
    const auto kb = crypto::PrivateKey::from_seed("ch/b");
    PaymentChannel channel(ka, kb, 100, 50);
    EXPECT_TRUE(channel.pay_a_to_b(30));
    EXPECT_EQ(channel.balance_a(), 70);
    EXPECT_EQ(channel.balance_b(), 80);
    EXPECT_TRUE(channel.pay_b_to_a(10));
    EXPECT_EQ(channel.balance_a(), 80);
    EXPECT_EQ(channel.sequence(), 2u);
    EXPECT_TRUE(channel.commitment_valid());
}

TEST(Channels, CannotOverdraw) {
    const auto ka = crypto::PrivateKey::from_seed("ch/a");
    const auto kb = crypto::PrivateKey::from_seed("ch/b");
    PaymentChannel channel(ka, kb, 20, 0);
    EXPECT_FALSE(channel.pay_a_to_b(25));
    EXPECT_FALSE(channel.pay_b_to_a(1));
    EXPECT_EQ(channel.balance_a(), 20);
}

TEST(Channels, CloseSettlesFinalBalances) {
    const auto ka = crypto::PrivateKey::from_seed("ch/a");
    const auto kb = crypto::PrivateKey::from_seed("ch/b");
    PaymentChannel channel(ka, kb, 100, 100);
    channel.pay_a_to_b(60);
    const auto [fa, fb] = channel.close();
    EXPECT_EQ(fa, 40);
    EXPECT_EQ(fb, 160);
    EXPECT_FALSE(channel.pay_a_to_b(1)); // closed
}

TEST(Channels, ManyPaymentsOneSettlement) {
    const auto ka = crypto::PrivateKey::from_seed("ch/a");
    const auto kb = crypto::PrivateKey::from_seed("ch/b");
    PaymentChannel channel(ka, kb, 10'000, 10'000);
    for (int i = 0; i < 500; ++i)
        ASSERT_TRUE(i % 2 == 0 ? channel.pay_a_to_b(10) : channel.pay_b_to_a(10));
    EXPECT_EQ(channel.offchain_payments(), 500u);
    EXPECT_TRUE(channel.commitment_valid());
    const auto [fa, fb] = channel.close();
    EXPECT_EQ(fa + fb, 20'000);
}

TEST(ChannelNetwork, RoutesThroughIntermediary) {
    ChannelNetwork net;
    const auto a = net.add_node("hub-a");
    const auto hub = net.add_node("hub");
    const auto b = net.add_node("hub-b");
    net.open_channel(a, hub, 1000, 1000);
    net.open_channel(hub, b, 1000, 1000);

    const auto hops = net.route_payment(a, b, 200);
    ASSERT_TRUE(hops.has_value());
    EXPECT_EQ(*hops, 2u);
    EXPECT_EQ(net.offchain_payment_count(), 2u);

    net.settle_all();
    // a paid 200 (net), b received 200; the hub is flat.
    EXPECT_EQ(net.settled_balance(a), 800);
    EXPECT_EQ(net.settled_balance(hub), 2000);
    EXPECT_EQ(net.settled_balance(b), 1200);
}

TEST(ChannelNetwork, NoRouteWhenCapacityInsufficient) {
    ChannelNetwork net;
    const auto a = net.add_node("na");
    const auto b = net.add_node("nb");
    net.open_channel(a, b, 50, 0);
    EXPECT_FALSE(net.route_payment(a, b, 100).has_value());
    EXPECT_TRUE(net.route_payment(a, b, 50).has_value());
    // Depleted direction: no more a->b liquidity.
    EXPECT_FALSE(net.route_payment(a, b, 1).has_value());
    // But the reverse direction now has capacity.
    EXPECT_TRUE(net.route_payment(b, a, 20).has_value());
}

TEST(ChannelNetwork, OffchainDwarfsOnchain) {
    ChannelNetwork net;
    std::vector<std::size_t> nodes;
    for (int i = 0; i < 6; ++i) nodes.push_back(net.add_node("ring" + std::to_string(i)));
    for (int i = 0; i < 6; ++i)
        net.open_channel(nodes[i], nodes[(i + 1) % 6], 100'000, 100'000);

    Rng rng(11);
    int routed = 0;
    for (int i = 0; i < 1000; ++i) {
        const auto src = nodes[rng.index(nodes.size())];
        const auto dst = nodes[rng.index(nodes.size())];
        if (src == dst) continue;
        if (net.route_payment(src, dst, 5 + static_cast<Amount>(rng.uniform(20))))
            ++routed;
    }
    // Some routes fail once directional liquidity is exhausted; most succeed.
    EXPECT_GT(routed, 700);
    net.settle_all();
    // E11's headline: on-chain txs = 6 opens + 6 closes, off-chain >> that.
    EXPECT_EQ(net.onchain_tx_count(), 12u);
    EXPECT_GT(net.offchain_payment_count(), 50u * net.onchain_tx_count());
}

// --- Side chain -------------------------------------------------------------------------------

TEST(SideChain, PegInWithValidSpvProof) {
    // Main-chain block containing the lock transaction.
    const Transaction lock = make_transfer(
        {OutPoint{crypto::sha256(to_bytes("funding")), 0}},
        {TxOutput{5 * kCoin, addr("peg-pool")}});
    Block main_block;
    main_block.txs = {make_coinbase(addr("m"), kCoin, 9), lock};
    main_block.header.merkle_root = main_block.compute_merkle_root();

    const datastruct::MerkleTree tree(main_block.txids());
    PegInProof proof;
    proof.lock_txid = lock.txid();
    proof.inclusion = tree.prove(1);
    proof.main_header = main_block.header;
    proof.beneficiary = addr("side-user");
    proof.amount = 5 * kCoin;

    SideChain side;
    side.trust_main_header(main_block.header);
    side.peg_in(proof);
    EXPECT_EQ(side.balance_of(addr("side-user")), 5 * kCoin);
    EXPECT_EQ(side.total_pegged(), 5 * kCoin);

    // Replay rejected.
    EXPECT_THROW(side.peg_in(proof), ValidationError);
}

TEST(SideChain, BadProofRejected) {
    SideChain side;
    PegInProof proof;
    proof.lock_txid = crypto::sha256(to_bytes("fake"));
    proof.beneficiary = addr("side-user");
    proof.amount = kCoin;
    // Header never trusted.
    EXPECT_THROW(side.peg_in(proof), ValidationError);

    // Trusted header but proof doesn't authenticate.
    Block block;
    block.txs = {make_coinbase(addr("m"), kCoin, 1)};
    block.header.merkle_root = block.compute_merkle_root();
    side.trust_main_header(block.header);
    proof.main_header = block.header;
    EXPECT_THROW(side.peg_in(proof), ValidationError);
}

TEST(SideChain, PegOutBurnsBalance) {
    const Transaction lock = make_transfer(
        {OutPoint{crypto::sha256(to_bytes("f2")), 0}}, {TxOutput{kCoin, addr("pool")}});
    Block block;
    block.txs = {make_coinbase(addr("m"), kCoin, 2), lock};
    block.header.merkle_root = block.compute_merkle_root();
    const datastruct::MerkleTree tree(block.txids());

    SideChain side;
    side.trust_main_header(block.header);
    side.peg_in({lock.txid(), tree.prove(1), block.header, addr("u"), kCoin});
    side.transfer(addr("u"), addr("v"), kCoin / 2);

    const Hash256 burn1 = side.peg_out(addr("v"), kCoin / 2);
    EXPECT_FALSE(burn1.is_zero());
    EXPECT_EQ(side.balance_of(addr("v")), 0);
    EXPECT_EQ(side.total_pegged(), kCoin / 2);
    EXPECT_THROW(side.peg_out(addr("v"), 1), ValidationError);
}

// --- Bootstrap ---------------------------------------------------------------------------------

TEST(Bootstrap, UtxoSnapshotRoundTrips) {
    UtxoSet utxo;
    const Block genesis = make_genesis("boot", easy_bits(2));
    Block b;
    b.header.prev_hash = genesis.hash();
    b.header.height = 1;
    b.txs.push_back(make_coinbase(addr("m"), block_subsidy(1), 1));
    b.header.merkle_root = b.compute_merkle_root();
    utxo.apply_block(b);

    const Bytes raw = serialize_utxo(utxo);
    const UtxoSet restored = deserialize_utxo(raw);
    EXPECT_EQ(restored.size(), utxo.size());
    EXPECT_EQ(restored.total_value(), utxo.total_value());
}

TEST(Bootstrap, CheckpointSyncIsCheaperThanFull) {
    // Build a substantial chain via the Nakamoto simulator.
    consensus::NakamotoParams params;
    params.node_count = 4;
    params.block_interval = 10.0;
    params.validation.sig_mode = SigCheckMode::kSkip;
    consensus::NakamotoNetwork net(params, 21);
    net.start();
    net.run_for(10.0 * 150);

    const auto& chain = net.chain_of(0);
    const Hash256 tip = net.tip_of(0);
    const auto path = chain.path_from_genesis(tip);
    ASSERT_GT(path.size(), 50u);

    const std::uint64_t cp_height = path.size() - 10;
    const Checkpoint cp = make_checkpoint(chain, tip, cp_height, net.utxo_of(0));

    const BootstrapCost full = full_sync_cost(chain, tip);
    const BootstrapCost fast = checkpoint_sync_cost(chain, tip, cp);

    EXPECT_LT(fast.bytes_downloaded, full.bytes_downloaded);
    EXPECT_EQ(fast.blocks_processed, path.size() - 1 - cp_height);
    EXPECT_EQ(full.blocks_processed, path.size());
}

TEST(Bootstrap, TamperedSnapshotRejected) {
    consensus::NakamotoParams params;
    params.node_count = 4;
    params.block_interval = 10.0;
    params.validation.sig_mode = SigCheckMode::kSkip;
    consensus::NakamotoNetwork net(params, 22);
    net.start();
    net.run_for(10.0 * 50);

    const auto& chain = net.chain_of(0);
    const Hash256 tip = net.tip_of(0);
    Checkpoint cp = make_checkpoint(chain, tip, 5, net.utxo_of(0));
    if (!cp.utxo_snapshot.empty()) cp.utxo_snapshot[0] ^= 1;
    EXPECT_THROW(checkpoint_sync_cost(chain, tip, cp), ValidationError);
}

} // namespace
