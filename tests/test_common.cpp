// Unit tests for the common module: hex codecs, FixedBytes, serialization,
// varints, and the deterministic RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace {

using namespace dlt;

TEST(Hex, RoundTrip) {
    const Bytes data = {0x00, 0x01, 0xAB, 0xFF, 0x7E};
    EXPECT_EQ(to_hex(data), "0001abff7e");
    EXPECT_EQ(from_hex("0001abff7e"), data);
    EXPECT_EQ(from_hex("0001ABFF7E"), data);
}

TEST(Hex, EmptyIsValid) {
    EXPECT_EQ(to_hex(Bytes{}), "");
    EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, RejectsOddLength) { EXPECT_THROW(from_hex("abc"), DecodeError); }

TEST(Hex, RejectsNonHex) { EXPECT_THROW(from_hex("zz"), DecodeError); }

TEST(FixedBytes, ZeroDetection) {
    Hash256 h;
    EXPECT_TRUE(h.is_zero());
    h[31] = 1;
    EXPECT_FALSE(h.is_zero());
}

TEST(FixedBytes, HexRoundTrip) {
    Hash256 h;
    for (std::size_t i = 0; i < 32; ++i) h[i] = static_cast<std::uint8_t>(i);
    const Hash256 back = Hash256::from_hex_str(h.hex());
    EXPECT_EQ(h, back);
}

TEST(FixedBytes, FromBytesRejectsWrongSize) {
    const Bytes short_buf(31, 0);
    EXPECT_THROW(Hash256::from_bytes(short_buf), DecodeError);
}

TEST(FixedBytes, OrderingIsLexicographic) {
    Hash256 a, b;
    b[0] = 1;
    EXPECT_LT(a, b);
}

TEST(Serialize, IntegersRoundTrip) {
    Writer w;
    w.u8(0x12);
    w.u16(0x3456);
    w.u32(0x789ABCDE);
    w.u64(0x0123456789ABCDEFull);
    w.i64(-42);
    w.f64(3.14159);

    Reader r(w.data());
    EXPECT_EQ(r.u8(), 0x12);
    EXPECT_EQ(r.u16(), 0x3456);
    EXPECT_EQ(r.u32(), 0x789ABCDEu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
    EXPECT_TRUE(r.done());
}

TEST(Serialize, LittleEndianOnWire) {
    Writer w;
    w.u32(0x01020304);
    EXPECT_EQ(to_hex(w.data()), "04030201");
}

TEST(Serialize, VarintBoundaries) {
    const std::uint64_t cases[] = {0,      1,          0xFC,       0xFD,
                                   0xFFFF, 0x10000,    0xFFFFFFFF, 0x100000000ull,
                                   0xFFFFFFFFFFFFFFFFull};
    for (const auto v : cases) {
        Writer w;
        w.varint(v);
        Reader r(w.data());
        EXPECT_EQ(r.varint(), v) << v;
        EXPECT_TRUE(r.done());
    }
}

TEST(Serialize, VarintCompactSizes) {
    auto encoded_size = [](std::uint64_t v) {
        Writer w;
        w.varint(v);
        return w.size();
    };
    EXPECT_EQ(encoded_size(0xFC), 1u);
    EXPECT_EQ(encoded_size(0xFD), 3u);
    EXPECT_EQ(encoded_size(0xFFFF), 3u);
    EXPECT_EQ(encoded_size(0x10000), 5u);
    EXPECT_EQ(encoded_size(0x100000000ull), 9u);
}

TEST(Serialize, RejectsNonCanonicalVarint) {
    // 0xFD prefix encoding a value < 0xFD must be rejected.
    const Bytes bad = {0xFD, 0x01, 0x00};
    Reader r(bad);
    EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Serialize, BlobAndStringRoundTrip) {
    Writer w;
    w.blob(from_hex("deadbeef"));
    w.str("hello ledger");
    Reader r(w.data());
    EXPECT_EQ(r.blob(), from_hex("deadbeef"));
    EXPECT_EQ(r.str(), "hello ledger");
}

TEST(Serialize, ReadPastEndThrows) {
    Writer w;
    w.u16(7);
    Reader r(w.data());
    r.u16();
    EXPECT_THROW(r.u8(), DecodeError);
}

TEST(Serialize, BlobLengthOverflowThrows) {
    Writer w;
    w.varint(1000); // declares 1000 bytes but provides none
    Reader r(w.data());
    EXPECT_THROW(r.blob(), DecodeError);
}

TEST(Serialize, ExpectDoneDetectsTrailing) {
    Writer w;
    w.u8(1);
    w.u8(2);
    Reader r(w.data());
    r.u8();
    EXPECT_THROW(r.expect_done(), DecodeError);
}

TEST(Rng, Deterministic) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformIsRoughlyUniform) {
    Rng rng(11);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[rng.uniform(10)];
    for (const int c : counts) {
        EXPECT_GT(c, n / 10 - n / 100);
        EXPECT_LT(c, n / 10 + n / 100);
    }
}

TEST(Rng, ExponentialMeanMatchesRate) {
    Rng rng(13);
    const double rate = 0.25;
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
    const double mean = sum / n;
    EXPECT_NEAR(mean, 1.0 / rate, 0.05);
}

TEST(Rng, NormalMoments) {
    Rng rng(17);
    const int n = 200000;
    double sum = 0, sumsq = 0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(5.0, 2.0);
        sum += x;
        sumsq += x * x;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
    Rng rng(19);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ForkStreamsAreIndependent) {
    Rng parent(23);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ShufflePreservesElements) {
    Rng rng(29);
    std::vector<int> v(50);
    std::iota(v.begin(), v.end(), 0);
    auto shuffled = v;
    rng.shuffle(shuffled);
    EXPECT_NE(shuffled, v); // astronomically unlikely to be identity
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, UniformRangeInclusive) {
    Rng rng(31);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

} // namespace
