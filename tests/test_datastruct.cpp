// Tests for authenticated data structures: Merkle trees + SPV proofs, bloom
// filters, the Merkle-Patricia trie, and the IAVL+ tree (including property
// tests against a reference std::map model).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "datastruct/bloom.hpp"
#include "datastruct/iavl.hpp"
#include "datastruct/merkle.hpp"
#include "datastruct/mpt.hpp"

namespace {

using namespace dlt;
using namespace dlt::datastruct;

std::vector<Hash256> make_leaves(std::size_t n) {
    std::vector<Hash256> leaves;
    leaves.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        leaves.push_back(crypto::sha256(to_bytes("leaf-" + std::to_string(i))));
    return leaves;
}

// --- Merkle ----------------------------------------------------------------------

TEST(Merkle, EmptyTreeHasZeroRoot) {
    EXPECT_TRUE(MerkleTree({}).root().is_zero());
}

TEST(Merkle, SingleLeafRootIsLeaf) {
    const auto leaves = make_leaves(1);
    EXPECT_EQ(MerkleTree(leaves).root(), leaves[0]);
}

TEST(Merkle, RootChangesWithAnyLeaf) {
    auto leaves = make_leaves(8);
    const Hash256 original = merkle_root(leaves);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        auto tampered = leaves;
        tampered[i][0] ^= 0x01;
        EXPECT_NE(merkle_root(tampered), original) << "leaf " << i;
    }
}

TEST(Merkle, OddLeafCountDuplicatesLast) {
    const auto three = make_leaves(3);
    auto four = three;
    four.push_back(three[2]); // Bitcoin-style: odd node pairs with itself
    EXPECT_EQ(merkle_root(three), merkle_root(four));
}

class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, AllLeavesProve) {
    const std::size_t n = GetParam();
    const auto leaves = make_leaves(n);
    const MerkleTree tree(leaves);
    for (std::size_t i = 0; i < n; ++i) {
        const MerkleProof proof = tree.prove(i);
        EXPECT_EQ(merkle_root_from_proof(leaves[i], proof), tree.root())
            << "leaf " << i << " of " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 100));

TEST(MerkleProof, WrongLeafFailsVerification) {
    const auto leaves = make_leaves(16);
    const MerkleTree tree(leaves);
    const MerkleProof proof = tree.prove(5);
    EXPECT_NE(merkle_root_from_proof(leaves[6], proof), tree.root());
}

TEST(MerkleProof, ProofSizeIsLogarithmic) {
    const MerkleTree small(make_leaves(16));
    const MerkleTree large(make_leaves(1024));
    EXPECT_EQ(small.prove(0).steps.size(), 4u);
    EXPECT_EQ(large.prove(0).steps.size(), 10u);
}

TEST(MerkleProof, SerializationRoundTrip) {
    const MerkleTree tree(make_leaves(20));
    const MerkleProof proof = tree.prove(13);
    const Bytes encoded = encode_to_bytes(proof);
    EXPECT_EQ(decode_from_bytes<MerkleProof>(encoded), proof);
}

// --- Bloom -----------------------------------------------------------------------

TEST(Bloom, NoFalseNegatives) {
    BloomFilter filter(1024 * 8, 5);
    std::vector<Bytes> items;
    for (int i = 0; i < 100; ++i) items.push_back(to_bytes("item" + std::to_string(i)));
    for (const auto& item : items) filter.insert(item);
    for (const auto& item : items) EXPECT_TRUE(filter.maybe_contains(item));
}

TEST(Bloom, FalsePositiveRateNearTarget) {
    const double target = 0.01;
    BloomFilter filter = BloomFilter::optimal(1000, target);
    for (int i = 0; i < 1000; ++i) filter.insert(to_bytes("member" + std::to_string(i)));
    int fps = 0;
    const int probes = 20000;
    for (int i = 0; i < probes; ++i)
        if (filter.maybe_contains(to_bytes("nonmember" + std::to_string(i)))) ++fps;
    const double rate = static_cast<double>(fps) / probes;
    EXPECT_LT(rate, target * 3);
}

TEST(Bloom, FillRatioGrows) {
    BloomFilter filter(256, 3);
    EXPECT_DOUBLE_EQ(filter.fill_ratio(), 0.0);
    filter.insert(to_bytes("x"));
    EXPECT_GT(filter.fill_ratio(), 0.0);
}

// --- MPT -------------------------------------------------------------------------

TEST(Mpt, EmptyRoot) {
    MerklePatriciaTrie trie;
    EXPECT_TRUE(trie.root_hash().is_zero());
    EXPECT_TRUE(trie.empty());
}

TEST(Mpt, PutGetSingle) {
    MerklePatriciaTrie trie;
    trie.put(to_bytes("key"), to_bytes("value"));
    EXPECT_EQ(trie.get(to_bytes("key")), to_bytes("value"));
    EXPECT_EQ(trie.size(), 1u);
    EXPECT_FALSE(trie.get(to_bytes("other")).has_value());
}

TEST(Mpt, OverwriteKeepsSize) {
    MerklePatriciaTrie trie;
    trie.put(to_bytes("k"), to_bytes("v1"));
    trie.put(to_bytes("k"), to_bytes("v2"));
    EXPECT_EQ(trie.size(), 1u);
    EXPECT_EQ(trie.get(to_bytes("k")), to_bytes("v2"));
}

TEST(Mpt, PrefixKeysCoexist) {
    MerklePatriciaTrie trie;
    trie.put(to_bytes("do"), to_bytes("verb"));
    trie.put(to_bytes("dog"), to_bytes("animal"));
    trie.put(to_bytes("doge"), to_bytes("coin"));
    EXPECT_EQ(trie.get(to_bytes("do")), to_bytes("verb"));
    EXPECT_EQ(trie.get(to_bytes("dog")), to_bytes("animal"));
    EXPECT_EQ(trie.get(to_bytes("doge")), to_bytes("coin"));
}

TEST(Mpt, RootIsOrderIndependent) {
    MerklePatriciaTrie a, b;
    const std::vector<std::pair<std::string, std::string>> kvs = {
        {"alpha", "1"}, {"beta", "2"}, {"gamma", "3"}, {"alphabet", "4"}, {"", "5"}};
    for (const auto& [k, v] : kvs) a.put(to_bytes(k), to_bytes(v));
    for (auto it = kvs.rbegin(); it != kvs.rend(); ++it)
        b.put(to_bytes(it->first), to_bytes(it->second));
    EXPECT_EQ(a.root_hash(), b.root_hash());
}

TEST(Mpt, EraseRestoresPriorRoot) {
    MerklePatriciaTrie trie;
    trie.put(to_bytes("a"), to_bytes("1"));
    trie.put(to_bytes("ab"), to_bytes("2"));
    const Hash256 before = trie.root_hash();
    trie.put(to_bytes("abc"), to_bytes("3"));
    EXPECT_NE(trie.root_hash(), before);
    EXPECT_TRUE(trie.erase(to_bytes("abc")));
    EXPECT_EQ(trie.root_hash(), before);
}

TEST(Mpt, EraseMissingReturnsFalse) {
    MerklePatriciaTrie trie;
    trie.put(to_bytes("a"), to_bytes("1"));
    EXPECT_FALSE(trie.erase(to_bytes("b")));
    EXPECT_EQ(trie.size(), 1u);
}

TEST(Mpt, SnapshotIsolation) {
    MerklePatriciaTrie trie;
    trie.put(to_bytes("k"), to_bytes("v1"));
    MerklePatriciaTrie snap = trie.snapshot();
    trie.put(to_bytes("k"), to_bytes("v2"));
    trie.put(to_bytes("new"), to_bytes("x"));
    EXPECT_EQ(snap.get(to_bytes("k")), to_bytes("v1"));
    EXPECT_FALSE(snap.get(to_bytes("new")).has_value());
    EXPECT_EQ(trie.get(to_bytes("k")), to_bytes("v2"));
}

TEST(Mpt, MatchesMapModel) {
    Rng rng(99);
    MerklePatriciaTrie trie;
    std::map<std::string, Bytes> model;
    for (int step = 0; step < 3000; ++step) {
        const std::string key = "key-" + std::to_string(rng.uniform(200));
        if (rng.chance(0.7)) {
            Bytes value = to_bytes("val-" + std::to_string(rng.next() % 1000));
            trie.put(to_bytes(key), value);
            model[key] = value;
        } else {
            const bool trie_removed = trie.erase(to_bytes(key));
            const bool model_removed = model.erase(key) > 0;
            EXPECT_EQ(trie_removed, model_removed);
        }
        EXPECT_EQ(trie.size(), model.size());
    }
    for (const auto& [k, v] : model) EXPECT_EQ(trie.get(to_bytes(k)), v);
}

TEST(Mpt, DrainToEmptyRestoresZeroRoot) {
    MerklePatriciaTrie trie;
    for (int i = 0; i < 50; ++i)
        trie.put(to_bytes("k" + std::to_string(i)), to_bytes("v"));
    for (int i = 0; i < 50; ++i) EXPECT_TRUE(trie.erase(to_bytes("k" + std::to_string(i))));
    EXPECT_TRUE(trie.root_hash().is_zero());
    EXPECT_TRUE(trie.empty());
}

TEST(MptProof, InclusionVerifies) {
    MerklePatriciaTrie trie;
    for (int i = 0; i < 64; ++i)
        trie.put(to_bytes("account-" + std::to_string(i)),
                 to_bytes("balance-" + std::to_string(i * 100)));
    const Hash256 root = trie.root_hash();
    for (int i = 0; i < 64; ++i) {
        const Bytes key = to_bytes("account-" + std::to_string(i));
        const MptProof proof = trie.prove(key);
        const auto value = MerklePatriciaTrie::verify_proof(root, key, proof);
        ASSERT_TRUE(value.has_value()) << i;
        EXPECT_EQ(*value, to_bytes("balance-" + std::to_string(i * 100)));
    }
}

TEST(MptProof, AbsenceVerifies) {
    MerklePatriciaTrie trie;
    trie.put(to_bytes("exists"), to_bytes("yes"));
    const Bytes key = to_bytes("missing");
    const MptProof proof = trie.prove(key);
    EXPECT_FALSE(MerklePatriciaTrie::verify_proof(trie.root_hash(), key, proof));
}

TEST(MptProof, TamperedProofRejected) {
    MerklePatriciaTrie trie;
    for (int i = 0; i < 16; ++i)
        trie.put(to_bytes("k" + std::to_string(i)), to_bytes("v" + std::to_string(i)));
    const Bytes key = to_bytes("k3");
    MptProof proof = trie.prove(key);
    ASSERT_FALSE(proof.nodes.empty());
    proof.nodes.back()[proof.nodes.back().size() / 2] ^= 0x01;
    EXPECT_THROW(MerklePatriciaTrie::verify_proof(trie.root_hash(), key, proof),
                 ValidationError);
}

TEST(MptProof, WrongRootRejected) {
    MerklePatriciaTrie trie;
    trie.put(to_bytes("a"), to_bytes("1"));
    const MptProof proof = trie.prove(to_bytes("a"));
    Hash256 wrong = trie.root_hash();
    wrong[0] ^= 0xFF;
    EXPECT_THROW(MerklePatriciaTrie::verify_proof(wrong, to_bytes("a"), proof),
                 ValidationError);
}

// --- IAVL ------------------------------------------------------------------------

TEST(Iavl, EmptyRoot) {
    IavlTree tree;
    EXPECT_TRUE(tree.root_hash().is_zero());
    EXPECT_EQ(tree.size(), 0u);
}

TEST(Iavl, SetGetRemove) {
    IavlTree tree;
    tree.set(to_bytes("k"), to_bytes("v"));
    EXPECT_EQ(tree.get(to_bytes("k")), to_bytes("v"));
    EXPECT_TRUE(tree.remove(to_bytes("k")));
    EXPECT_FALSE(tree.remove(to_bytes("k")));
    EXPECT_TRUE(tree.root_hash().is_zero());
}

TEST(Iavl, RootIsDeterministicForSameSequence) {
    // Unlike the MPT, an AVL tree's shape (and thus root) depends on insertion
    // order — true of Tendermint's IAVL as well. What consensus requires is
    // determinism: identical operation sequences yield identical roots.
    IavlTree a, b;
    for (int i = 0; i < 100; ++i) {
        a.set(to_bytes("k" + std::to_string(i)), to_bytes("v" + std::to_string(i)));
        b.set(to_bytes("k" + std::to_string(i)), to_bytes("v" + std::to_string(i)));
    }
    EXPECT_EQ(a.root_hash(), b.root_hash());
    a.set(to_bytes("k5"), to_bytes("changed"));
    EXPECT_NE(a.root_hash(), b.root_hash());
}

TEST(Iavl, HeightStaysLogarithmic) {
    IavlTree tree;
    for (int i = 0; i < 1024; ++i)
        tree.set(to_bytes("sequential-key-" + std::to_string(i)), to_bytes("v"));
    EXPECT_EQ(tree.size(), 1024u);
    // AVL bound: height <= 1.44 log2(n) + small constant.
    EXPECT_LE(tree.height(), 16);
    EXPECT_TRUE(tree.check_invariants());
}

TEST(Iavl, MatchesMapModel) {
    Rng rng(123);
    IavlTree tree;
    std::map<std::string, Bytes> model;
    for (int step = 0; step < 3000; ++step) {
        const std::string key = "key-" + std::to_string(rng.uniform(150));
        if (rng.chance(0.65)) {
            Bytes value = to_bytes("v" + std::to_string(rng.next() % 997));
            tree.set(to_bytes(key), value);
            model[key] = value;
        } else {
            EXPECT_EQ(tree.remove(to_bytes(key)), model.erase(key) > 0);
        }
        EXPECT_EQ(tree.size(), model.size());
    }
    EXPECT_TRUE(tree.check_invariants());
    for (const auto& [k, v] : model) EXPECT_EQ(tree.get(to_bytes(k)), v);
}

TEST(Iavl, ForEachIsSortedAndComplete) {
    IavlTree tree;
    std::map<std::string, std::string> model;
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const std::string k = "k" + std::to_string(rng.uniform(500));
        tree.set(to_bytes(k), to_bytes("v"));
        model[k] = "v";
    }
    std::vector<std::string> visited;
    tree.for_each([&](ByteView k, ByteView) {
        visited.emplace_back(reinterpret_cast<const char*>(k.data()), k.size());
    });
    ASSERT_EQ(visited.size(), model.size());
    auto it = model.begin();
    for (const auto& k : visited) {
        EXPECT_EQ(k, it->first);
        ++it;
    }
}

TEST(Iavl, SnapshotIsolation) {
    IavlTree tree;
    tree.set(to_bytes("a"), to_bytes("1"));
    IavlTree snap = tree.snapshot();
    tree.set(to_bytes("a"), to_bytes("2"));
    tree.set(to_bytes("b"), to_bytes("3"));
    EXPECT_EQ(snap.get(to_bytes("a")), to_bytes("1"));
    EXPECT_FALSE(snap.get(to_bytes("b")).has_value());
    EXPECT_EQ(snap.size(), 1u);
}

} // namespace
