// Tests for the fourth-generation DAG ledger: record codec, shuffle-based tip
// selection, GHOSTDAG store invariants checked against brute-force oracles on
// random DAGs, dledger confirmation counters, and the full DagNetwork
// (convergence, conflict resolution, duplicate suppression, lifecycle, and
// byte-identical linearization across reruns and thread counts).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "consensus/dag/network.hpp"
#include "consensus/dag/record.hpp"
#include "consensus/dag/store.hpp"
#include "consensus/dag/tipselect.hpp"
#include "crypto/sha256.hpp"
#include "ledger/transaction.hpp"

namespace {

using namespace dlt;
using namespace dlt::consensus::dag;

Hash256 h(std::uint64_t salt) {
    return crypto::sha256(to_bytes("dagtest" + std::to_string(salt)));
}

// --- Record codec ----------------------------------------------------------------

TEST(DagRecord, ParentsRoundTrip) {
    ledger::BlockHeader header;
    const std::vector<Hash256> parents{h(1), h(2), h(3)};
    set_parents(header, parents);
    EXPECT_EQ(header.prev_hash, h(1));
    EXPECT_EQ(parents_of(header), parents);

    set_parents(header, {h(7)});
    EXPECT_TRUE(header.annex.empty()); // single parent = plain chain block
    EXPECT_EQ(parents_of(header), std::vector<Hash256>{h(7)});
}

TEST(DagRecord, HashCommitsToParentList) {
    ledger::Block a;
    set_parents(a.header, {h(1), h(2)});
    ledger::Block b = a;
    set_parents(b.header, {h(1), h(3)});
    EXPECT_NE(a.hash(), b.hash());
}

TEST(DagRecord, WellFormedness) {
    EXPECT_TRUE(parents_well_formed({h(1), h(2)}, 3));
    EXPECT_FALSE(parents_well_formed({}, 3));                  // empty
    EXPECT_FALSE(parents_well_formed({h(1), h(2), h(3)}, 2));  // too many
    EXPECT_FALSE(parents_well_formed({h(1), h(1)}, 3));        // duplicate
}

// --- Tip selection ---------------------------------------------------------------

TEST(TipSelect, BoundsAndDeterminism) {
    std::map<Hash256, std::uint64_t> scores;
    std::vector<Hash256> tips;
    for (std::uint64_t i = 0; i < 8; ++i) {
        tips.push_back(h(100 + i));
        scores[tips.back()] = i;
    }
    const auto score = [](const void* ctx, const Hash256& tip) -> std::uint64_t {
        return static_cast<const std::map<Hash256, std::uint64_t>*>(ctx)->at(tip);
    };

    Rng rng_a(42), rng_b(42);
    const auto a = select_parents(tips, 3, rng_a, &scores, score);
    const auto b = select_parents(tips, 3, rng_b, &scores, score);
    EXPECT_EQ(a, b); // same seed, same parents
    ASSERT_EQ(a.size(), 3u);
    // Best-first: descending blue score.
    EXPECT_GE(scores.at(a[0]), scores.at(a[1]));
    EXPECT_GE(scores.at(a[1]), scores.at(a[2]));
    // Distinct picks.
    EXPECT_EQ(std::set<Hash256>(a.begin(), a.end()).size(), 3u);

    Rng rng_c(43);
    const auto few = select_parents({tips[0], tips[1]}, 3, rng_c, &scores, score);
    EXPECT_EQ(few.size(), 2u); // k capped by available tips
}

// --- GHOSTDAG store vs brute-force oracles ---------------------------------------

/// A store plus a mirror of the DAG's structure for oracle computations.
struct OracleDag {
    ledger::Block genesis = ledger::make_genesis("dagtest", 0x207fffff);
    DagStore store;
    std::map<Hash256, std::vector<Hash256>> parents; // mirrored edges
    std::vector<Hash256> inserted;                   // insertion order

    explicit OracleDag(DagStore::Config cfg = {}) : store(genesis, cfg) {
        parents[genesis.hash()] = {};
    }

    /// Insert an (empty-payload) record with the given parents.
    Hash256 add(const std::vector<Hash256>& ps, std::uint64_t salt) {
        ledger::Block block;
        set_parents(block.header, ps);
        block.header.nonce = salt; // unique hash per record
        block.header.proposer = crypto::Address{};
        const Hash256 hash = block.hash();
        store.insert(block, 0.0);
        parents[hash] = ps;
        inserted.push_back(hash);
        return hash;
    }

    /// Brute-force ancestor closure: past(x), transitively.
    std::set<Hash256> past_of(const Hash256& x) const {
        std::set<Hash256> out;
        std::vector<Hash256> frontier{x};
        while (!frontier.empty()) {
            const Hash256 cur = frontier.back();
            frontier.pop_back();
            for (const Hash256& p : parents.at(cur))
                if (out.insert(p).second) frontier.push_back(p);
        }
        return out;
    }
};

/// Random DAG: each record picks 1..3 random parents among the current tips
/// (falling back to arbitrary existing records to vary widths).
OracleDag random_dag(std::uint64_t seed, std::size_t records) {
    OracleDag dag;
    Rng rng(seed);
    std::vector<Hash256> pool{dag.genesis.hash()};
    for (std::size_t i = 0; i < records; ++i) {
        const std::size_t want = 1 + rng.uniform(3);
        std::vector<Hash256> ps;
        for (std::size_t tries = 0; ps.size() < want && tries < 8; ++tries) {
            const Hash256& cand = pool[rng.uniform(pool.size())];
            if (std::find(ps.begin(), ps.end(), cand) == ps.end())
                ps.push_back(cand);
        }
        pool.push_back(dag.add(ps, 1000 + i));
    }
    return dag;
}

TEST(DagStore, LinearOrderIsTopologicalPermutation) {
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        const OracleDag dag = random_dag(seed, 60);
        const auto lo = dag.store.linear_order();

        // Permutation: every record exactly once, genesis first.
        ASSERT_EQ(lo.order.size(), dag.store.size());
        EXPECT_EQ(lo.order.front(), dag.genesis.hash());
        std::set<Hash256> seen;
        for (const Hash256& x : lo.order) EXPECT_TRUE(seen.insert(x).second);

        // Topological: every parent precedes its child.
        std::map<Hash256, std::size_t> pos;
        for (std::size_t i = 0; i < lo.order.size(); ++i) pos[lo.order[i]] = i;
        for (const auto& [hash, ps] : dag.parents)
            for (const Hash256& p : ps) EXPECT_LT(pos.at(p), pos.at(hash));

        EXPECT_GE(lo.blue_count, 1u);
        EXPECT_LE(lo.blue_count, lo.order.size());
    }
}

TEST(DagStore, IsAncestorMatchesBruteForceClosure) {
    const OracleDag dag = random_dag(7, 40);
    std::vector<Hash256> all{dag.genesis.hash()};
    all.insert(all.end(), dag.inserted.begin(), dag.inserted.end());
    for (const Hash256& a : all) {
        const std::set<Hash256> past = dag.past_of(a);
        for (const Hash256& b : all)
            EXPECT_EQ(dag.store.is_ancestor(b, a), past.count(b) != 0)
                << "is_ancestor mismatch";
    }
}

TEST(DagStore, BlueScoreStrictlyIncreasesAlongEdges) {
    const OracleDag dag = random_dag(11, 60);
    for (const Hash256& hash : dag.inserted)
        for (const Hash256& p : dag.parents.at(hash))
            EXPECT_GT(dag.store.blue_score_of(hash), dag.store.blue_score_of(p));
}

TEST(DagStore, LinearOrderDeterministicAcrossRebuilds) {
    const OracleDag a = random_dag(13, 50);
    const OracleDag b = random_dag(13, 50);
    EXPECT_EQ(a.store.linear_order().order, b.store.linear_order().order);
}

TEST(DagStore, HonestParallelRecordsStayBlue) {
    // A width-2 honest lattice: every record sees both records of the previous
    // rank. With k=4 nothing should ever turn red.
    OracleDag dag(DagStore::Config{4, 1'000'000, 1'000});
    std::vector<Hash256> prev{dag.genesis.hash()};
    std::uint64_t salt = 1;
    for (int rank = 0; rank < 10; ++rank) {
        std::vector<Hash256> next;
        next.push_back(dag.add(prev, salt++));
        next.push_back(dag.add(prev, salt++));
        prev = next;
    }
    const auto lo = dag.store.linear_order();
    EXPECT_EQ(lo.blue_count, lo.order.size());
}

TEST(DagStore, ConfirmationCountersAndObserver) {
    DagStore::Config cfg;
    cfg.confirm_weight = 3;
    cfg.confirm_entropy = 2;
    OracleDag dag(cfg);

    std::vector<Hash256> confirmed;
    dag.store.set_confirm_observer(
        [&](const Hash256& hash, const DagStore::Entry& entry, double at) {
            confirmed.push_back(hash);
            EXPECT_GE(entry.weight, cfg.confirm_weight);
            EXPECT_GE(entry.entropy, cfg.confirm_entropy);
            EXPECT_EQ(at, 0.0);
        });

    // A chain of records alternating between two proposers: each new record
    // approves all ancestors, so weight(first) grows 1 per insert and entropy
    // reaches 2 after both proposers contributed.
    ledger::Block block;
    set_parents(block.header, {dag.genesis.hash()});
    block.header.proposer = crypto::PrivateKey::from_seed("p0").address();
    block.header.nonce = 1;
    const Hash256 first = block.hash();
    dag.store.insert(block, 0.0);
    dag.parents[first] = {dag.genesis.hash()};

    Hash256 tip = first;
    for (int i = 0; i < 4; ++i) {
        ledger::Block next;
        set_parents(next.header, {tip});
        next.header.proposer =
            crypto::PrivateKey::from_seed("p" + std::to_string(i % 2)).address();
        next.header.nonce = 100 + i;
        tip = next.hash();
        dag.store.insert(next, 0.0);
    }

    // first has future cone {4 descendants} >= 3 with 2 distinct proposers.
    EXPECT_TRUE(dag.store.entry(first).confirmed);
    EXPECT_FALSE(confirmed.empty());
    EXPECT_EQ(confirmed.front(), first); // ancestor-first propagation
    EXPECT_EQ(dag.store.confirmed_count(), confirmed.size());
    // Approver bookkeeping freed at confirmation.
    EXPECT_TRUE(dag.store.entry(first).approver_proposers.empty());
}

// --- DagNetwork end-to-end --------------------------------------------------------

DagParams fast_params() {
    DagParams params;
    params.node_count = 6;
    params.record_interval = 5.0;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    params.link.latency_mean = 0.05;
    params.link.latency_jitter = 0.02;
    return params;
}

ledger::Transaction record_tx(const std::string& sender, std::uint64_t nonce) {
    ledger::Transaction tx;
    tx.kind = ledger::TxKind::kRecord;
    tx.sender_pubkey = to_bytes(sender);
    tx.nonce = nonce;
    tx.data = to_bytes("dag payload");
    tx.declared_fee = 500;
    return tx;
}

TEST(DagNetwork, ConvergesToIdenticalOrderAndState) {
    DagNetwork net(fast_params(), 2601);
    net.start();
    for (std::uint64_t i = 0; i < 40; ++i) {
        net.run_for(5.0);
        net.submit_transaction(record_tx("alice", i),
                               static_cast<net::NodeId>(i % 6));
    }
    net.run_for(120.0);

    EXPECT_TRUE(net.converged());
    EXPECT_GT(net.stats().records_produced, 20u);
    const Hash256 digest = net.order_digest(0);
    for (net::NodeId node = 1; node < 6; ++node) {
        EXPECT_EQ(net.order_digest(node), digest);
        // Identical order => identical replayed state.
        Writer wa, wb;
        net.utxo_of(0).encode(wa);
        net.utxo_of(node).encode(wb);
        EXPECT_EQ(wa.data(), wb.data());
    }
    EXPECT_GT(net.confirmed_tx_count(), 0u);
    EXPECT_GT(net.confirmed_record_count(), 0u);
    EXPECT_GT(net.blue_ratio(), 0.9); // honest low-latency traffic stays blue
}

TEST(DagNetwork, DuplicateSubmissionsApplyOnce) {
    DagNetwork net(fast_params(), 2602);
    net.start();
    const ledger::Transaction tx = record_tx("bob", 7);
    // The same transaction injected at two distant origins lands in parallel
    // records; execution must count it once and skip the duplicate.
    net.submit_transaction(tx, 0);
    net.submit_transaction(tx, 5);
    net.run_for(200.0);

    EXPECT_TRUE(net.converged());
    EXPECT_EQ(net.confirmed_tx_count(), 1u);
}

TEST(DagNetwork, ConflictingSpendsResolveFirstInOrder) {
    DagParams params = fast_params();
    params.record_interval = 2.0; // dense DAG: parallel records are the norm
    DagNetwork net(params, 2603);
    net.start();
    net.run_for(120.0); // accumulate coinbase outputs to double-spend

    // Find a spendable miner coin on peer 0 and race two conflicting spends
    // from opposite ends of the overlay.
    const auto coins = net.utxo_of(0).coins_of(net.miner_address(0));
    ASSERT_FALSE(coins.empty());
    const auto& [op, coin] = coins.front();
    ledger::Transaction spend_a = ledger::make_transfer(
        {op}, {ledger::TxOutput{coin.value,
                                crypto::PrivateKey::from_seed("ra").address()}});
    ledger::Transaction spend_b = ledger::make_transfer(
        {op}, {ledger::TxOutput{coin.value,
                                crypto::PrivateKey::from_seed("rb").address()}});
    net.submit_transaction(spend_a, 0);
    net.submit_transaction(spend_b, 5);
    net.run_for(200.0);

    EXPECT_TRUE(net.converged());
    // Exactly one spend won; every peer agrees on which.
    const bool a_applied =
        net.utxo_of(0).balance_of(
            crypto::PrivateKey::from_seed("ra").address()) > 0;
    const bool b_applied =
        net.utxo_of(0).balance_of(
            crypto::PrivateKey::from_seed("rb").address()) > 0;
    EXPECT_NE(a_applied, b_applied);
    for (net::NodeId node = 1; node < 6; ++node)
        EXPECT_EQ(net.order_digest(node), net.order_digest(0));
    EXPECT_FALSE(net.utxo_of(0).contains(op)); // the coin is spent either way
}

TEST(DagNetwork, ByteIdenticalReplayUnderSameSeed) {
    const auto run_once = [] {
        DagParams params = fast_params();
        params.record_interval = 2.0;
        DagNetwork net(params, 2604);
        net.start();
        for (std::uint64_t i = 0; i < 30; ++i) {
            net.run_for(3.0);
            net.submit_transaction(record_tx("carol", i),
                                   static_cast<net::NodeId>(i % 6));
        }
        net.run_for(60.0);
        return net.order_digest(0);
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(DagNetwork, LinearizationIdenticalAcrossThreadCounts) {
    // The linear order is a pure function of DAG contents; running the
    // validation pool at different widths must not change a byte of it.
    const auto run_at = [](std::size_t workers) {
        ThreadPool::set_global_workers(workers);
        DagParams params = fast_params();
        params.record_interval = 2.0;
        params.validation.sig_mode = ledger::SigCheckMode::kFull;
        DagNetwork net(params, 2605);
        net.start();
        net.run_for(150.0);
        return net.order_digest(0);
    };
    const Hash256 single = run_at(1);
    const Hash256 wide = run_at(4);
    ThreadPool::set_global_workers(0); // restore default
    EXPECT_EQ(single, wide);
}

TEST(DagNetwork, LostParentFetchRetriesUntilResolved) {
    // Regression (flushed out by E27's eclipse/crash cells): an orphan-parent
    // fetch used to be sent exactly once — if the d/getblock or its reply was
    // lost, or the asked peer answered d/notfound, the hash stayed pinned in
    // the requested-set and every later request for it early-returned, so the
    // orphan (and everything descending from it) could never resolve and the
    // network never reconverged. Engineer the stall deterministically: node 0
    // builds a private chain of records, then only the *newest* is published.
    // Peers that first see it through a relay ask the relaying peer for the
    // missing ancestors — which that peer does not hold either — and without
    // retry rotation the d/notfound answer would strand the fetch forever
    // (nothing ever re-broadcasts the ancestors).
    DagParams params = fast_params();
    params.sync_retry_interval = 5.0;
    DagNetwork net(params, 2608);
    net.start();

    std::vector<Hash256> withheld;
    net.set_produced_record_hook(
        [&withheld](net::NodeId node, const ledger::Block& record) {
            if (node != 0) return true;
            withheld.push_back(record.hash());
            return false;
        });
    while (withheld.size() < 4) net.run_for(5.0);
    net.set_produced_record_hook(nullptr);

    net.publish_record(0, withheld.back());
    net.run_for(300.0);

    EXPECT_TRUE(net.converged());
    EXPECT_GT(net.stats().sync_retries, 0u);
    // The once-withheld ancestors reached every peer through the retries.
    for (net::NodeId node = 1; node < 6; ++node)
        for (const Hash256& hash : withheld)
            EXPECT_NE(net.store_of(node).find(hash), nullptr);
}

TEST(DagNetwork, ReconvergesAfterPartitionAndCrash) {
    // The fault-composition flavor of the same regression: cut a minority
    // partition, crash one of its members, heal and recover. In-flight
    // fetches at the cut/crash instants are lost on the dead links; the retry
    // path must still drain every orphan once the topology heals.
    DagParams params = fast_params();
    params.sync_retry_interval = 5.0;
    DagNetwork net(params, 2609);
    net::FaultPlan plan;
    plan.cut(60.0, "dagtest/split", {{0, 1}, {2, 3, 4, 5}});
    plan.crash(100.0, 1);
    plan.heal(120.0, "dagtest/split");
    plan.recover(140.0, 1);
    net.network().apply(plan);
    net.start();
    net.run_for(600.0);

    EXPECT_TRUE(net.converged());
    const Hash256 digest = net.order_digest(0);
    for (net::NodeId node = 1; node < 6; ++node)
        EXPECT_EQ(net.order_digest(node), digest);
}

TEST(DagNetwork, LifecycleReachesWeightFinality) {
    DagNetwork net(fast_params(), 2606);
    net.start();
    for (std::uint64_t i = 0; i < 20; ++i) {
        net.run_for(4.0);
        net.submit_transaction(record_tx("dave", i), 0);
    }
    net.run_for(300.0);

    const auto& lifecycle = net.lifecycle();
    EXPECT_GT(lifecycle.tracked(), 0u);
    EXPECT_GT(lifecycle.finalized(), 0u);
    EXPECT_LE(lifecycle.finalized(), lifecycle.tracked());
    // Stage ordering for the first tx: submit <= included <= final.
    const auto* rec = lifecycle.find(record_tx("dave", 0).txid());
    ASSERT_NE(rec, nullptr);
    ASSERT_TRUE(rec->submitted.has_value());
    ASSERT_TRUE(rec->included.has_value());
    ASSERT_TRUE(rec->final_at.has_value());
    EXPECT_LE(*rec->submitted, *rec->included);
    EXPECT_LE(*rec->included, *rec->final_at);
}

TEST(DagNetwork, ChainEventsFireOnLinearOrder) {
    DagNetwork net(fast_params(), 2607);
    std::uint64_t inserted = 0, reorgs = 0, tip_changes = 0;
    std::uint64_t last_height = 0;
    net.events(0).on_block_inserted = [&](const ledger::Block&, SimTime) {
        ++inserted;
    };
    net.events(0).on_reorg = [&](const std::vector<Hash256>&,
                                 const std::vector<Hash256>&, SimTime) { ++reorgs; };
    net.events(0).on_tip_changed = [&](const Hash256&, std::uint64_t height,
                                       SimTime) {
        ++tip_changes;
        last_height = height;
    };
    net.start();
    net.run_for(300.0);

    EXPECT_GT(inserted, 0u);
    EXPECT_GT(tip_changes, 0u);
    EXPECT_GT(last_height, 0u); // heights are linear-order positions
    // Re-linearizations surfaced as reorg events match the stats counter
    // only for peer 0 (stats aggregate all peers), so just sanity-check.
    if (net.stats().relinearizations == 0) EXPECT_EQ(reorgs, 0u);
}

} // namespace
