// Tests for the discrete-event scheduler, the simulated network, and the gossip
// overlay: ordering, cancellation, latency models, topology builders, crash
// behaviour, dedup, and propagation telemetry.
#include <gtest/gtest.h>

#include <queue>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/gossip.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace dlt;
using namespace dlt::sim;
using namespace dlt::net;

// --- Scheduler ---------------------------------------------------------------------

TEST(Scheduler, RunsInTimeOrder) {
    Scheduler sched;
    std::vector<int> order;
    sched.schedule_at(3.0, [&] { order.push_back(3); });
    sched.schedule_at(1.0, [&] { order.push_back(1); });
    sched.schedule_at(2.0, [&] { order.push_back(2); });
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sched.now(), 3.0);
}

TEST(Scheduler, FifoWithinSameTime) {
    Scheduler sched;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) sched.schedule_at(1.0, [&, i] { order.push_back(i); });
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, HandlersCanScheduleMore) {
    Scheduler sched;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10) sched.schedule_after(1.0, chain);
    };
    sched.schedule_after(1.0, chain);
    sched.run();
    EXPECT_EQ(fired, 10);
    EXPECT_DOUBLE_EQ(sched.now(), 10.0);
}

TEST(Scheduler, CancelPreventsExecution) {
    Scheduler sched;
    bool ran = false;
    const EventId id = sched.schedule_at(1.0, [&] { ran = true; });
    EXPECT_TRUE(sched.cancel(id));
    EXPECT_FALSE(sched.cancel(id)); // second cancel is a no-op
    sched.run();
    EXPECT_FALSE(ran);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
    Scheduler sched;
    int count = 0;
    for (int i = 1; i <= 10; ++i) sched.schedule_at(i, [&] { ++count; });
    const std::size_t processed = sched.run_until(5.5);
    EXPECT_EQ(processed, 5u);
    EXPECT_EQ(count, 5);
    EXPECT_DOUBLE_EQ(sched.now(), 5.5);
    sched.run();
    EXPECT_EQ(count, 10);
}

TEST(Scheduler, PastSchedulingRejected) {
    Scheduler sched;
    sched.schedule_at(5.0, [] {});
    sched.run();
    EXPECT_THROW(sched.schedule_at(1.0, [] {}), ContractViolation);
}

// --- Network -------------------------------------------------------------------------

struct Inbox {
    std::vector<Delivery> messages;
    auto handler() {
        return [this](const Delivery& d) { messages.push_back(d); };
    }
};

TEST(Network, DeliversWithLatency) {
    Scheduler sched;
    Network net(sched, Rng(1));
    Inbox a, b;
    const NodeId na = net.add_node(a.handler());
    const NodeId nb = net.add_node(b.handler());
    LinkParams link;
    link.latency_mean = 0.1;
    link.latency_jitter = 0;
    link.bandwidth_bps = 0; // no transfer delay
    net.connect(na, nb, link);

    net.send(na, nb, "ping", to_bytes("hello"));
    EXPECT_TRUE(b.messages.empty());
    sched.run();
    ASSERT_EQ(b.messages.size(), 1u);
    EXPECT_EQ(b.messages[0].from, na);
    EXPECT_EQ(b.messages[0].topic, "ping");
    EXPECT_DOUBLE_EQ(sched.now(), 0.1);
}

TEST(Network, BandwidthAddsTransferDelay) {
    Scheduler sched;
    Network net(sched, Rng(2));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    LinkParams link;
    link.latency_mean = 0;
    link.latency_jitter = 0;
    link.bandwidth_bps = 8000; // 1000 bytes/sec
    net.connect(a, b, link);
    net.send(a, b, "data", Bytes(500, 0xAB));
    sched.run();
    EXPECT_DOUBLE_EQ(sched.now(), 0.5); // 500 bytes at 1000 B/s
}

TEST(Network, SendWithoutLinkThrows) {
    Scheduler sched;
    Network net(sched, Rng(3));
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node([](const Delivery&) {});
    EXPECT_THROW(net.send(a, b, "x", Bytes{}), ValidationError);
}

TEST(Network, CrashedNodeDropsMessages) {
    Scheduler sched;
    Network net(sched, Rng(4));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    net.connect(a, b);
    net.set_crashed(b, true);
    net.send(a, b, "x", to_bytes("payload"));
    sched.run();
    EXPECT_TRUE(inbox.messages.empty());
    EXPECT_EQ(net.stats().messages_dropped, 1u);

    net.set_crashed(b, false);
    net.send(a, b, "x", to_bytes("payload"));
    sched.run();
    EXPECT_EQ(inbox.messages.size(), 1u);
}

TEST(Network, FullMeshConnectsEveryPair) {
    Scheduler sched;
    Network net(sched, Rng(5));
    for (int i = 0; i < 6; ++i) net.add_node([](const Delivery&) {});
    net.build_full_mesh();
    for (NodeId i = 0; i < 6; ++i)
        for (NodeId j = 0; j < 6; ++j)
            if (i != j) {
                EXPECT_TRUE(net.connected(i, j));
            }
}

TEST(Network, OverlayMeetsMinimumDegree) {
    Scheduler sched;
    Network net(sched, Rng(6));
    const std::size_t n = 30;
    for (std::size_t i = 0; i < n; ++i) net.add_node([](const Delivery&) {});
    net.build_unstructured_overlay(5);
    for (NodeId i = 0; i < n; ++i) EXPECT_GE(net.neighbors(i).size(), 2u);
}

TEST(Network, OverlayIsConnected) {
    Scheduler sched;
    Network net(sched, Rng(7));
    const std::size_t n = 40;
    for (std::size_t i = 0; i < n; ++i) net.add_node([](const Delivery&) {});
    net.build_unstructured_overlay(4);

    // BFS from node 0 must reach everyone (the ring guarantees it).
    std::vector<bool> seen(n, false);
    std::queue<NodeId> frontier;
    frontier.push(0);
    seen[0] = true;
    std::size_t reached = 1;
    while (!frontier.empty()) {
        const NodeId cur = frontier.front();
        frontier.pop();
        for (const NodeId next : net.neighbors(cur)) {
            if (!seen[next]) {
                seen[next] = true;
                ++reached;
                frontier.push(next);
            }
        }
    }
    EXPECT_EQ(reached, n);
}

TEST(Network, TrafficStatsAccumulate) {
    Scheduler sched;
    Network net(sched, Rng(8));
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node([](const Delivery&) {});
    net.connect(a, b);
    net.send(a, b, "x", Bytes(10, 0));
    net.send(b, a, "y", Bytes(20, 0));
    EXPECT_EQ(net.stats().messages_sent, 2u);
    EXPECT_EQ(net.stats().bytes_sent, 30u);
}

// --- Gossip ------------------------------------------------------------------------

struct GossipHarness {
    Scheduler sched;
    Network net;
    std::vector<int> deliveries;
    std::unique_ptr<GossipOverlay> overlay;

    GossipHarness(std::size_t n, GossipParams params, std::uint64_t seed = 42)
        : net(sched, Rng(seed)), deliveries(n, 0) {
        overlay = std::make_unique<GossipOverlay>(
            net, n, params,
            [this](NodeId node, const std::string&, ByteView) {
                ++deliveries[node];
            });
    }
};

TEST(Gossip, FloodReachesAllNodes) {
    GossipHarness h(25, GossipParams{.fanout = 0});
    h.net.build_unstructured_overlay(4);
    const Hash256 id = h.overlay->broadcast(0, "block", to_bytes("payload"));
    h.sched.run();
    EXPECT_DOUBLE_EQ(h.overlay->delivery_ratio(id), 1.0);
    for (const int count : h.deliveries) EXPECT_EQ(count, 1); // exactly-once
}

TEST(Gossip, FanoutThreeStillReachesMostNodes) {
    GossipHarness h(50, GossipParams{.fanout = 3});
    h.net.build_unstructured_overlay(6);
    const Hash256 id = h.overlay->broadcast(0, "tx", to_bytes("t"));
    h.sched.run();
    EXPECT_GT(h.overlay->delivery_ratio(id), 0.9);
}

TEST(Gossip, DistinctBroadcastsOfSamePayloadAreDistinct) {
    GossipHarness h(10, GossipParams{});
    h.net.build_full_mesh();
    const Hash256 id1 = h.overlay->broadcast(0, "tx", to_bytes("same"));
    h.sched.run();
    const Hash256 id2 = h.overlay->broadcast(1, "tx", to_bytes("same"));
    h.sched.run();
    EXPECT_NE(id1, id2);
    for (const int count : h.deliveries) EXPECT_EQ(count, 2);
}

TEST(Gossip, PropagationTimeGrowsSlowlyWithSize) {
    auto median_time = [](std::size_t n) {
        GossipHarness h(n, GossipParams{}, 7);
        h.net.build_unstructured_overlay(6);
        const Hash256 id = h.overlay->broadcast(0, "b", to_bytes("x"));
        h.sched.run();
        const auto t = h.overlay->time_to_quantile(id, 0.5);
        return t.value_or(1e9);
    };
    const double small = median_time(16);
    const double large = median_time(256);
    // 16x nodes should cost far less than 16x time (log-ish growth).
    EXPECT_LT(large, small * 6);
}

TEST(Gossip, RecordTracksArrivalTimes) {
    GossipHarness h(5, GossipParams{});
    h.net.build_full_mesh();
    const Hash256 id = h.overlay->broadcast(2, "b", to_bytes("x"));
    h.sched.run();
    const PropagationRecord* rec = h.overlay->record(id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->delivered, 5u);
    EXPECT_DOUBLE_EQ(rec->arrival.at(2), rec->origin_time); // origin is instant
}

} // namespace
