// Tests for the discrete-event scheduler, the simulated network, and the gossip
// overlay: ordering, cancellation, latency models, topology builders, crash
// behaviour, dedup, and propagation telemetry.
#include <gtest/gtest.h>

#include <queue>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/gossip.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace dlt;
using namespace dlt::sim;
using namespace dlt::net;

// --- Scheduler ---------------------------------------------------------------------

TEST(Scheduler, RunsInTimeOrder) {
    Scheduler sched;
    std::vector<int> order;
    sched.schedule_at(3.0, [&] { order.push_back(3); });
    sched.schedule_at(1.0, [&] { order.push_back(1); });
    sched.schedule_at(2.0, [&] { order.push_back(2); });
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sched.now(), 3.0);
}

TEST(Scheduler, FifoWithinSameTime) {
    Scheduler sched;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) sched.schedule_at(1.0, [&, i] { order.push_back(i); });
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, HandlersCanScheduleMore) {
    Scheduler sched;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10) sched.schedule_after(1.0, chain);
    };
    sched.schedule_after(1.0, chain);
    sched.run();
    EXPECT_EQ(fired, 10);
    EXPECT_DOUBLE_EQ(sched.now(), 10.0);
}

TEST(Scheduler, CancelPreventsExecution) {
    Scheduler sched;
    bool ran = false;
    const EventId id = sched.schedule_at(1.0, [&] { ran = true; });
    EXPECT_TRUE(sched.cancel(id));
    EXPECT_FALSE(sched.cancel(id)); // second cancel is a no-op
    sched.run();
    EXPECT_FALSE(ran);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
    Scheduler sched;
    int count = 0;
    for (int i = 1; i <= 10; ++i) sched.schedule_at(i, [&] { ++count; });
    const std::size_t processed = sched.run_until(5.5);
    EXPECT_EQ(processed, 5u);
    EXPECT_EQ(count, 5);
    EXPECT_DOUBLE_EQ(sched.now(), 5.5);
    sched.run();
    EXPECT_EQ(count, 10);
}

TEST(Scheduler, PastSchedulingRejected) {
    Scheduler sched;
    sched.schedule_at(5.0, [] {});
    sched.run();
    EXPECT_THROW(sched.schedule_at(1.0, [] {}), ContractViolation);
}

TEST(Scheduler, RunUntilFiresEventExactlyAtBoundary) {
    Scheduler sched;
    bool ran = false;
    sched.schedule_at(5.0, [&] { ran = true; });
    const std::size_t processed = sched.run_until(5.0);
    EXPECT_TRUE(ran); // t == boundary fires, not "strictly before"
    EXPECT_EQ(processed, 1u);
    EXPECT_DOUBLE_EQ(sched.now(), 5.0);
}

TEST(Scheduler, RunUntilAdvancesClockOnEmptyQueue) {
    Scheduler sched;
    EXPECT_EQ(sched.run_until(7.5), 0u);
    EXPECT_DOUBLE_EQ(sched.now(), 7.5);
    // And never moves it backwards.
    EXPECT_EQ(sched.run_until(3.0), 0u);
    EXPECT_DOUBLE_EQ(sched.now(), 7.5);
}

TEST(Scheduler, RunUntilSkipsCancelledHeapTopWithoutCounting) {
    Scheduler sched;
    int fired = 0;
    const EventId top = sched.schedule_at(1.0, [&] { ++fired; });
    sched.schedule_at(2.0, [&] { ++fired; });
    sched.schedule_at(3.0, [&] { ++fired; });
    ASSERT_TRUE(sched.cancel(top));
    // The cancelled entry sits at the heap top: it must be skipped silently,
    // not processed or counted.
    EXPECT_EQ(sched.run_until(2.5), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(sched.now(), 2.5);
    // The 3.0 event survives past the boundary.
    EXPECT_EQ(sched.pending(), 1u);
    sched.run();
    EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunUntilIgnoresCancelledEventsBeyondBoundary) {
    Scheduler sched;
    int fired = 0;
    sched.schedule_at(1.0, [&] { ++fired; });
    const EventId late = sched.schedule_at(10.0, [&] { ++fired; });
    ASSERT_TRUE(sched.cancel(late));
    EXPECT_EQ(sched.run_until(5.0), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sched.idle());
}

// --- Network -------------------------------------------------------------------------

struct Inbox {
    std::vector<Delivery> messages;
    auto handler() {
        return [this](const Delivery& d) { messages.push_back(d); };
    }
};

TEST(Network, DeliversWithLatency) {
    Scheduler sched;
    Network net(sched, Rng(1));
    Inbox a, b;
    const NodeId na = net.add_node(a.handler());
    const NodeId nb = net.add_node(b.handler());
    LinkParams link;
    link.latency_mean = 0.1;
    link.latency_jitter = 0;
    link.bandwidth_bps = 0; // no transfer delay
    net.connect(na, nb, link);

    net.send(na, nb, "ping", to_bytes("hello"));
    EXPECT_TRUE(b.messages.empty());
    sched.run();
    ASSERT_EQ(b.messages.size(), 1u);
    EXPECT_EQ(b.messages[0].from, na);
    EXPECT_EQ(b.messages[0].topic, "ping");
    EXPECT_DOUBLE_EQ(sched.now(), 0.1);
}

TEST(Network, BandwidthAddsTransferDelay) {
    Scheduler sched;
    Network net(sched, Rng(2));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    LinkParams link;
    link.latency_mean = 0;
    link.latency_jitter = 0;
    link.bandwidth_bps = 8000; // 1000 bytes/sec
    net.connect(a, b, link);
    net.send(a, b, "data", Bytes(500, 0xAB));
    sched.run();
    EXPECT_DOUBLE_EQ(sched.now(), 0.5); // 500 bytes at 1000 B/s
}

TEST(Network, SendWithoutLinkThrows) {
    Scheduler sched;
    Network net(sched, Rng(3));
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node([](const Delivery&) {});
    EXPECT_THROW(net.send(a, b, "x", Bytes{}), ValidationError);
}

TEST(Network, CrashedNodeDropsMessages) {
    Scheduler sched;
    Network net(sched, Rng(4));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    net.connect(a, b);
    net.set_crashed(b, true);
    net.send(a, b, "x", to_bytes("payload"));
    sched.run();
    EXPECT_TRUE(inbox.messages.empty());
    EXPECT_EQ(net.stats().messages_dropped, 1u);

    net.set_crashed(b, false);
    net.send(a, b, "x", to_bytes("payload"));
    sched.run();
    EXPECT_EQ(inbox.messages.size(), 1u);
}

TEST(Network, FullMeshConnectsEveryPair) {
    Scheduler sched;
    Network net(sched, Rng(5));
    for (int i = 0; i < 6; ++i) net.add_node([](const Delivery&) {});
    net.build_full_mesh();
    for (NodeId i = 0; i < 6; ++i)
        for (NodeId j = 0; j < 6; ++j)
            if (i != j) {
                EXPECT_TRUE(net.connected(i, j));
            }
}

TEST(Network, OverlayMeetsMinimumDegree) {
    Scheduler sched;
    Network net(sched, Rng(6));
    const std::size_t n = 30;
    for (std::size_t i = 0; i < n; ++i) net.add_node([](const Delivery&) {});
    net.build_unstructured_overlay(5);
    for (NodeId i = 0; i < n; ++i) EXPECT_GE(net.neighbors(i).size(), 2u);
}

TEST(Network, OverlayIsConnected) {
    Scheduler sched;
    Network net(sched, Rng(7));
    const std::size_t n = 40;
    for (std::size_t i = 0; i < n; ++i) net.add_node([](const Delivery&) {});
    net.build_unstructured_overlay(4);

    // BFS from node 0 must reach everyone (the ring guarantees it).
    std::vector<bool> seen(n, false);
    std::queue<NodeId> frontier;
    frontier.push(0);
    seen[0] = true;
    std::size_t reached = 1;
    while (!frontier.empty()) {
        const NodeId cur = frontier.front();
        frontier.pop();
        for (const NodeId next : net.neighbors(cur)) {
            if (!seen[next]) {
                seen[next] = true;
                ++reached;
                frontier.push(next);
            }
        }
    }
    EXPECT_EQ(reached, n);
}

TEST(Network, TrafficStatsAccumulate) {
    Scheduler sched;
    Network net(sched, Rng(8));
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node([](const Delivery&) {});
    net.connect(a, b);
    net.send(a, b, "x", Bytes(10, 0));
    net.send(b, a, "y", Bytes(20, 0));
    EXPECT_EQ(net.stats().messages_sent, 2u);
    EXPECT_EQ(net.stats().bytes_sent, 30u);
}

TEST(Network, DuplicateConnectKeepsFirstLinkParams) {
    Scheduler sched;
    Network net(sched, Rng(9));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    LinkParams fast;
    fast.latency_mean = 0.1;
    fast.latency_jitter = 0;
    fast.bandwidth_bps = 0;
    net.connect(a, b, fast);

    LinkParams slow = fast;
    slow.latency_mean = 5.0;
    net.connect(a, b, slow); // ignored: the first link's parameters win

    // No parallel link appeared in the adjacency lists...
    EXPECT_EQ(net.neighbors(a).size(), 1u);
    EXPECT_EQ(net.neighbors(b).size(), 1u);
    // ...and delivery still runs at the first link's latency.
    net.send(a, b, "x", Bytes{});
    sched.run();
    ASSERT_EQ(inbox.messages.size(), 1u);
    EXPECT_DOUBLE_EQ(sched.now(), 0.1);
}

TEST(Network, CrashedSenderIsSilenced) {
    Scheduler sched;
    Network net(sched, Rng(10));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    net.connect(a, b);
    net.set_crashed(a, true);
    net.send(a, b, "x", to_bytes("leak"));
    sched.run();
    // Fail-stop: the send is swallowed, not counted as network traffic.
    EXPECT_TRUE(inbox.messages.empty());
    EXPECT_EQ(net.stats().messages_sent, 0u);
    EXPECT_EQ(net.stats().bytes_sent, 0u);
    EXPECT_EQ(net.stats().messages_from_crashed, 1u);
}

TEST(Network, InFlightMessagesFromCrashingSenderAreCut) {
    Scheduler sched;
    Network net(sched, Rng(11));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    net.connect(a, b);
    net.send(a, b, "x", to_bytes("in-flight"));
    net.set_crashed(a, true); // crash before the delivery event fires
    sched.run();
    EXPECT_TRUE(inbox.messages.empty());
    EXPECT_EQ(net.stats().messages_from_crashed, 1u);

    // After recovery the node speaks again.
    net.set_crashed(a, false);
    net.send(a, b, "x", to_bytes("alive"));
    sched.run();
    EXPECT_EQ(inbox.messages.size(), 1u);
}

// --- Fault injection -----------------------------------------------------------------

TEST(NetworkFaults, CertainLossDropsEveryMessage) {
    Scheduler sched;
    Network net(sched, Rng(20));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    LinkParams lossy;
    lossy.loss = 1.0;
    net.connect(a, b, lossy);
    for (int i = 0; i < 5; ++i) net.send(a, b, "x", Bytes(8, 0));
    sched.run();
    EXPECT_TRUE(inbox.messages.empty());
    EXPECT_EQ(net.stats().messages_sent, 5u);
    EXPECT_EQ(net.stats().messages_lost, 5u);
}

TEST(NetworkFaults, GlobalLossAppliesToEveryLink) {
    Scheduler sched;
    Network net(sched, Rng(21));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    net.connect(a, b); // default link: no per-link faults
    net.set_global_faults(FaultParams{.loss = 1.0, .duplicate = 0.0});
    net.send(a, b, "x", Bytes(8, 0));
    sched.run();
    EXPECT_TRUE(inbox.messages.empty());
    EXPECT_EQ(net.stats().messages_lost, 1u);

    net.set_global_faults(FaultParams{});
    net.send(a, b, "x", Bytes(8, 0));
    sched.run();
    EXPECT_EQ(inbox.messages.size(), 1u);
}

TEST(NetworkFaults, PartialLossDropsAboutTheConfiguredFraction) {
    Scheduler sched;
    Network net(sched, Rng(22));
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node([](const Delivery&) {});
    LinkParams lossy;
    lossy.loss = 0.3;
    net.connect(a, b, lossy);
    const int total = 2000;
    for (int i = 0; i < total; ++i) net.send(a, b, "x", Bytes(1, 0));
    sched.run();
    const double rate =
        static_cast<double>(net.stats().messages_lost) / total;
    EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(NetworkFaults, CertainDuplicationDeliversTwice) {
    Scheduler sched;
    Network net(sched, Rng(23));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    LinkParams dup;
    dup.duplicate = 1.0;
    net.connect(a, b, dup);
    net.send(a, b, "x", to_bytes("twin"));
    sched.run();
    EXPECT_EQ(inbox.messages.size(), 2u);
    EXPECT_EQ(net.stats().messages_sent, 1u);
    EXPECT_EQ(net.stats().messages_duplicated, 1u);
}

TEST(NetworkFaults, PartitionCutsCrossGroupTraffic) {
    Scheduler sched;
    Network net(sched, Rng(24));
    std::vector<Inbox> inboxes(4);
    for (auto& inbox : inboxes) net.add_node(inbox.handler());
    net.build_full_mesh();
    net.partition("split", {{0, 1}, {2, 3}});
    EXPECT_TRUE(net.partitioned(0, 2));
    EXPECT_TRUE(net.partitioned(1, 3));
    EXPECT_FALSE(net.partitioned(0, 1));
    EXPECT_FALSE(net.partitioned(2, 3));

    net.send(0, 1, "same-side", Bytes(1, 0));
    net.send(0, 2, "cross", Bytes(1, 0));
    net.send(3, 1, "cross", Bytes(1, 0));
    sched.run();
    EXPECT_EQ(inboxes[1].messages.size(), 1u);
    EXPECT_TRUE(inboxes[2].messages.empty());
    EXPECT_EQ(net.stats().messages_partitioned, 2u);

    net.heal("split");
    EXPECT_FALSE(net.partitioned(0, 2));
    net.send(0, 2, "healed", Bytes(1, 0));
    sched.run();
    EXPECT_EQ(inboxes[2].messages.size(), 1u);
}

TEST(NetworkFaults, PartitionCutsInFlightMessagesAtDelivery) {
    Scheduler sched;
    Network net(sched, Rng(25));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    net.connect(a, b);
    net.send(a, b, "x", Bytes(1, 0)); // in flight when the cut lands
    net.partition("split", {{a}, {b}});
    sched.run();
    EXPECT_TRUE(inbox.messages.empty());
    EXPECT_EQ(net.stats().messages_partitioned, 1u);
}

TEST(NetworkFaults, NodesOutsideEveryGroupAreUnaffected) {
    Scheduler sched;
    Network net(sched, Rng(26));
    std::vector<Inbox> inboxes(3);
    for (auto& inbox : inboxes) net.add_node(inbox.handler());
    net.build_full_mesh();
    net.partition("split", {{0}, {1}}); // node 2 is in no group
    net.send(0, 2, "x", Bytes(1, 0));
    net.send(1, 2, "x", Bytes(1, 0));
    sched.run();
    EXPECT_EQ(inboxes[2].messages.size(), 2u);
}

TEST(NetworkFaults, FaultPlanCutsAndHealsOnSchedule) {
    Scheduler sched;
    Network net(sched, Rng(27));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    LinkParams instant;
    instant.latency_mean = 0.001;
    instant.latency_jitter = 0;
    net.connect(a, b, instant);

    FaultPlan plan;
    plan.cut(10.0, "split", {{a}, {b}}).heal(20.0, "split");
    net.apply(plan);

    auto send_at = [&](SimTime t) {
        sched.schedule_at(t, [&net, a, b] { net.send(a, b, "x", Bytes(1, 0)); });
    };
    send_at(5.0);  // before the cut: delivered
    send_at(15.0); // during: dropped
    send_at(25.0); // after heal: delivered
    sched.run();
    EXPECT_EQ(inbox.messages.size(), 2u);
    EXPECT_EQ(net.stats().messages_partitioned, 1u);
}

TEST(NetworkFaults, ChurnParksAndRestoresLinks) {
    Scheduler sched;
    Network net(sched, Rng(28));
    std::vector<Inbox> inboxes(3);
    for (auto& inbox : inboxes) net.add_node(inbox.handler());
    net.build_full_mesh();

    net.leave(2);
    EXPECT_TRUE(net.is_departed(2));
    EXPECT_TRUE(net.neighbors(2).empty());
    EXPECT_FALSE(net.connected(0, 2));
    EXPECT_TRUE(net.connected(0, 1));
    EXPECT_THROW(net.send(0, 2, "x", Bytes{}), ValidationError);

    net.rejoin(2);
    EXPECT_FALSE(net.is_departed(2));
    EXPECT_EQ(net.neighbors(2).size(), 2u);
    net.send(0, 2, "back", Bytes(1, 0));
    sched.run();
    EXPECT_EQ(inboxes[2].messages.size(), 1u);
}

TEST(NetworkFaults, InFlightDeliveryToDepartedNodeIsDropped) {
    Scheduler sched;
    Network net(sched, Rng(29));
    Inbox inbox;
    const NodeId a = net.add_node([](const Delivery&) {});
    const NodeId b = net.add_node(inbox.handler());
    net.connect(a, b);
    net.send(a, b, "x", Bytes(1, 0));
    net.leave(b); // departs while the message is in flight
    sched.run();
    EXPECT_TRUE(inbox.messages.empty());
    EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST(NetworkFaults, SimultaneousChurnRestoresLinksAfterBothRejoin) {
    Scheduler sched;
    Network net(sched, Rng(30));
    for (int i = 0; i < 3; ++i) net.add_node([](const Delivery&) {});
    net.build_full_mesh();
    net.leave(0);
    net.leave(1);
    net.rejoin(0); // 1 still away: only the 0-2 link returns
    EXPECT_TRUE(net.connected(0, 2));
    EXPECT_FALSE(net.connected(0, 1));
    net.rejoin(1); // now 1 re-links to both
    EXPECT_TRUE(net.connected(0, 1));
    EXPECT_TRUE(net.connected(1, 2));
    EXPECT_EQ(net.neighbors(0).size(), 2u);
}

// --- Gossip ------------------------------------------------------------------------

struct GossipHarness {
    Scheduler sched;
    Network net;
    std::vector<int> deliveries;
    std::vector<std::pair<NodeId, NodeId>> arrivals; // (node, relayed-from)
    std::unique_ptr<GossipOverlay> overlay;

    GossipHarness(std::size_t n, GossipParams params, std::uint64_t seed = 42)
        : net(sched, Rng(seed)), deliveries(n, 0) {
        overlay = std::make_unique<GossipOverlay>(
            net, n, params,
            [this](NodeId node, NodeId from, const std::string&, ByteView) {
                ++deliveries[node];
                arrivals.emplace_back(node, from);
            });
    }
};

TEST(Gossip, FloodReachesAllNodes) {
    GossipHarness h(25, GossipParams{.fanout = 0});
    h.net.build_unstructured_overlay(4);
    const Hash256 id = h.overlay->broadcast(0, "block", to_bytes("payload"));
    h.sched.run();
    EXPECT_DOUBLE_EQ(h.overlay->delivery_ratio(id), 1.0);
    for (const int count : h.deliveries) EXPECT_EQ(count, 1); // exactly-once
}

TEST(Gossip, FanoutThreeStillReachesMostNodes) {
    GossipHarness h(50, GossipParams{.fanout = 3});
    h.net.build_unstructured_overlay(6);
    const Hash256 id = h.overlay->broadcast(0, "tx", to_bytes("t"));
    h.sched.run();
    EXPECT_GT(h.overlay->delivery_ratio(id), 0.9);
}

TEST(Gossip, DistinctBroadcastsOfSamePayloadAreDistinct) {
    GossipHarness h(10, GossipParams{});
    h.net.build_full_mesh();
    const Hash256 id1 = h.overlay->broadcast(0, "tx", to_bytes("same"));
    h.sched.run();
    const Hash256 id2 = h.overlay->broadcast(1, "tx", to_bytes("same"));
    h.sched.run();
    EXPECT_NE(id1, id2);
    for (const int count : h.deliveries) EXPECT_EQ(count, 2);
}

TEST(Gossip, PropagationTimeGrowsSlowlyWithSize) {
    auto median_time = [](std::size_t n) {
        GossipHarness h(n, GossipParams{}, 7);
        h.net.build_unstructured_overlay(6);
        const Hash256 id = h.overlay->broadcast(0, "b", to_bytes("x"));
        h.sched.run();
        const auto t = h.overlay->time_to_quantile(id, 0.5);
        return t.value_or(1e9);
    };
    const double small = median_time(16);
    const double large = median_time(256);
    // 16x nodes should cost far less than 16x time (log-ish growth).
    EXPECT_LT(large, small * 6);
}

TEST(Gossip, RecordTracksArrivalTimes) {
    GossipHarness h(5, GossipParams{});
    h.net.build_full_mesh();
    const Hash256 id = h.overlay->broadcast(2, "b", to_bytes("x"));
    h.sched.run();
    const PropagationRecord* rec = h.overlay->record(id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->delivered, 5u);
    EXPECT_DOUBLE_EQ(rec->arrival.at(2), rec->origin_time); // origin is instant
}

TEST(Gossip, RelayNeverEchoesToImmediateSender) {
    // Line topology 0-1-2: a flood from 0 needs exactly two transmissions
    // (0->1, 1->2). The old echo bug also sent 1->0 and 2->1.
    GossipHarness h(3, GossipParams{.fanout = 0});
    LinkParams link;
    link.latency_jitter = 0;
    h.net.connect(0, 1, link);
    h.net.connect(1, 2, link);
    h.overlay->broadcast(0, "b", to_bytes("x"));
    h.sched.run();
    EXPECT_EQ(h.net.stats().messages_sent, 2u);
    EXPECT_EQ(h.deliveries, (std::vector<int>{1, 1, 1}));
}

TEST(Gossip, FullMeshFloodMessageCountExcludesEchoes) {
    // Full mesh of n: the origin sends n-1 frames, every other node relays to
    // its n-2 non-sender neighbors. With echoes the relays would be n-1 each.
    const std::size_t n = 6;
    GossipHarness h(n, GossipParams{.fanout = 0});
    h.net.build_full_mesh();
    h.overlay->broadcast(0, "b", to_bytes("x"));
    h.sched.run();
    EXPECT_EQ(h.net.stats().messages_sent, (n - 1) + (n - 1) * (n - 2));
    for (const int count : h.deliveries) EXPECT_EQ(count, 1);
}

TEST(Gossip, FanoutSamplingExcludesTheSender) {
    // Node 1 has exactly two neighbors: the sender (0) and node 2. With
    // fanout 1 its single slot must go to node 2, never back to 0.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        GossipHarness h(3, GossipParams{.fanout = 1}, seed);
        h.net.connect(0, 1);
        h.net.connect(1, 2);
        h.net.connect(1, 0); // duplicate, ignored
        const Hash256 id = h.overlay->broadcast(0, "b", to_bytes("x"));
        h.sched.run();
        EXPECT_DOUBLE_EQ(h.overlay->delivery_ratio(id), 1.0) << "seed " << seed;
    }
}

TEST(Gossip, HandlerReportsTheRelayingPeer) {
    GossipHarness h(3, GossipParams{});
    h.net.connect(0, 1);
    h.net.connect(1, 2);
    h.overlay->broadcast(0, "b", to_bytes("x"));
    h.sched.run();
    ASSERT_EQ(h.arrivals.size(), 3u);
    EXPECT_EQ(h.arrivals[0], (std::pair<NodeId, NodeId>{0, 0})); // origin: from==self
    EXPECT_EQ(h.arrivals[1], (std::pair<NodeId, NodeId>{1, 0}));
    EXPECT_EQ(h.arrivals[2], (std::pair<NodeId, NodeId>{2, 1}));
}

TEST(Gossip, DirectMessagesBypassDedupAndRelay) {
    std::vector<std::pair<NodeId, std::string>> direct;
    Scheduler sched;
    Network net(sched, Rng(77));
    GossipOverlay overlay(net, 3, GossipParams{},
                          [&](NodeId node, NodeId from, const std::string& topic,
                              ByteView payload) {
                              if (topic.starts_with("d/"))
                                  direct.emplace_back(node,
                                                      topic + ":" +
                                                          std::to_string(from) + ":" +
                                                          std::string(payload.begin(),
                                                                      payload.end()));
                          });
    net.build_full_mesh();
    overlay.send_direct(0, 2, "d/ping", to_bytes("hi"));
    overlay.send_direct(0, 2, "d/ping", to_bytes("hi")); // identical: both arrive
    sched.run();
    ASSERT_EQ(direct.size(), 2u); // no dedup for direct messages
    EXPECT_EQ(direct[0].first, 2u);
    EXPECT_EQ(direct[0].second, "d/ping:0:hi");
    // Node 1 saw nothing: direct messages are not relayed.
    for (const auto& [node, what] : direct) EXPECT_NE(node, 1u);
}

TEST(Gossip, DirectSendToUnlinkedPeerIsDroppedSilently) {
    Scheduler sched;
    Network net(sched, Rng(78));
    int calls = 0;
    GossipOverlay overlay(net, 3, GossipParams{},
                          [&](NodeId, NodeId, const std::string&, ByteView) {
                              ++calls;
                          });
    net.connect(0, 1);
    overlay.send_direct(0, 2, "d/ping", to_bytes("hi")); // no link: dropped
    sched.run();
    EXPECT_EQ(calls, 0);
}

TEST(Gossip, DepartedNodeMissesBroadcastsUntilRejoin) {
    GossipHarness h(5, GossipParams{});
    h.net.build_full_mesh();
    h.net.leave(4);
    const Hash256 id = h.overlay->broadcast(0, "b", to_bytes("x"));
    h.sched.run();
    EXPECT_DOUBLE_EQ(h.overlay->delivery_ratio(id), 0.8); // 4 of 5
    EXPECT_EQ(h.deliveries[4], 0);

    h.net.rejoin(4);
    const Hash256 id2 = h.overlay->broadcast(0, "b", to_bytes("y"));
    h.sched.run();
    EXPECT_DOUBLE_EQ(h.overlay->delivery_ratio(id2), 1.0);
    EXPECT_EQ(h.deliveries[4], 1);
}

TEST(Gossip, PartitionConfinesBroadcastThenHealAllowsNewOnes) {
    GossipHarness h(6, GossipParams{});
    h.net.build_full_mesh();
    h.net.partition("split", {{0, 1, 2}, {3, 4, 5}});
    const Hash256 id = h.overlay->broadcast(0, "b", to_bytes("x"));
    h.sched.run();
    EXPECT_DOUBLE_EQ(h.overlay->delivery_ratio(id), 0.5);
    EXPECT_GT(h.net.stats().messages_partitioned, 0u);

    h.net.heal("split");
    const Hash256 id2 = h.overlay->broadcast(0, "b", to_bytes("y"));
    h.sched.run();
    EXPECT_DOUBLE_EQ(h.overlay->delivery_ratio(id2), 1.0);
}

TEST(Gossip, LossyOverlayStillMostlyDeliversViaRedundancy) {
    GossipHarness h(30, GossipParams{.fanout = 0}, 11);
    h.net.build_unstructured_overlay(6);
    h.net.set_global_faults(FaultParams{.loss = 0.2, .duplicate = 0.0});
    const Hash256 id = h.overlay->broadcast(0, "b", to_bytes("x"));
    h.sched.run();
    EXPECT_GT(h.overlay->delivery_ratio(id), 0.9); // flooding masks 20% loss
    EXPECT_GT(h.net.stats().messages_lost, 0u);
}

// Two identically-seeded runs with an active FaultPlan must produce
// byte-identical event traces (the determinism guarantee E22 rests on).
TEST(Gossip, FaultPlanRunsAreByteIdenticalUnderSameSeed) {
    const auto trace = [](std::uint64_t seed) {
        std::string log;
        Scheduler sched;
        Network net(sched, Rng(seed));
        GossipOverlay overlay(net, 8, GossipParams{.fanout = 2},
                              [&](NodeId node, NodeId from, const std::string& topic,
                                  ByteView) {
                                  char line[96];
                                  std::snprintf(line, sizeof line, "%.9f %u %u %s\n",
                                                sched.now(), node, from, topic.c_str());
                                  log += line;
                              });
        net.build_unstructured_overlay(4);
        net.set_global_faults(FaultParams{.loss = 0.1, .duplicate = 0.05});
        FaultPlan plan;
        plan.cut(0.05, "split", {{0, 1, 2, 3}, {4, 5, 6, 7}})
            .heal(0.2, "split")
            .leave(0.3, 6)
            .rejoin(0.4, 6)
            .crash(0.1, 5)
            .recover(0.25, 5);
        net.apply(plan);
        for (int i = 0; i < 6; ++i) {
            sched.schedule_at(i * 0.1, [&overlay, i] {
                overlay.broadcast(static_cast<NodeId>(i % 8), "b",
                                  Bytes(16, static_cast<std::uint8_t>(i)));
            });
        }
        sched.run();
        char stats[160];
        std::snprintf(stats, sizeof stats, "sent=%llu lost=%llu dup=%llu part=%llu\n",
                      static_cast<unsigned long long>(net.stats().messages_sent),
                      static_cast<unsigned long long>(net.stats().messages_lost),
                      static_cast<unsigned long long>(net.stats().messages_duplicated),
                      static_cast<unsigned long long>(net.stats().messages_partitioned));
        log += stats;
        return log;
    };
    const std::string a = trace(1234);
    const std::string b = trace(1234);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    // A different seed genuinely changes the trace (the test has teeth).
    EXPECT_NE(a, trace(4321));
}

TEST(Gossip, FaultPlanSameTimestampActionsRunInInsertionOrder) {
    // Pinned semantics (src/net/README.md): FaultPlan actions scheduled at
    // the same sim-time execute in plan *insertion order* — apply() schedules
    // them one by one and the Scheduler is FIFO at equal timestamps
    // (monotonic event ids break ties). E27's crash-during-reorg cells rely
    // on this: a heal and a recover landing on the same instant must take
    // effect in the order the plan author wrote them.
    const auto end_state = [](bool crash_first) {
        Scheduler sched;
        Network net(sched, Rng(7));
        for (int i = 0; i < 4; ++i) net.add_node([](const Delivery&) {});
        FaultPlan plan;
        if (crash_first)
            plan.crash(1.0, 3).recover(1.0, 3);
        else
            plan.recover(1.0, 3).crash(1.0, 3);
        // Same-instant partition churn on top: later same-time actions win.
        plan.cut(1.0, "blip", {{0, 1}, {2, 3}}).heal(1.0, "blip");
        net.apply(plan);
        sched.run();
        return net.is_crashed(3);
    };
    EXPECT_FALSE(end_state(true));  // crash then recover → alive
    EXPECT_TRUE(end_state(false));  // recover then crash → down
}

} // namespace
