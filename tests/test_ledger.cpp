// Tests for the ledger (data layer): transactions, blocks, difficulty encoding
// and retargeting, the UTXO set with apply/undo, chain store branch tracking
// (longest-chain and GHOST selection), mempool policy, and block validation.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "ledger/block.hpp"
#include "ledger/chain.hpp"
#include "ledger/difficulty.hpp"
#include "ledger/mempool.hpp"
#include "ledger/transaction.hpp"
#include "ledger/utxo.hpp"
#include "ledger/validation.hpp"

namespace {

using namespace dlt;
using namespace dlt::ledger;
using crypto::PrivateKey;
using crypto::U256;

const PrivateKey kAlice = PrivateKey::from_seed("alice");
const PrivateKey kBob = PrivateKey::from_seed("bob");
const PrivateKey kMiner = PrivateKey::from_seed("miner");

// --- Transactions ------------------------------------------------------------------

TEST(Transaction, SerializationRoundTrip) {
    Transaction tx = make_transfer({OutPoint{crypto::sha256(to_bytes("prev")), 1}},
                                   {TxOutput{5 * kCoin, kBob.address()}});
    tx.declared_fee = 1000;
    tx.sign_with(kAlice);
    const Bytes encoded = encode_to_bytes(tx);
    EXPECT_EQ(decode_from_bytes<Transaction>(encoded), tx);
}

TEST(Transaction, TxidCoversSignature) {
    Transaction tx = make_transfer({OutPoint{crypto::sha256(to_bytes("p")), 0}},
                                   {TxOutput{kCoin, kBob.address()}});
    const Hash256 before = tx.txid();
    tx.sign_with(kAlice);
    EXPECT_NE(tx.txid(), before);
}

TEST(Transaction, SighashExcludesSignatureButCoversPubkey) {
    Transaction tx = make_transfer({OutPoint{crypto::sha256(to_bytes("p")), 0}},
                                   {TxOutput{kCoin, kBob.address()}});
    tx.sign_with(kAlice);
    const Hash256 signed_hash = tx.sighash();

    // Stripping signatures leaves the sighash unchanged... (direct field
    // mutation requires dropping the hash caches, per the documented contract)
    Transaction stripped = tx;
    for (auto& in : stripped.inputs) in.signature.clear();
    stripped.invalidate_txid_cache();
    EXPECT_EQ(stripped.sighash(), signed_hash);

    // ...but the pubkey is committed (swapping it changes the message).
    Transaction swapped = tx;
    swapped.inputs[0].pubkey = kBob.public_key().encode();
    swapped.invalidate_txid_cache();
    EXPECT_NE(swapped.sighash(), signed_hash);
}

TEST(Transaction, SignVerify) {
    Transaction tx = make_transfer({OutPoint{crypto::sha256(to_bytes("p")), 0}},
                                   {TxOutput{kCoin, kBob.address()}});
    EXPECT_FALSE(tx.verify_signatures()); // unsigned
    tx.sign_with(kAlice);
    EXPECT_TRUE(tx.verify_signatures());
    tx.outputs[0].value += 1; // tamper after signing
    tx.invalidate_txid_cache();
    EXPECT_FALSE(tx.verify_signatures());
}

TEST(Transaction, AccountFamilySignVerify) {
    Transaction tx = make_record(kAlice.public_key(), 7, to_bytes("record"));
    tx.sign_with(kAlice);
    EXPECT_TRUE(tx.verify_signatures());
    tx.nonce = 8;
    tx.invalidate_txid_cache();
    EXPECT_FALSE(tx.verify_signatures());
}

TEST(Transaction, CoinbaseNeedsNoSignature) {
    const Transaction cb = make_coinbase(kMiner.address(), kInitialSubsidy, 1);
    EXPECT_TRUE(cb.verify_signatures());
    EXPECT_TRUE(cb.is_coinbase());
}

TEST(Transaction, CoinbasesAtDifferentHeightsDiffer) {
    EXPECT_NE(make_coinbase(kMiner.address(), kInitialSubsidy, 1).txid(),
              make_coinbase(kMiner.address(), kInitialSubsidy, 2).txid());
}

// --- Blocks ------------------------------------------------------------------------

TEST(Block, HeaderHashChangesWithNonce) {
    BlockHeader h;
    const Hash256 before = h.hash();
    h.nonce = 1;
    h.invalidate_hash_cache(); // direct mutation after hash(): documented contract
    EXPECT_NE(h.hash(), before);
}

TEST(Block, HeaderHashCacheInvalidation) {
    // The cache must survive copies and be dropped on invalidate.
    BlockHeader h;
    h.bits = 0x207fffff;
    const Hash256 original = h.hash();
    BlockHeader copy = h; // copies the cached hash
    EXPECT_EQ(copy.hash(), original);
    copy.nonce = 99;
    copy.invalidate_hash_cache();
    EXPECT_NE(copy.hash(), original);
    EXPECT_EQ(h.hash(), original); // the source header is untouched
    // Equality ignores the cache: a never-hashed header with equal fields
    // compares equal to a hashed one.
    BlockHeader fresh;
    fresh.bits = 0x207fffff;
    EXPECT_EQ(fresh, h);
}

TEST(Block, SerializationRoundTrip) {
    Block b = make_genesis("test", easy_bits(4));
    b.txs.push_back(make_coinbase(kMiner.address(), kInitialSubsidy, 0));
    b.header.merkle_root = b.compute_merkle_root();
    EXPECT_EQ(decode_from_bytes<Block>(encode_to_bytes(b)), b);
}

TEST(Block, GenesisIsDeterministicPerTag) {
    EXPECT_EQ(make_genesis("a", easy_bits(4)).hash(), make_genesis("a", easy_bits(4)).hash());
    EXPECT_NE(make_genesis("a", easy_bits(4)).hash(), make_genesis("b", easy_bits(4)).hash());
}

// --- Difficulty ----------------------------------------------------------------------

TEST(Difficulty, CompactRoundTripOnBitcoinGenesisBits) {
    const std::uint32_t bits = 0x1d00ffff; // Bitcoin's genesis difficulty
    const U256 target = compact_to_target(bits);
    EXPECT_EQ(target_to_compact(target), bits);
    EXPECT_EQ(target.hex(),
              "00000000ffff0000000000000000000000000000000000000000000000000000");
}

TEST(Difficulty, EasyBitsMatchShift) {
    const U256 target = compact_to_target(easy_bits(8));
    // Compact encoding truncates the mantissa; high byte must match max>>8.
    EXPECT_LE(target, U256::max() >> 8);
    EXPECT_GT(target, U256::max() >> 10);
}

TEST(Difficulty, HashMeetsTargetBoundary) {
    const U256 target = U256::from_hex("0fffffffffffffffffffffffffffffffffffffff"
                                       "ffffffffffffffffffffffff");
    Hash256 under{};
    under[0] = 0x0f;
    EXPECT_TRUE(hash_meets_target(under, target));
    Hash256 over{};
    over[0] = 0x10;
    EXPECT_FALSE(hash_meets_target(over, target));
}

TEST(Difficulty, RetargetRaisesDifficultyWhenBlocksTooFast) {
    RetargetParams params;
    const std::uint32_t bits = easy_bits(16);
    // Blocks came in 2x too fast -> target halves (difficulty doubles).
    const std::uint32_t harder = retarget(
        bits, params.target_spacing * params.interval_blocks / 2.0, params);
    EXPECT_LT(compact_to_target(harder), compact_to_target(bits));
}

TEST(Difficulty, RetargetClampsAdjustment) {
    RetargetParams params;
    params.max_adjustment = 4.0;
    const std::uint32_t bits = easy_bits(16);
    const U256 before = compact_to_target(bits);
    // 100x too fast is clamped to a 4x harder target.
    const U256 after = compact_to_target(retarget(
        bits, params.target_spacing * params.interval_blocks / 100.0, params));
    const U256 ratio = before / after;
    EXPECT_GE(ratio, U256(3));
    EXPECT_LE(ratio, U256(5));
}

TEST(Difficulty, WorkGrowsAsTargetShrinks) {
    EXPECT_GT(work_from_target(U256::max() >> 20), work_from_target(U256::max() >> 10));
}

// --- UTXO ---------------------------------------------------------------------------

Block chain_block(const Block& parent, std::vector<Transaction> txs, Amount fees = 0) {
    Block b;
    b.header.prev_hash = parent.hash();
    b.header.height = parent.header.height + 1;
    b.txs.push_back(
        make_coinbase(kMiner.address(), block_subsidy(b.header.height) + fees,
                      b.header.height));
    for (auto& tx : txs) b.txs.push_back(std::move(tx));
    b.header.merkle_root = b.compute_merkle_root();
    return b;
}

TEST(Utxo, CoinbaseCreatesSpendableOutput) {
    UtxoSet utxo;
    const Block genesis = make_genesis("utxo-test", easy_bits(2));
    const Block b1 = chain_block(genesis, {});
    utxo.apply_block(b1);
    EXPECT_EQ(utxo.size(), 1u);
    EXPECT_EQ(utxo.balance_of(kMiner.address()), block_subsidy(1));
}

TEST(Utxo, TransferMovesValueAndPaysFee) {
    UtxoSet utxo;
    const Block genesis = make_genesis("utxo-test", easy_bits(2));
    const Block b1 = chain_block(genesis, {});
    utxo.apply_block(b1);

    const auto coins = utxo.coins_of(kMiner.address());
    ASSERT_EQ(coins.size(), 1u);
    Transaction spend = make_transfer(
        {coins[0].first}, {TxOutput{coins[0].second.value - 1000, kAlice.address()}});
    spend.sign_with(kMiner);

    UtxoUndo undo;
    EXPECT_EQ(utxo.check_and_apply(spend, undo), 1000);
    EXPECT_EQ(utxo.balance_of(kAlice.address()), coins[0].second.value - 1000);
    EXPECT_EQ(utxo.balance_of(kMiner.address()), 0);
}

TEST(Utxo, DoubleSpendRejected) {
    UtxoSet utxo;
    const Block genesis = make_genesis("utxo-test", easy_bits(2));
    utxo.apply_block(chain_block(genesis, {}));
    const auto coins = utxo.coins_of(kMiner.address());
    Transaction spend = make_transfer({coins[0].first},
                                      {TxOutput{kCoin, kAlice.address()}});
    UtxoUndo undo;
    utxo.check_and_apply(spend, undo);
    Transaction again = make_transfer({coins[0].first},
                                      {TxOutput{kCoin, kBob.address()}});
    EXPECT_THROW(utxo.check_transaction(again), ValidationError);
}

TEST(Utxo, IntraTransactionDuplicateInputRejected) {
    UtxoSet utxo;
    const Block genesis = make_genesis("utxo-test", easy_bits(2));
    utxo.apply_block(chain_block(genesis, {}));
    const auto coins = utxo.coins_of(kMiner.address());
    const Transaction bad = make_transfer({coins[0].first, coins[0].first},
                                          {TxOutput{kCoin, kAlice.address()}});
    EXPECT_THROW(utxo.check_transaction(bad), ValidationError);
}

TEST(Utxo, OutputsExceedingInputsRejected) {
    UtxoSet utxo;
    const Block genesis = make_genesis("utxo-test", easy_bits(2));
    utxo.apply_block(chain_block(genesis, {}));
    const auto coins = utxo.coins_of(kMiner.address());
    const Transaction bad = make_transfer(
        {coins[0].first}, {TxOutput{coins[0].second.value + 1, kAlice.address()}});
    EXPECT_THROW(utxo.check_transaction(bad), ValidationError);
}

TEST(Utxo, UndoBlockRestoresExactState) {
    UtxoSet utxo;
    const Block genesis = make_genesis("utxo-test", easy_bits(2));
    const Block b1 = chain_block(genesis, {});
    utxo.apply_block(b1);

    const auto coins = utxo.coins_of(kMiner.address());
    Transaction spend = make_transfer(
        {coins[0].first}, {TxOutput{coins[0].second.value / 2, kAlice.address()},
                           TxOutput{coins[0].second.value / 2, kBob.address()}});
    const Block b2 = chain_block(b1, {spend});
    const Amount miner_before = utxo.balance_of(kMiner.address());
    const std::size_t size_before = utxo.size();

    const UtxoUndo undo = utxo.apply_block(b2);
    EXPECT_NE(utxo.size(), size_before);
    utxo.undo_block(undo);
    EXPECT_EQ(utxo.size(), size_before);
    EXPECT_EQ(utxo.balance_of(kMiner.address()), miner_before);
    EXPECT_EQ(utxo.balance_of(kAlice.address()), 0);
}

TEST(Utxo, FailedBlockLeavesStateUnchanged) {
    UtxoSet utxo;
    const Block genesis = make_genesis("utxo-test", easy_bits(2));
    utxo.apply_block(chain_block(genesis, {}));
    const std::size_t size_before = utxo.size();

    // Second tx in the block double-spends the first's input.
    const auto coins = utxo.coins_of(kMiner.address());
    const Transaction t1 = make_transfer({coins[0].first},
                                         {TxOutput{kCoin, kAlice.address()}});
    const Transaction t2 = make_transfer({coins[0].first},
                                         {TxOutput{kCoin, kBob.address()}});
    Block bad;
    bad.txs = {t1, t2};
    EXPECT_THROW(utxo.apply_block(bad), ValidationError);
    EXPECT_EQ(utxo.size(), size_before);
    EXPECT_TRUE(utxo.contains(coins[0].first));
}

TEST(Utxo, IntraBlockChainingWorks) {
    UtxoSet utxo;
    const Block genesis = make_genesis("utxo-test", easy_bits(2));
    utxo.apply_block(chain_block(genesis, {}));
    const auto coins = utxo.coins_of(kMiner.address());

    Transaction t1 = make_transfer({coins[0].first},
                                   {TxOutput{coins[0].second.value, kAlice.address()}});
    // t2 spends t1's output inside the same block.
    Transaction t2 = make_transfer({OutPoint{t1.txid(), 0}},
                                   {TxOutput{coins[0].second.value, kBob.address()}});
    Block b;
    b.txs = {t1, t2};
    utxo.apply_block(b);
    EXPECT_EQ(utxo.balance_of(kBob.address()), coins[0].second.value);
}

// Recompute every address's balance and coin set from a full export_all() scan
// and compare against the indexed accessors. Guards the address index through
// apply/undo cycles.
void expect_address_index_matches_scan(const UtxoSet& utxo,
                                       const std::vector<crypto::Address>& addrs) {
    std::map<crypto::Address, Amount> balances;
    std::map<crypto::Address, std::set<std::pair<Hash256, std::uint32_t>>> coins;
    for (const auto& [op, out] : utxo.export_all()) {
        balances[out.recipient] += out.value;
        coins[out.recipient].insert({op.txid, op.index});
    }
    for (const auto& addr : addrs) {
        EXPECT_EQ(utxo.balance_of(addr), balances[addr]) << addr.hex();
        std::set<std::pair<Hash256, std::uint32_t>> indexed;
        for (const auto& [op, out] : utxo.coins_of(addr)) {
            EXPECT_EQ(out.recipient, addr);
            indexed.insert({op.txid, op.index});
        }
        EXPECT_EQ(indexed, coins[addr]) << addr.hex();
    }
}

TEST(Utxo, AddressIndexConsistentAcrossReorg) {
    UtxoSet utxo;
    const std::vector<crypto::Address> addrs = {
        kMiner.address(), kAlice.address(), kBob.address(),
        PrivateKey::from_seed("never-funded").address()};

    const Block genesis = make_genesis("utxo-test", easy_bits(2));
    const Block b1 = chain_block(genesis, {});
    utxo.apply_block(b1);
    expect_address_index_matches_scan(utxo, addrs);

    // b2 splits the miner's coinbase between Alice and Bob.
    const auto miner_coins = utxo.coins_of(kMiner.address());
    ASSERT_EQ(miner_coins.size(), 1u);
    const Amount half = miner_coins[0].second.value / 2;
    Transaction split = make_transfer({miner_coins[0].first},
                                      {TxOutput{half, kAlice.address()},
                                       TxOutput{half, kBob.address()}});
    const Block b2 = chain_block(b1, {split});
    const UtxoUndo undo2 = utxo.apply_block(b2);
    expect_address_index_matches_scan(utxo, addrs);

    // b3 moves Alice's coin on to Bob.
    const auto alice_coins = utxo.coins_of(kAlice.address());
    ASSERT_EQ(alice_coins.size(), 1u);
    Transaction sweep = make_transfer({alice_coins[0].first},
                                      {TxOutput{half, kBob.address()}});
    const Block b3 = chain_block(b2, {sweep});
    const UtxoUndo undo3 = utxo.apply_block(b3);
    expect_address_index_matches_scan(utxo, addrs);
    EXPECT_EQ(utxo.balance_of(kAlice.address()), 0);
    EXPECT_EQ(utxo.balance_of(kBob.address()), 2 * half);

    // Reorg: roll back b3 then b2; the index must follow exactly.
    utxo.undo_block(undo3);
    expect_address_index_matches_scan(utxo, addrs);
    EXPECT_EQ(utxo.balance_of(kAlice.address()), half);

    utxo.undo_block(undo2);
    expect_address_index_matches_scan(utxo, addrs);
    EXPECT_EQ(utxo.balance_of(kAlice.address()), 0);
    EXPECT_EQ(utxo.balance_of(kBob.address()), 0);
    EXPECT_EQ(utxo.balance_of(kMiner.address()), miner_coins[0].second.value);

    // Re-apply the branch: apply after undo is a clean round trip.
    utxo.apply_block(b2);
    expect_address_index_matches_scan(utxo, addrs);
    EXPECT_EQ(utxo.balance_of(kBob.address()), half);
}

// --- ChainStore -----------------------------------------------------------------------

struct ChainFixture {
    Block genesis = make_genesis("chain-test", easy_bits(2));
    ChainStore store{genesis};

    Block extend(const Block& parent, std::uint64_t salt) {
        Block b;
        b.header.prev_hash = parent.hash();
        b.header.height = parent.header.height + 1;
        b.header.nonce = salt;
        b.header.merkle_root = b.compute_merkle_root();
        store.insert(b, U256::one());
        return b;
    }
};

TEST(ChainStore, TracksHeightAndWork) {
    ChainFixture f;
    const Block b1 = f.extend(f.genesis, 1);
    const Block b2 = f.extend(b1, 2);
    EXPECT_EQ(f.store.find(b2.hash())->height, 2u);
    EXPECT_EQ(f.store.find(b2.hash())->cumulative_work, U256(3));
}

TEST(ChainStore, RejectsOrphanInsert) {
    ChainFixture f;
    Block orphan;
    orphan.header.prev_hash = crypto::sha256(to_bytes("unknown"));
    EXPECT_THROW(f.store.insert(orphan, U256::one()), ValidationError);
}

TEST(ChainStore, DuplicateInsertReturnsFalse) {
    ChainFixture f;
    const Block b1 = f.extend(f.genesis, 1);
    EXPECT_FALSE(f.store.insert(b1, U256::one()));
}

TEST(ChainStore, LongestChainWinsByWork) {
    ChainFixture f;
    const Block a1 = f.extend(f.genesis, 1);
    const Block b1 = f.extend(f.genesis, 2);
    const Block a2 = f.extend(a1, 3);
    EXPECT_EQ(f.store.best_tip_by_work(), a2.hash());
    (void)b1;
}

TEST(ChainStore, GhostPrefersHeavySubtreeOverLongChain) {
    ChainFixture f;
    // Branch A: a1 - a2 - a3 (long, thin).
    const Block a1 = f.extend(f.genesis, 1);
    const Block a2 = f.extend(a1, 2);
    const Block a3 = f.extend(a2, 3);
    // Branch B: b1 with three children (heavy subtree: 4 blocks).
    const Block b1 = f.extend(f.genesis, 10);
    const Block b2a = f.extend(b1, 11);
    f.extend(b1, 12);
    f.extend(b1, 13);

    // Longest chain picks a3 (height 3); GHOST picks into branch B (weight 4 > 3).
    EXPECT_EQ(f.store.best_tip_by_work(), a3.hash());
    const Hash256 ghost_tip = f.store.best_tip_by_ghost();
    bool in_b = false;
    for (const auto& h : f.store.path_from_genesis(ghost_tip))
        if (h == b1.hash()) in_b = true;
    EXPECT_TRUE(in_b);
    (void)b2a;
}

TEST(ChainStore, CommonAncestorAcrossBranches) {
    ChainFixture f;
    const Block a1 = f.extend(f.genesis, 1);
    const Block a2 = f.extend(a1, 2);
    const Block b1 = f.extend(a1, 3);
    EXPECT_EQ(f.store.common_ancestor(a2.hash(), b1.hash()), a1.hash());
    EXPECT_EQ(f.store.common_ancestor(a2.hash(), a2.hash()), a2.hash());
}

TEST(ChainStore, ReorgPathDisconnectsAndConnects) {
    ChainFixture f;
    const Block a1 = f.extend(f.genesis, 1);
    const Block a2 = f.extend(a1, 2);
    const Block b1 = f.extend(f.genesis, 3);
    const Block b2 = f.extend(b1, 4);
    const Block b3 = f.extend(b2, 5);

    const auto path = f.store.reorg_path(a2.hash(), b3.hash());
    ASSERT_EQ(path.disconnect.size(), 2u);
    EXPECT_EQ(path.disconnect[0], a2.hash()); // tip first
    EXPECT_EQ(path.disconnect[1], a1.hash());
    ASSERT_EQ(path.connect.size(), 3u);
    EXPECT_EQ(path.connect[0], b1.hash()); // oldest first
    EXPECT_EQ(path.connect[2], b3.hash());
}

TEST(ChainStore, StaleCountExcludesActivePath) {
    ChainFixture f;
    const Block a1 = f.extend(f.genesis, 1);
    const Block a2 = f.extend(a1, 2);
    f.extend(f.genesis, 3); // stale branch
    EXPECT_EQ(f.store.stale_count(a2.hash()), 1u);
}

// --- Mempool ----------------------------------------------------------------------

Transaction fee_tx(std::uint64_t salt, Amount fee) {
    Transaction tx = make_transfer({OutPoint{crypto::sha256(to_bytes("s" + std::to_string(salt))), 0}},
                                   {TxOutput{kCoin, kAlice.address()}});
    tx.declared_fee = fee;
    return tx;
}

TEST(Mempool, RejectsDuplicates) {
    Mempool pool;
    const Transaction tx = fee_tx(1, 100);
    EXPECT_TRUE(pool.add(tx));
    EXPECT_FALSE(pool.add(tx));
    EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, SelectsByFeeRate) {
    Mempool pool;
    pool.add(fee_tx(1, 100));
    pool.add(fee_tx(2, 10000));
    pool.add(fee_tx(3, 1000));
    const auto selected = pool.select(1'000'000, 2);
    ASSERT_EQ(selected.size(), 2u);
    EXPECT_EQ(selected[0].declared_fee, 10000);
    EXPECT_EQ(selected[1].declared_fee, 1000);
}

TEST(Mempool, RespectsByteBudget) {
    Mempool pool;
    for (int i = 0; i < 50; ++i) pool.add(fee_tx(i, 100 + i));
    const std::size_t one_size = fee_tx(0, 100).serialized_size();
    const auto selected = pool.select(one_size * 10 + 5);
    EXPECT_LE(selected.size(), 10u);
    EXPECT_GE(selected.size(), 9u);
}

TEST(Mempool, EvictsLowestFeeWhenFull) {
    Mempool pool(3);
    pool.add(fee_tx(1, 10));
    pool.add(fee_tx(2, 20));
    pool.add(fee_tx(3, 30));
    EXPECT_TRUE(pool.add(fee_tx(4, 40))); // evicts fee=10
    EXPECT_EQ(pool.size(), 3u);
    EXPECT_FALSE(pool.add(fee_tx(5, 5))); // worse than everything
}

TEST(Mempool, RemoveConfirmedAndAddBack) {
    Mempool pool;
    const Transaction tx = fee_tx(1, 100);
    pool.add(tx);
    pool.remove_confirmed({tx.txid()});
    EXPECT_TRUE(pool.empty());
    pool.add_back({tx, make_coinbase(kMiner.address(), kCoin, 3)});
    EXPECT_EQ(pool.size(), 1u); // coinbase not re-added
}

// --- Validation -----------------------------------------------------------------------

TEST(Validation, MerkleRootMismatchRejected) {
    const Block genesis = make_genesis("val-test", easy_bits(2));
    Block b = chain_block(genesis, {});
    b.header.merkle_root[0] ^= 1;
    ValidationRules rules;
    EXPECT_THROW(check_block_structure(b, rules), ValidationError);
}

TEST(Validation, MissingCoinbaseRejected) {
    Block b;
    b.header.height = 1;
    b.header.merkle_root = b.compute_merkle_root();
    ValidationRules rules;
    EXPECT_THROW(check_block_structure(b, rules), ValidationError);
}

TEST(Validation, OversizedBlockRejected) {
    const Block genesis = make_genesis("val-test", easy_bits(2));
    Block b = chain_block(genesis, {});
    ValidationRules rules;
    rules.max_block_bytes = 10;
    EXPECT_THROW(check_block_structure(b, rules), ValidationError);
}

TEST(Validation, GreedyCoinbaseRejected) {
    UtxoSet utxo;
    const Block genesis = make_genesis("val-test", easy_bits(2));
    Block b;
    b.header.prev_hash = genesis.hash();
    b.header.height = 1;
    b.txs.push_back(make_coinbase(kMiner.address(), block_subsidy(1) + 1, 1));
    b.header.merkle_root = b.compute_merkle_root();
    ValidationRules rules;
    EXPECT_THROW(connect_block(b, utxo, rules), ValidationError);
    EXPECT_EQ(utxo.size(), 0u);
}

TEST(Validation, UnsignedTransferRejectedInFullMode) {
    UtxoSet utxo;
    const Block genesis = make_genesis("val-test", easy_bits(2));
    const Block b1 = chain_block(genesis, {});
    ValidationRules rules;
    connect_block(b1, utxo, rules);

    const auto coins = utxo.coins_of(kMiner.address());
    Transaction unsigned_tx = make_transfer({coins[0].first},
                                            {TxOutput{kCoin, kAlice.address()}});
    const Block b2 = chain_block(b1, {unsigned_tx});
    EXPECT_THROW(connect_block(b2, utxo, rules), ValidationError);

    rules.sig_mode = SigCheckMode::kSkip;
    EXPECT_NO_THROW(connect_block(b2, utxo, rules));
}

TEST(Validation, SignedChainConnects) {
    UtxoSet utxo;
    const Block genesis = make_genesis("val-test", easy_bits(2));
    const Block b1 = chain_block(genesis, {});
    ValidationRules rules;
    connect_block(b1, utxo, rules);

    const auto coins = utxo.coins_of(kMiner.address());
    Transaction spend = make_transfer(
        {coins[0].first}, {TxOutput{coins[0].second.value - 500, kAlice.address()}});
    spend.sign_with(kMiner);
    const Block b2 = chain_block(b1, {spend}, 500);
    EXPECT_NO_THROW(connect_block(b2, utxo, rules));
    EXPECT_EQ(utxo.balance_of(kAlice.address()), coins[0].second.value - 500);
}

} // namespace
