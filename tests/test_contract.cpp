// Tests for the contract layer: VM semantics and gas metering, the assembler,
// the MiniSol compiler, the engine (deploy/call/view, fees, rollback), the
// standard contract library, and the workflow->contract pipeline (E16).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "contract/assembler.hpp"
#include "contract/engine.hpp"
#include "contract/minisol.hpp"
#include "contract/stdlib.hpp"
#include "contract/vm.hpp"
#include "crypto/keys.hpp"
#include "model/workflow.hpp"

namespace {

using namespace dlt;
using namespace dlt::contract;
using crypto::PrivateKey;
using ledger::kCoin;

/// In-memory host for raw VM tests.
class TestHost : public HostInterface {
public:
    std::map<Word, Word> storage;
    std::vector<Event> events;
    std::map<Address, std::int64_t> balances;
    Address self;
    double now = 1000;

    Word storage_load(const Word& key) override {
        const auto it = storage.find(key);
        return it == storage.end() ? Word::zero() : it->second;
    }
    void storage_store(const Word& key, const Word& value) override {
        storage[key] = value;
    }
    std::int64_t balance_of(const Word& addr) override {
        const auto it = balances.find(word_to_address(addr));
        return it == balances.end() ? 0 : it->second;
    }
    bool transfer(const Word& to, std::int64_t amount) override {
        if (balances[self] < amount) return false;
        balances[self] -= amount;
        balances[word_to_address(to)] += amount;
        return true;
    }
    void emit(const Event& event) override { events.push_back(event); }
    double timestamp() override { return now; }
};

VmResult run_asm(const std::string& source, TestHost& host, CallContext ctx = {}) {
    return execute(assemble(source), ctx, host);
}

// --- VM ------------------------------------------------------------------------------

TEST(Vm, ArithmeticAndReturn) {
    TestHost host;
    const auto result = run_asm("PUSH 7\nPUSH 5\nADD\nPUSH 2\nMUL\nRETURN", host);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result.return_value.has_value());
    EXPECT_EQ(*result.return_value, Word(24));
}

TEST(Vm, DivisionByZeroYieldsZero) {
    TestHost host;
    const auto result = run_asm("PUSH 9\nPUSH 0\nDIV\nRETURN", host);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.return_value, Word(0));
}

TEST(Vm, ComparisonChain) {
    TestHost host;
    // (3 < 5) && (5 == 5) -> 1
    const auto result =
        run_asm("PUSH 3\nPUSH 5\nLT\nPUSH 5\nPUSH 5\nEQ\nAND\nRETURN", host);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.return_value, Word::one());
}

TEST(Vm, StorageRoundTrip) {
    TestHost host;
    const auto w = run_asm("PUSH 42\nPUSH 99\nSSTORE\nSTOP", host);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(host.storage.at(Word(42)), Word(99));
    const auto r = run_asm("PUSH 42\nSLOAD\nRETURN", host);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r.return_value, Word(99));
}

TEST(Vm, JumpSkipsCode) {
    TestHost host;
    const auto result = run_asm(
        "PUSH @end\nJUMP\nPUSH 1\nPUSH 2\nSSTORE\nend:\nPUSH 7\nRETURN", host);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.return_value, Word(7));
    EXPECT_TRUE(host.storage.empty());
}

TEST(Vm, ConditionalJumpTakenAndNot) {
    TestHost host;
    // cond=1: jump over the revert.
    const auto taken = run_asm(
        "PUSH @ok\nPUSH 1\nJUMPI\nREVERT\nok:\nPUSH 5\nRETURN", host);
    EXPECT_TRUE(taken.ok());
    // cond=0: fall through to revert.
    const auto not_taken = run_asm(
        "PUSH @ok\nPUSH 0\nJUMPI\nREVERT\nok:\nPUSH 5\nRETURN", host);
    EXPECT_EQ(not_taken.status, VmStatus::kReverted);
}

TEST(Vm, OutOfGasStopsExecution) {
    TestHost host;
    CallContext ctx;
    ctx.gas_limit = 10;
    // Infinite loop: must terminate by gas exhaustion.
    const auto result = run_asm("loop:\nPUSH @loop\nJUMP", host, ctx);
    EXPECT_EQ(result.status, VmStatus::kOutOfGas);
    EXPECT_EQ(result.gas_used, 10u);
}

TEST(Vm, SstoreCostsMoreThanAdd) {
    TestHost host;
    const auto add = run_asm("PUSH 1\nPUSH 2\nADD\nSTOP", host);
    const auto store = run_asm("PUSH 1\nPUSH 2\nSSTORE\nSTOP", host);
    EXPECT_GT(store.gas_used, add.gas_used * 5);
}

TEST(Vm, StackUnderflowDetected) {
    TestHost host;
    const auto result = run_asm("ADD", host);
    EXPECT_EQ(result.status, VmStatus::kStackError);
}

TEST(Vm, RequireZeroReverts) {
    TestHost host;
    EXPECT_EQ(run_asm("PUSH 0\nREQUIRE\nSTOP", host).status, VmStatus::kReverted);
    EXPECT_EQ(run_asm("PUSH 1\nREQUIRE\nSTOP", host).status, VmStatus::kSuccess);
}

TEST(Vm, MemoryIsZeroInitializedScratch) {
    TestHost host;
    const auto result = run_asm("PUSH 7\nMLOAD\nRETURN", host);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.return_value, Word(0));
    const auto rt = run_asm("PUSH 3\nPUSH 77\nMSTORE\nPUSH 3\nMLOAD\nRETURN", host);
    ASSERT_TRUE(rt.ok());
    EXPECT_EQ(*rt.return_value, Word(77));
}

TEST(Vm, EventsOnlySurviveSuccess) {
    TestHost host;
    const auto result = run_asm("PUSH 1\nPUSH 2\nEMIT\nREVERT", host);
    EXPECT_EQ(result.status, VmStatus::kReverted);
    EXPECT_TRUE(result.events.empty()); // reverted: VM reports no events
}

TEST(Vm, CalldataAccess) {
    TestHost host;
    CallContext ctx;
    ctx.calldata = {Word(11), Word(22)};
    const auto size = execute(assemble("CALLDATASIZE\nRETURN"), ctx, host);
    EXPECT_EQ(*size.return_value, Word(2));
    const auto load = execute(assemble("PUSH 1\nCALLDATALOAD\nRETURN"), ctx, host);
    EXPECT_EQ(*load.return_value, Word(22));
    const auto oob = execute(assemble("PUSH 9\nCALLDATALOAD\nRETURN"), ctx, host);
    EXPECT_EQ(*oob.return_value, Word(0));
}

TEST(Assembler, RejectsUnknownMnemonic) {
    EXPECT_THROW(assemble("FLY 3"), ContractError);
}

TEST(Assembler, RejectsUnresolvedLabel) {
    EXPECT_THROW(assemble("PUSH @nowhere\nJUMP"), ContractError);
}

TEST(Assembler, DisassembleRoundTrips) {
    const Bytes code = assemble("PUSH 5\nPUSH 3\nADD\nRETURN");
    const std::string text = disassemble(code);
    EXPECT_NE(text.find("ADD"), std::string::npos);
    EXPECT_NE(text.find("PUSH 5"), std::string::npos);
}

TEST(Vm, AddressWordRoundTrip) {
    const Address addr = PrivateKey::from_seed("roundtrip").address();
    EXPECT_EQ(word_to_address(address_to_word(addr)), addr);
}

// --- Engine fixtures --------------------------------------------------------------------

struct EngineFixture {
    WorldState world;
    ContractEngine engine{world};
    Address alice = PrivateKey::from_seed("e/alice").address();
    Address bob = PrivateKey::from_seed("e/bob").address();
    Address carol = PrivateKey::from_seed("e/carol").address();
    Address miner = PrivateKey::from_seed("e/miner").address();

    EngineFixture() {
        world.credit(alice, 1000 * kCoin);
        world.credit(bob, 1000 * kCoin);
        world.credit(carol, 1000 * kCoin);
        engine.set_time(1000);
    }

    Receipt deploy(const std::string& source, std::vector<Word> args = {},
                   ledger::Amount endowment = 0, const Address* who = nullptr) {
        const auto compiled = compile(source);
        return engine.deploy(compiled, who ? *who : alice, args, endowment, 1'000'000,
                             1, miner);
    }

    Receipt call(const Address& target, std::string_view fn, std::vector<Word> args,
                 const Address& who, ledger::Amount value = 0) {
        return engine.call(target, fn, args, who, value, 1'000'000, 1, miner);
    }
};

// --- MiniSol + engine ----------------------------------------------------------------------

TEST(MiniSol, HelloWorldMirrorsPaperExample) {
    EngineFixture fx;
    const auto receipt = fx.deploy(stdlib::hello_world_source(), {Word(111)});
    ASSERT_TRUE(receipt.ok());

    // say() is constant: free, no transaction, no fee.
    const auto miner_before = fx.world.balance_of(fx.miner);
    const auto view = fx.engine.view(receipt.contract, "say", {}, fx.bob);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(*view.return_value, Word(111));
    EXPECT_EQ(fx.world.balance_of(fx.miner), miner_before);

    // setGreeting costs gas, paid to the miner.
    const auto update = fx.call(receipt.contract, "setGreeting", {Word(222)}, fx.bob);
    ASSERT_TRUE(update.ok());
    EXPECT_GT(update.fee_paid, 0);
    EXPECT_EQ(fx.world.balance_of(fx.miner), miner_before + update.fee_paid);
    EXPECT_EQ(*fx.engine.view(receipt.contract, "say", {}, fx.bob).return_value,
              Word(222));
}

TEST(MiniSol, ViewFunctionsCannotWriteAtCompileTime) {
    // The compiler statically rejects storage writes in view functions.
    EXPECT_THROW(compile(R"(
contract Sneaky {
    storage x;
    fn peek() view { x = 1; return x; }
})"),
                 ContractError);
}

TEST(Engine, RuntimeReadOnlyGuardStopsRawBytecode) {
    // Hand-assembled bytecode that bypasses the compiler's static check: the
    // engine's read-only host must still stop the write during a view call.
    EngineFixture fx;
    CompiledContract sneaky;
    sneaky.name = "Sneaky";
    // Dispatch-free body: unconditionally store then stop.
    sneaky.bytecode = assemble("PUSH 0\nPUSH 1\nSSTORE\nSTOP");
    sneaky.functions.push_back(
        FunctionInfo{"anything", selector_of("anything"), 0, true, false});
    const Receipt deployed =
        fx.engine.deploy(sneaky, fx.alice, {}, 0, 1'000'000, 1, fx.miner);
    ASSERT_TRUE(deployed.ok());
    const auto result = fx.engine.view(deployed.contract, "anything", {}, fx.alice);
    EXPECT_EQ(result.status, VmStatus::kReverted);
    // And the storage write did not stick: a transaction call sees slot 0 == 1
    // only after a real (paid) call.
    const auto paid = fx.call(deployed.contract, "anything", {}, fx.bob);
    EXPECT_TRUE(paid.ok());
}

TEST(MiniSol, UnknownSelectorReverts) {
    EngineFixture fx;
    const auto receipt = fx.deploy(stdlib::hello_world_source(), {Word(1)});
    const auto result = fx.call(receipt.contract, "nonexistent", {}, fx.alice);
    EXPECT_EQ(result.status, VmStatus::kReverted);
}

TEST(MiniSol, NonPayableRejectsValue) {
    EngineFixture fx;
    const auto receipt = fx.deploy(stdlib::hello_world_source(), {Word(1)});
    const auto result =
        fx.call(receipt.contract, "setGreeting", {Word(5)}, fx.alice, 10 * kCoin);
    EXPECT_EQ(result.status, VmStatus::kReverted);
    // Attached value returned on revert; only gas lost.
    EXPECT_GT(fx.world.balance_of(fx.alice), 989 * kCoin);
}

TEST(MiniSol, TokenTransfersAndAllowances) {
    EngineFixture fx;
    const auto receipt = fx.deploy(stdlib::token_source(), {Word(10'000)});
    ASSERT_TRUE(receipt.ok());
    const Address token = receipt.contract;
    const Word alice_w = address_to_word(fx.alice);
    const Word bob_w = address_to_word(fx.bob);
    const Word carol_w = address_to_word(fx.carol);

    EXPECT_EQ(*fx.engine.view(token, "balanceOf", {alice_w}, fx.alice).return_value,
              Word(10'000));

    ASSERT_TRUE(fx.call(token, "transfer", {bob_w, Word(3'000)}, fx.alice).ok());
    EXPECT_EQ(*fx.engine.view(token, "balanceOf", {bob_w}, fx.bob).return_value,
              Word(3'000));

    // Overdraft reverts and changes nothing.
    EXPECT_EQ(fx.call(token, "transfer", {carol_w, Word(50'000)}, fx.bob).status,
              VmStatus::kReverted);
    EXPECT_EQ(*fx.engine.view(token, "balanceOf", {bob_w}, fx.bob).return_value,
              Word(3'000));

    // Approve + transferFrom.
    ASSERT_TRUE(fx.call(token, "approve", {carol_w, Word(1'000)}, fx.bob).ok());
    EXPECT_EQ(*fx.engine.view(token, "allowance", {bob_w, carol_w}, fx.bob).return_value,
              Word(1'000));
    ASSERT_TRUE(
        fx.call(token, "transferFrom", {bob_w, carol_w, Word(700)}, fx.carol).ok());
    EXPECT_EQ(*fx.engine.view(token, "balanceOf", {carol_w}, fx.carol).return_value,
              Word(700));
    EXPECT_EQ(*fx.engine.view(token, "allowance", {bob_w, carol_w}, fx.bob).return_value,
              Word(300));
    // Exceeding the remaining allowance fails.
    EXPECT_EQ(
        fx.call(token, "transferFrom", {bob_w, carol_w, Word(500)}, fx.carol).status,
        VmStatus::kReverted);
}

TEST(MiniSol, CrowdfundLifecycle) {
    EngineFixture fx;
    fx.engine.set_time(100);
    const auto receipt =
        fx.deploy(stdlib::crowdfund_source(), {Word(5 * kCoin), Word(1000)});
    ASSERT_TRUE(receipt.ok());
    const Address fund = receipt.contract;

    ASSERT_TRUE(fx.call(fund, "donate", {}, fx.bob, 3 * kCoin).ok());
    ASSERT_TRUE(fx.call(fund, "donate", {}, fx.carol, 2 * kCoin).ok());
    EXPECT_EQ(*fx.engine.view(fund, "totalRaised", {}, fx.alice).return_value,
              Word(5 * kCoin));

    // Goal met: claim pays the owner; refund is impossible.
    const auto alice_before = fx.world.balance_of(fx.alice);
    ASSERT_TRUE(fx.call(fund, "claim", {}, fx.alice).ok());
    EXPECT_GT(fx.world.balance_of(fx.alice), alice_before + 4 * kCoin);
    // Double-claim rejected.
    EXPECT_EQ(fx.call(fund, "claim", {}, fx.alice).status, VmStatus::kReverted);
}

TEST(MiniSol, CrowdfundRefundPath) {
    EngineFixture fx;
    fx.engine.set_time(100);
    const auto receipt =
        fx.deploy(stdlib::crowdfund_source(), {Word(100 * kCoin), Word(1000)});
    const Address fund = receipt.contract;

    ASSERT_TRUE(fx.call(fund, "donate", {}, fx.bob, 3 * kCoin).ok());
    // Before the deadline refunds are rejected.
    EXPECT_EQ(fx.call(fund, "refund", {}, fx.bob).status, VmStatus::kReverted);

    fx.engine.set_time(2000); // past deadline, goal unmet
    EXPECT_EQ(fx.call(fund, "donate", {}, fx.carol, kCoin).status,
              VmStatus::kReverted);
    const auto bob_before = fx.world.balance_of(fx.bob);
    ASSERT_TRUE(fx.call(fund, "refund", {}, fx.bob).ok());
    EXPECT_GT(fx.world.balance_of(fx.bob), bob_before + 2 * kCoin);
    // Refunding twice fails.
    EXPECT_EQ(fx.call(fund, "refund", {}, fx.bob).status, VmStatus::kReverted);
}

TEST(MiniSol, EscrowReleaseAndRefund) {
    EngineFixture fx;
    const Word seller = address_to_word(fx.bob);
    const Word arbiter = address_to_word(fx.carol);
    const auto receipt =
        fx.deploy(stdlib::escrow_source(), {seller, arbiter}, 10 * kCoin);
    ASSERT_TRUE(receipt.ok());
    EXPECT_EQ(fx.world.balance_of(receipt.contract), 10 * kCoin);

    // Seller cannot release to themselves.
    EXPECT_EQ(fx.call(receipt.contract, "release", {}, fx.bob).status,
              VmStatus::kReverted);
    // Arbiter releases to the seller.
    const auto bob_before = fx.world.balance_of(fx.bob);
    ASSERT_TRUE(fx.call(receipt.contract, "release", {}, fx.carol).ok());
    EXPECT_EQ(fx.world.balance_of(fx.bob), bob_before + 10 * kCoin);
    // Settled: refund now impossible.
    EXPECT_EQ(fx.call(receipt.contract, "refund", {}, fx.carol).status,
              VmStatus::kReverted);
}

TEST(MiniSol, NotaryRegistersDocuments) {
    EngineFixture fx;
    fx.engine.set_time(777);
    const auto receipt = fx.deploy(stdlib::notary_source());
    const Address notary = receipt.contract;
    const Word digest = Word(0xD0C5);

    ASSERT_TRUE(fx.call(notary, "registerDocument", {digest}, fx.bob).ok());
    EXPECT_EQ(*fx.engine.view(notary, "ownerOf", {digest}, fx.alice).return_value,
              address_to_word(fx.bob));
    EXPECT_EQ(*fx.engine.view(notary, "registeredAt", {digest}, fx.alice).return_value,
              Word(777));
    EXPECT_EQ(*fx.engine
                   .view(notary, "verify", {digest, address_to_word(fx.bob)}, fx.alice)
                   .return_value,
              Word::one());
    // Double registration rejected.
    EXPECT_EQ(fx.call(notary, "registerDocument", {digest}, fx.carol).status,
              VmStatus::kReverted);
}

TEST(MiniSol, WhileLoopsAndLocals) {
    EngineFixture fx;
    const auto source = R"(
contract Summer {
    fn sum(n) view {
        let total = 0;
        let i = 1;
        while (i <= n) {
            total = total + i;
            i = i + 1;
        }
        return total;
    }
})";
    const auto receipt = fx.deploy(source);
    ASSERT_TRUE(receipt.ok());
    EXPECT_EQ(*fx.engine.view(receipt.contract, "sum", {Word(10)}, fx.alice)
                   .return_value,
              Word(55));
    EXPECT_EQ(*fx.engine.view(receipt.contract, "sum", {Word(100)}, fx.alice)
                   .return_value,
              Word(5050));
}

TEST(MiniSol, IfElseBranches) {
    EngineFixture fx;
    const auto source = R"(
contract Pick {
    fn max(a, b) view {
        if (a > b) { return a; } else { return b; }
    }
})";
    const auto receipt = fx.deploy(source);
    EXPECT_EQ(*fx.engine.view(receipt.contract, "max", {Word(3), Word(9)}, fx.alice)
                   .return_value,
              Word(9));
    EXPECT_EQ(*fx.engine.view(receipt.contract, "max", {Word(8), Word(2)}, fx.alice)
                   .return_value,
              Word(8));
}

TEST(MiniSol, CompileErrorsCarryLineNumbers) {
    EXPECT_THROW(compile("contract X { fn f() { y = 1; } }"), ContractError);
    EXPECT_THROW(compile("contract X { storage a; storage a; }"), ContractError);
    EXPECT_THROW(compile("contract X { fn f() {} fn f() {} }"), ContractError);
    EXPECT_THROW(compile("notacontract"), ContractError);
    try {
        compile("contract X {\n fn f() {\n  broken @@;\n }\n}");
        FAIL() << "expected ContractError";
    } catch (const ContractError& e) {
        EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
    }
}

TEST(Engine, GasPaidEvenOnRevert) {
    EngineFixture fx;
    const auto receipt = fx.deploy(R"(
contract AlwaysFails {
    fn boom() { revert; }
})");
    const auto miner_before = fx.world.balance_of(fx.miner);
    const auto result = fx.call(receipt.contract, "boom", {}, fx.bob);
    EXPECT_EQ(result.status, VmStatus::kReverted);
    EXPECT_GT(result.fee_paid, 0);
    EXPECT_EQ(fx.world.balance_of(fx.miner), miner_before + result.fee_paid);
}

TEST(Engine, RevertRollsBackStateAndValue) {
    EngineFixture fx;
    const auto receipt = fx.deploy(R"(
contract HalfDone {
    storage x;
    fn poke() payable { x = 99; revert; }
})");
    const auto bob_before = fx.world.balance_of(fx.bob);
    const auto result = fx.call(receipt.contract, "poke", {}, fx.bob, 5 * kCoin);
    EXPECT_EQ(result.status, VmStatus::kReverted);
    EXPECT_EQ(fx.world.balance_of(receipt.contract), 0);
    // Bob got the 5 coins back, lost only gas.
    EXPECT_EQ(fx.world.balance_of(fx.bob), bob_before - result.fee_paid);
}

TEST(Engine, DeployChargesPerByte) {
    EngineFixture fx;
    const auto small = fx.deploy(stdlib::hello_world_source(), {Word(1)});
    const auto large = fx.deploy(stdlib::token_source(), {Word(1)});
    EXPECT_GT(large.gas_used, small.gas_used);
}

TEST(Engine, ContractAddressesAreDeterministicAndDistinct) {
    const Address creator = PrivateKey::from_seed("creator").address();
    EXPECT_EQ(derive_contract_address(creator, 0), derive_contract_address(creator, 0));
    EXPECT_NE(derive_contract_address(creator, 0), derive_contract_address(creator, 1));
}

TEST(Engine, StateRootChangesWithStorage) {
    EngineFixture fx;
    const auto receipt = fx.deploy(stdlib::hello_world_source(), {Word(1)});
    const Hash256 before = fx.world.state_root();
    ASSERT_TRUE(fx.call(receipt.contract, "setGreeting", {Word(2)}, fx.bob).ok());
    EXPECT_NE(fx.world.state_root(), before);
}

TEST(Engine, EventsAreLogged) {
    EngineFixture fx;
    const auto receipt = fx.deploy(stdlib::token_source(), {Word(100)});
    ASSERT_TRUE(
        fx.call(receipt.contract, "transfer", {address_to_word(fx.bob), Word(10)},
                fx.alice)
            .ok());
    ASSERT_FALSE(fx.world.event_log().empty());
    EXPECT_EQ(fx.world.event_log().back().event.topic, event_topic("Transfer"));
    EXPECT_EQ(fx.world.event_log().back().event.value, Word(10));
}

// --- Workflow model (modeling layer) -------------------------------------------------------

model::WorkflowModel shipping_workflow() {
    // Fig. 3's modeling-layer flow: Production -> Shipping -> Receipt, with a
    // validation choice that can reject back to production.
    model::WorkflowModel wf("Shipping", /*states=*/4, /*roles=*/2);
    wf.label_state(0, "Produced");
    wf.label_state(1, "Validated");
    wf.label_state(2, "Shipped");
    wf.label_state(3, "Received");
    wf.add_transition({"validate", 0, 1, 0});
    wf.add_transition({"rejectToProduction", 1, 0, 0});
    wf.add_transition({"ship", 1, 2, 0});
    wf.add_transition({"confirmReceipt", 2, 3, 1});
    return wf;
}

TEST(Workflow, ValidModelHasNoIssues) {
    EXPECT_TRUE(shipping_workflow().validate().empty());
}

TEST(Workflow, DetectsUnreachableState) {
    model::WorkflowModel wf("Broken", 3, 1);
    wf.add_transition({"go", 0, 1, 0});
    // state 2 unreachable
    const auto issues = wf.validate();
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].message.find("unreachable"), std::string::npos);
}

TEST(Workflow, DetectsReservedTaskNames) {
    model::WorkflowModel wf("Bad", 2, 1);
    wf.add_transition({"init", 0, 1, 0});
    EXPECT_FALSE(wf.validate().empty());
}

TEST(Workflow, RejectsDuplicateTask) {
    model::WorkflowModel wf("Dup", 3, 1);
    wf.add_transition({"go", 0, 1, 0});
    EXPECT_THROW(wf.add_transition({"go", 1, 2, 0}), ContractError);
}

TEST(Workflow, CompilesAndEnforcesProcess) {
    EngineFixture fx;
    const auto wf = shipping_workflow();
    const auto compiled = compile(wf.to_minisol());
    const Receipt deployed = fx.engine.deploy(
        compiled, fx.alice,
        {address_to_word(fx.bob), address_to_word(fx.carol)}, // supplier, customer
        0, 2'000'000, 1, fx.miner);
    ASSERT_TRUE(deployed.ok());
    const Address proc = deployed.contract;

    // Wrong order: cannot ship before validation.
    EXPECT_EQ(fx.call(proc, "ship", {}, fx.bob).status, VmStatus::kReverted);
    // Wrong role: the customer cannot validate.
    EXPECT_EQ(fx.call(proc, "validate", {}, fx.carol).status, VmStatus::kReverted);

    ASSERT_TRUE(fx.call(proc, "validate", {}, fx.bob).ok());
    ASSERT_TRUE(fx.call(proc, "ship", {}, fx.bob).ok());
    EXPECT_EQ(*fx.engine.view(proc, "isComplete", {}, fx.alice).return_value,
              Word::zero());
    ASSERT_TRUE(fx.call(proc, "confirmReceipt", {}, fx.carol).ok());
    EXPECT_EQ(*fx.engine.view(proc, "currentState", {}, fx.alice).return_value, Word(3));
    EXPECT_EQ(*fx.engine.view(proc, "isComplete", {}, fx.alice).return_value,
              Word::one());
}

TEST(Workflow, RejectLoopReturnsToStart) {
    EngineFixture fx;
    const auto compiled = compile(shipping_workflow().to_minisol());
    const Receipt deployed = fx.engine.deploy(
        compiled, fx.alice, {address_to_word(fx.bob), address_to_word(fx.carol)}, 0,
        2'000'000, 1, fx.miner);
    const Address proc = deployed.contract;

    ASSERT_TRUE(fx.call(proc, "validate", {}, fx.bob).ok());
    ASSERT_TRUE(fx.call(proc, "rejectToProduction", {}, fx.bob).ok());
    EXPECT_EQ(*fx.engine.view(proc, "currentState", {}, fx.alice).return_value,
              Word(0));
    // And the process can run again.
    ASSERT_TRUE(fx.call(proc, "validate", {}, fx.bob).ok());
}

} // namespace
