// Tests for the pluggable attack drivers (consensus/attack.hpp): the
// Eyal–Sirer selfish miner's state machine and revenue superlinearity, the
// eclipse bridge (partition + relay filter + private-fork feed + heal), and
// the interposition hooks they are built on. E27's scenario matrix composes
// these drivers with faults and load; these tests pin each driver alone.
#include <gtest/gtest.h>

#include <cstdio>

#include "consensus/attack.hpp"
#include "consensus/nakamoto.hpp"

namespace {

using namespace dlt;
using namespace dlt::consensus;

NakamotoParams attack_params(std::size_t nodes, double attacker_share,
                             net::NodeId attacker) {
    NakamotoParams params;
    params.node_count = nodes;
    params.block_interval = 10.0;
    params.validation.sig_mode = ledger::SigCheckMode::kSkip;
    params.hashrate_shares.assign(nodes, (1.0 - attacker_share) /
                                             static_cast<double>(nodes - 1));
    params.hashrate_shares[attacker] = attacker_share;
    return params;
}

// --- Selfish mining ---------------------------------------------------------------

TEST(SelfishMiner, WithholdsAndReleasesThroughHook) {
    NakamotoParams params = attack_params(8, 0.40, 1);
    NakamotoNetwork net(params, 901);
    SelfishMiner selfish(net, 1);
    net.start();
    net.run_for(600.0);

    const SelfishStats& s = selfish.stats();
    EXPECT_GT(s.blocks_mined, 10u); // ~40% of ~60 blocks
    // Everything mined is either still withheld, released, or died in an
    // abandoned fork; the driver never loses track of a block.
    EXPECT_GE(s.blocks_mined, s.blocks_published);
    EXPECT_GT(s.max_lead, 0u);

    selfish.finish();
    net.run_for(120.0);
    EXPECT_EQ(selfish.withheld_count(), 0u); // finish() flushed the fork
    EXPECT_TRUE(net.converged());
}

TEST(SelfishMiner, SuperlinearRevenueAboveThreshold) {
    // Eyal–Sirer: above α ≈ 1/3 (γ = 0) the selfish strategy's canonical-chain
    // revenue share exceeds its hash share. At α = 0.40 theory (γ = 0) gives
    // ≈ 0.486; the in-network γ is slightly positive (latency races), so the
    // realized share must clear the hash share with margin on a long run.
    NakamotoParams params = attack_params(10, 0.40, 1);
    NakamotoNetwork net(params, 902);
    SelfishMiner selfish(net, 1);
    net.start();
    net.run_for(20'000.0);
    selfish.finish();
    net.run_for(300.0);

    const double revenue = proposer_share(net, 1);
    const SelfishStats& s = selfish.stats();
    std::printf("[selfish] mined=%llu published=%llu abandoned=%llu ties=%llu "
                "max_lead=%llu revenue=%.3f\n",
                static_cast<unsigned long long>(s.blocks_mined),
                static_cast<unsigned long long>(s.blocks_published),
                static_cast<unsigned long long>(s.forks_abandoned),
                static_cast<unsigned long long>(s.tie_races),
                static_cast<unsigned long long>(s.max_lead), revenue);
    EXPECT_GT(revenue, 0.40);
}

TEST(SelfishMiner, HonestBaselineMatchesHashShare) {
    // Control: without the driver the same attacker share earns ≈ its hash
    // share (within Monte Carlo noise) — pins that the superlinearity above
    // comes from the strategy, not from some bias in the mining schedule.
    NakamotoParams params = attack_params(10, 0.40, 1);
    NakamotoNetwork net(params, 902);
    net.start();
    net.run_for(20'000.0);
    net.run_for(300.0);
    const double share = proposer_share(net, 1);
    EXPECT_NEAR(share, 0.40, 0.05);
}

// --- Eclipse ----------------------------------------------------------------------

TEST(EclipseAttack, VictimFollowsAttackerFork) {
    NakamotoParams params = attack_params(8, 0.30, 0);
    NakamotoNetwork net(params, 903);
    net.start();
    net.run_for(200.0); // shared history first

    EclipseParams ep;
    ep.attacker = 0;
    ep.victim = 1;
    EclipseAttack eclipse(net, ep);
    net.run_for(300.0);

    // While eclipsed, the victim's chain may only advance along records the
    // attacker fed it: its tip is the attacker's tip (or an ancestor in
    // flight), never the honest network's.
    EXPECT_FALSE(net.converged());
    const Hash256 victim_tip = net.tip_of(1);
    const bool on_attacker_chain =
        victim_tip == net.tip_of(0) ||
        net.chain_of(0).find(victim_tip) != nullptr;
    EXPECT_TRUE(on_attacker_chain);
    EXPECT_GT(eclipse.fork_blocks(), 0u);

    eclipse.heal();
    net.run_for(300.0);
    EXPECT_TRUE(net.converged()); // honest work wins, victim rejoins
    EXPECT_EQ(net.tip_of(1), net.tip_of(2));
}

TEST(EclipseAttack, HealIsIdempotentAndRestoresFilters) {
    NakamotoParams params = attack_params(6, 0.25, 0);
    NakamotoNetwork net(params, 904);
    net.start();
    net.run_for(100.0);
    EclipseParams ep;
    ep.attacker = 0;
    ep.victim = 1;
    EclipseAttack eclipse(net, ep);
    net.run_for(100.0);
    eclipse.heal();
    eclipse.heal(); // second heal is a no-op
    net.run_for(400.0);
    EXPECT_TRUE(net.converged());
}

} // namespace
