// The real-transport deployment mode (E29): wire framing fuzzed through
// truncation and corruption, the socket transport's delivery / reconnect /
// backpressure behaviour, sim-vs-socket delivery equivalence, replicas
// converging over the sim backend, and the dlt-node daemon's graceful
// SIGTERM path observed from the outside (clean exit, zero-replay reopen).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "app/cluster.hpp"
#include "common/rng.hpp"
#include "core/persistent_node.hpp"
#include "core/replica.hpp"
#include "crypto/sha256.hpp"
#include "ledger/validation.hpp"
#include "net/transport/frame.hpp"
#include "net/transport/sim_transport.hpp"
#include "net/transport/tcp_transport.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

using namespace dlt;
using namespace dlt::net::transport;

namespace {

struct TempDir {
    std::filesystem::path path;
    explicit TempDir(const std::string& tag) {
        path = std::filesystem::temp_directory_path() / ("dlt-test-transport-" + tag);
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

std::uint64_t counter_value(const std::string& name) {
    return obs::MetricsRegistry::global().counter(name).value();
}

/// Spin until `pred` holds or `timeout_s` elapses; returns the final verdict.
bool eventually(double timeout_s, const std::function<bool()>& pred) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(static_cast<int>(timeout_s * 1000));
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

} // namespace

// --- Frame codec -------------------------------------------------------------

TEST(FrameCodec, HelloRoundTrip) {
    const Bytes framed = encode_hello_frame(42);
    FrameDecoder dec;
    dec.feed(ByteView(framed));
    const auto frame = dec.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->kind, FrameKind::kHello);
    Reader r{ByteView(frame->payload)};
    const Hello hello = Hello::decode(r);
    EXPECT_EQ(hello.magic, kProtocolMagic);
    EXPECT_EQ(hello.version, kProtocolVersion);
    EXPECT_EQ(hello.node_id, 42u);
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodec, MessageRoundTrip) {
    const Bytes body = {1, 2, 3, 255, 0, 7};
    const Bytes framed = encode_message_frame("blk", ByteView(body));
    FrameDecoder dec;
    dec.feed(ByteView(framed));
    const auto frame = dec.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->kind, FrameKind::kMessage);
    const WireMessage msg = decode_message_payload(ByteView(frame->payload));
    EXPECT_EQ(msg.topic, "blk");
    EXPECT_EQ(msg.body, body);
}

TEST(FrameCodec, PartialReadResumes) {
    const Bytes framed = encode_message_frame("topic", ByteView(Bytes(100, 0xAB)));
    FrameDecoder dec;
    // One byte at a time: the frame must appear exactly once, at the end.
    for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
        dec.feed(ByteView(framed.data() + i, 1));
        EXPECT_FALSE(dec.next().has_value()) << "frame surfaced early at " << i;
    }
    dec.feed(ByteView(framed.data() + framed.size() - 1, 1));
    const auto frame = dec.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(decode_message_payload(ByteView(frame->payload)).body, Bytes(100, 0xAB));
}

TEST(FrameCodec, SeveralFramesInOneFeed) {
    Bytes stream;
    for (int i = 0; i < 5; ++i) {
        const Bytes f = encode_message_frame("t" + std::to_string(i),
                                             ByteView(Bytes(i + 1, std::uint8_t(i))));
        stream.insert(stream.end(), f.begin(), f.end());
    }
    FrameDecoder dec;
    dec.feed(ByteView(stream));
    for (int i = 0; i < 5; ++i) {
        const auto frame = dec.next();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(decode_message_payload(ByteView(frame->payload)).topic,
                  "t" + std::to_string(i));
    }
    EXPECT_FALSE(dec.next().has_value());
}

TEST(FrameCodec, OversizedLengthRejectedBeforeBuffering) {
    FrameLimits limits;
    limits.max_frame_bytes = 1024;
    // Header claims a frame far above the limit; the decoder must throw on
    // the 8-byte header alone, without waiting for (or allocating) the body.
    Writer w;
    w.u32(1u << 20); // length
    w.u32(0);        // crc (never reached)
    FrameDecoder dec(limits);
    dec.feed(ByteView(w.data()));
    EXPECT_THROW(dec.next(), DecodeError);
}

TEST(FrameCodec, ZeroLengthRejected) {
    Writer w;
    w.u32(0);
    w.u32(0);
    FrameDecoder dec;
    dec.feed(ByteView(w.data()));
    EXPECT_THROW(dec.next(), DecodeError);
}

TEST(FrameCodec, CorruptedPayloadFailsCrc) {
    Bytes framed = encode_message_frame("x", ByteView(Bytes(32, 0x55)));
    framed[framed.size() / 2] ^= 0x01;
    FrameDecoder dec;
    dec.feed(ByteView(framed));
    EXPECT_THROW(dec.next(), DecodeError);
}

TEST(FrameCodec, UnknownKindRejected) {
    Bytes framed = encode_message_frame("x", ByteView());
    // Byte 8 is the kind; flipping it breaks the CRC too, so rewrite the
    // frame via encode_frame's own CRC by crafting at the payload level.
    const Bytes inner = {0xEE};
    Bytes forged = encode_frame(FrameKind::kMessage, ByteView(inner));
    // Splice kind=7 in and recompute nothing: kind is covered by the CRC, so
    // the decoder reports *a* DecodeError either way — both paths must throw.
    forged[8] = 7;
    FrameDecoder dec;
    dec.feed(ByteView(forged));
    EXPECT_THROW(dec.next(), DecodeError);
}

TEST(FrameCodec, BadHelloMagicRejected) {
    Writer w;
    w.u32(0xDEADBEEF);
    w.u16(kProtocolVersion);
    w.u32(1);
    Reader r{ByteView(w.data())};
    EXPECT_THROW(Hello::decode(r), DecodeError);
}

// Truncate a valid multi-frame stream at every offset: the decoder must
// produce a strict prefix of the original frames and never throw or misparse.
TEST(FrameCodec, TruncationFuzz) {
    std::vector<Bytes> frames;
    Bytes stream;
    Rng rng(0xE29);
    for (int i = 0; i < 4; ++i) {
        Bytes body(static_cast<std::size_t>(rng.uniform(64)) + 1, 0);
        for (auto& b : body) b = static_cast<std::uint8_t>(rng.uniform(256));
        const Bytes f = encode_message_frame("f" + std::to_string(i), ByteView(body));
        frames.push_back(f);
        stream.insert(stream.end(), f.begin(), f.end());
    }
    for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
        FrameDecoder dec;
        dec.feed(ByteView(stream.data(), cut));
        std::size_t decoded = 0;
        while (true) {
            const auto frame = dec.next();
            if (!frame) break;
            ASSERT_LT(decoded, frames.size());
            EXPECT_EQ(encode_frame(frame->kind, ByteView(frame->payload)),
                      frames[decoded]);
            ++decoded;
        }
        // Exactly the frames whose bytes fit entirely below the cut.
        std::size_t expected = 0, consumed = 0;
        while (expected < frames.size() &&
               consumed + frames[expected].size() <= cut)
            consumed += frames[expected++].size();
        EXPECT_EQ(decoded, expected) << "cut at " << cut;
    }
}

// Flip one byte anywhere in the stream: every decoded frame must be
// byte-identical to an original; everything else must surface as DecodeError
// or a stall — never a crash, never a fabricated frame.
TEST(FrameCodec, CorruptionFuzz) {
    Bytes stream;
    std::vector<Bytes> frames;
    for (int i = 0; i < 3; ++i) {
        const Bytes f =
            encode_message_frame("t" + std::to_string(i), ByteView(Bytes(24, std::uint8_t(i))));
        frames.push_back(f);
        stream.insert(stream.end(), f.begin(), f.end());
    }
    Rng rng(0x51E9);
    for (int iter = 0; iter < 500; ++iter) {
        Bytes corrupted = stream;
        const std::size_t at = rng.index(corrupted.size());
        corrupted[at] ^= static_cast<std::uint8_t>(rng.uniform(255) + 1);
        FrameDecoder dec;
        dec.feed(ByteView(corrupted));
        try {
            std::size_t decoded = 0;
            while (const auto frame = dec.next()) {
                const Bytes reframed =
                    encode_frame(frame->kind, ByteView(frame->payload));
                bool known = false;
                for (const auto& f : frames) known = known || reframed == f;
                EXPECT_TRUE(known) << "fabricated frame, corrupt byte " << at;
                ++decoded;
            }
            EXPECT_LE(decoded, frames.size());
        } catch (const DecodeError&) {
            // Expected for most corruptions (CRC, length, kind).
        }
    }
}

// --- TcpTransport ------------------------------------------------------------

namespace {

TcpTransportConfig tcp_config(std::uint32_t id, std::vector<TcpPeer> peers) {
    TcpTransportConfig config;
    config.local_id = id;
    config.peers = std::move(peers);
    return config;
}

} // namespace

TEST(TcpTransport, PairExchangeTimersAndPost) {
    TcpTransport t0(tcp_config(0, {{1, "127.0.0.1", 0}}));
    TcpTransport t1(tcp_config(1, {{0, "127.0.0.1", t0.listen_port()}}));
    EXPECT_EQ(t0.local_id(), 0u);
    EXPECT_EQ(t1.peer_ids(), std::vector<PeerId>{0});

    std::atomic<int> got0{0}, got1{0};
    std::atomic<bool> body_ok{true};
    t0.set_handler([&](PeerId from, const std::string& topic, ByteView payload) {
        body_ok = body_ok && from == 1 && topic == "ping" && payload.size() == 3;
        ++got0;
    });
    t1.set_handler([&](PeerId from, const std::string& topic, ByteView) {
        body_ok = body_ok && from == 0 && topic == "pong";
        ++got1;
    });
    t0.start();
    t1.start();
    ASSERT_TRUE(eventually(5.0, [&] {
        return t0.connected_peers() == 1 && t1.connected_peers() == 1;
    }));

    const Bytes three = {9, 9, 9};
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(t1.send(0, "ping", ByteView(three)));
        t0.broadcast("pong", ByteView());
    }
    ASSERT_TRUE(eventually(5.0, [&] { return got0 == 10 && got1 == 10; }));
    EXPECT_TRUE(body_ok);

    // Timers: one fires, one is cancelled, post() runs promptly, and the
    // transport clock advances monotonically.
    std::atomic<int> fired{0};
    t0.post([&] { ++fired; });
    t0.schedule_after(0.01, [&] { ++fired; });
    const TimerId cancelled = t0.schedule_after(60.0, [&] { fired += 100; });
    EXPECT_TRUE(t0.cancel_timer(cancelled));
    EXPECT_FALSE(t0.cancel_timer(cancelled));
    ASSERT_TRUE(eventually(5.0, [&] { return fired == 2; }));
    const double a = t0.now();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GT(t0.now(), a);

    EXPECT_GT(counter_value("net_tcp_bytes_sent_total"), 0u);
    EXPECT_GT(counter_value("net_tcp_frames_received_total"), 0u);
}

TEST(TcpTransport, ReconnectAfterAcceptorRestart) {
    const std::uint64_t reconnects_before = counter_value("net_tcp_reconnects_total");
    auto t0 = std::make_unique<TcpTransport>(tcp_config(0, {{1, "127.0.0.1", 0}}));
    const std::uint16_t port0 = t0->listen_port();
    TcpTransport t1(tcp_config(1, {{0, "127.0.0.1", port0}}));
    std::atomic<int> got{0};
    t1.set_handler([&](PeerId, const std::string&, ByteView) { ++got; });
    t0->set_handler([](PeerId, const std::string&, ByteView) {});
    t0->start();
    t1.start();
    ASSERT_TRUE(eventually(5.0, [&] { return t1.connected_peers() == 1; }));

    // Kill the acceptor; the dialer must fall back to its retry schedule and
    // re-establish once a new process-equivalent binds the same port.
    t0.reset();
    ASSERT_TRUE(eventually(5.0, [&] { return t1.connected_peers() == 0; }));

    auto config0 = tcp_config(0, {{1, "127.0.0.1", 0}});
    config0.listen_port = port0;
    t0 = std::make_unique<TcpTransport>(config0);
    std::atomic<int> after{0};
    t0->set_handler([&](PeerId, const std::string&, ByteView) { ++after; });
    t0->start();
    ASSERT_TRUE(eventually(10.0, [&] { return t1.connected_peers() == 1; }));
    EXPECT_GT(counter_value("net_tcp_reconnects_total"), reconnects_before);

    EXPECT_TRUE(t1.send(0, "after", ByteView()));
    ASSERT_TRUE(eventually(5.0, [&] { return after >= 1; }));
}

TEST(TcpTransport, BackpressureDropsWhenPeerUnreachable) {
    const std::uint64_t drops_before = counter_value("net_tcp_send_drops_total");
    // Peer 0 does not exist: everything queues against the reconnect loop.
    auto config = tcp_config(1, {{0, "127.0.0.1", 1}}); // port 1: nothing there
    config.max_queue_bytes_per_peer = 4096;
    TcpTransport t1(config);
    t1.start();
    const Bytes chunk(1024, 0xCC);
    int accepted = 0, refused = 0;
    for (int i = 0; i < 64; ++i) {
        if (t1.send(0, "bulk", ByteView(chunk)))
            ++accepted;
        else
            ++refused;
    }
    EXPECT_GT(accepted, 0);
    EXPECT_GT(refused, 0);
    EXPECT_GT(counter_value("net_tcp_send_drops_total"), drops_before);
    EXPECT_LE(accepted, 5); // ~4 KB cap over ~1 KB frames
}

// --- Sim vs socket equivalence (the E29 contract) ----------------------------

// The same broadcast sequence, delivered over the deterministic sim backend
// and over a 3-node loopback TCP mesh, must leave every node with the same
// chained digest of (topic, payload) in arrival order — per-sender FIFO is
// the delivery contract protocol code relies on.
TEST(TransportEquivalence, BroadcastSequenceSameDigestsSimAndTcp) {
    constexpr int kMessages = 40;
    const auto fold = [](Hash256& digest, const std::string& topic, ByteView body) {
        Writer w;
        w.fixed(digest);
        w.str(topic);
        w.bytes(body);
        digest = crypto::sha256(ByteView(w.data()));
    };
    std::vector<Bytes> payloads;
    Rng rng(7);
    for (int i = 0; i < kMessages; ++i) {
        Bytes p(static_cast<std::size_t>(rng.uniform(48)) + 1, 0);
        for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform(256));
        payloads.push_back(std::move(p));
    }

    // Sim half.
    std::vector<Hash256> sim_digests(3);
    {
        sim::Scheduler scheduler;
        net::Network network(scheduler, Rng(1));
        SimTransportHub hub(network, 3);
        // TCP is per-connection FIFO; give the sim links the same property
        // (zero jitter) so arrival order is comparable across backends.
        net::LinkParams fifo;
        fifo.latency_jitter = 0.0;
        network.build_full_mesh(fifo);
        for (std::uint32_t id = 1; id < 3; ++id)
            hub.endpoint(id).set_handler(
                [&, id](PeerId, const std::string& topic, ByteView body) {
                    fold(sim_digests[id], topic, body);
                });
        // Space the sends in virtual time: with fixed latency, arrival order
        // is then emission order (TCP gets this for free from the stream).
        for (int i = 0; i < kMessages; ++i)
            scheduler.schedule_after(0.01 * static_cast<double>(i), [&, i] {
                hub.endpoint(0).broadcast("seq" + std::to_string(i % 3),
                                          ByteView(payloads[i]));
            });
        scheduler.run_until(60.0);
    }

    // Socket half.
    std::vector<Hash256> tcp_digests(3);
    {
        TcpTransport t0(tcp_config(0, {{1, "127.0.0.1", 0}, {2, "127.0.0.1", 0}}));
        TcpTransport t1(tcp_config(1, {{0, "127.0.0.1", t0.listen_port()},
                                       {2, "127.0.0.1", 0}}));
        TcpTransport t2(tcp_config(2, {{0, "127.0.0.1", t0.listen_port()},
                                       {1, "127.0.0.1", t1.listen_port()}}));
        std::atomic<int> received{0};
        t1.set_handler([&](PeerId, const std::string& topic, ByteView body) {
            fold(tcp_digests[1], topic, body);
            ++received;
        });
        t2.set_handler([&](PeerId, const std::string& topic, ByteView body) {
            fold(tcp_digests[2], topic, body);
            ++received;
        });
        t0.set_handler([](PeerId, const std::string&, ByteView) {});
        t0.start();
        t1.start();
        t2.start();
        ASSERT_TRUE(eventually(5.0, [&] {
            return t0.connected_peers() == 2 && t1.connected_peers() == 2 &&
                   t2.connected_peers() == 2;
        }));
        for (int i = 0; i < kMessages; ++i)
            t0.broadcast("seq" + std::to_string(i % 3), ByteView(payloads[i]));
        ASSERT_TRUE(eventually(10.0, [&] { return received == 2 * kMessages; }));
        t0.shutdown();
        t1.shutdown();
        t2.shutdown();
    }

    EXPECT_EQ(sim_digests[1], sim_digests[2]);
    EXPECT_EQ(sim_digests[1], tcp_digests[1]);
    EXPECT_EQ(sim_digests[1], tcp_digests[2]);
    EXPECT_NE(sim_digests[1], Hash256{}); // something actually arrived
}

// --- Replicas over the sim backend -------------------------------------------

namespace {

ledger::Transaction record_tx(std::uint64_t sender, std::uint64_t nonce) {
    ledger::Transaction tx;
    tx.kind = ledger::TxKind::kRecord;
    tx.sender_pubkey.assign(8, 0);
    for (std::size_t i = 0; i < 8; ++i)
        tx.sender_pubkey[i] = static_cast<std::uint8_t>((sender >> (8 * i)) & 0xFF);
    tx.nonce = nonce;
    tx.data = Bytes(48, static_cast<std::uint8_t>(nonce));
    tx.declared_fee = 100;
    return tx;
}

} // namespace

TEST(ReplicaSim, NakamotoConvergesOverSimTransport) {
    TempDir dirs("replica-nakamoto");
    sim::Scheduler scheduler;
    net::Network network(scheduler, Rng(3));
    SimTransportHub hub(network, 4);
    network.build_full_mesh();

    std::vector<std::unique_ptr<core::Replica>> replicas;
    for (std::uint32_t id = 0; id < 4; ++id) {
        core::ReplicaConfig config;
        config.engine = core::ReplicaEngine::kNakamoto;
        config.node_count = 4;
        config.block_interval = 1.0;
        config.data_dir = dirs.path / ("n" + std::to_string(id));
        replicas.push_back(
            std::make_unique<core::Replica>(hub.endpoint(id), config));
    }
    for (auto& r : replicas) r->start();
    for (std::uint64_t i = 0; i < 20; ++i)
        scheduler.schedule_after(0.1 * static_cast<double>(i), [&, i] {
            replicas[i % 4]->submit_transaction(record_tx(i, 0));
        });
    scheduler.run_until(30.0);
    for (auto& r : replicas) r->stop();
    scheduler.run_until(31.0);

    EXPECT_GT(replicas[0]->height(), 0u);
    for (std::size_t i = 1; i < replicas.size(); ++i) {
        EXPECT_EQ(replicas[i]->tip(), replicas[0]->tip());
        EXPECT_EQ(replicas[i]->confirmed_txs(), replicas[0]->confirmed_txs());
    }
    EXPECT_EQ(replicas[0]->confirmed_txs(), 20u);
    EXPECT_FALSE(replicas[0]->confirmation_latencies().empty());
}

TEST(ReplicaSim, PbftConvergesOverSimTransport) {
    TempDir dirs("replica-pbft");
    sim::Scheduler scheduler;
    net::Network network(scheduler, Rng(5));
    SimTransportHub hub(network, 4);
    network.build_full_mesh();

    std::vector<std::unique_ptr<core::Replica>> replicas;
    for (std::uint32_t id = 0; id < 4; ++id) {
        core::ReplicaConfig config;
        config.engine = core::ReplicaEngine::kPbft;
        config.node_count = 4;
        config.block_interval = 0.5;
        config.data_dir = dirs.path / ("n" + std::to_string(id));
        replicas.push_back(
            std::make_unique<core::Replica>(hub.endpoint(id), config));
    }
    for (auto& r : replicas) r->start();
    for (std::uint64_t i = 0; i < 15; ++i)
        scheduler.schedule_after(0.2 * static_cast<double>(i), [&, i] {
            replicas[i % 4]->submit_transaction(record_tx(i, 1));
        });
    scheduler.run_until(20.0);
    for (auto& r : replicas) r->stop();
    scheduler.run_until(21.0);

    EXPECT_GT(replicas[0]->height(), 0u);
    for (std::size_t i = 1; i < replicas.size(); ++i) {
        EXPECT_EQ(replicas[i]->tip(), replicas[0]->tip());
        EXPECT_EQ(replicas[i]->height(), replicas[0]->height());
    }
    EXPECT_EQ(replicas[0]->confirmed_txs(), 15u);
}

// --- Daemon lifecycle through ClusterDriver (satellite: graceful shutdown) ---

TEST(Cluster, SigtermFlushesAndReopensWithZeroWalReplay) {
#ifdef DLT_NODE_BIN_PATH
    ::setenv("DLT_NODE_BIN", DLT_NODE_BIN_PATH, /*overwrite=*/0);
#endif
    TempDir work("cluster-sigterm");
    app::ClusterConfig config;
    config.node_count = 3;
    config.engine = core::ReplicaEngine::kNakamoto;
    config.block_interval = 0.25;
    config.work_dir = work.path;
    config.lsm_state = true; // LSM commits per WAL record: clean reopen replays 0
    app::ClusterDriver cluster(config);
    cluster.start();

    for (std::uint64_t i = 0; i < 12; ++i)
        EXPECT_TRUE(cluster.rpc(i % 3).submit(record_tx(i, 2)));
    ASSERT_TRUE(eventually(15.0, [&] {
        const auto s = cluster.rpc(1).status();
        return s && s->confirmed_txs >= 12 && s->height >= 2;
    }));

    // SIGTERM must flush and exit 0 — the graceful path, not a crash.
    cluster.signal_node(1, SIGTERM);
    EXPECT_EQ(cluster.wait_node(1), 0);

    // The surviving nodes keep making progress and still shut down cleanly.
    ASSERT_TRUE(eventually(10.0, [&] {
        const auto a = cluster.rpc(0).status();
        const auto b = cluster.rpc(2).status();
        return a && b && a->tip == b->tip && a->height >= 2;
    }));
    // Node 1 is already down; stop_all reports -1 for it and 0 for the rest.
    const std::vector<int> codes = cluster.stop_all();
    EXPECT_EQ(codes[0], 0);
    EXPECT_EQ(codes[2], 0);

    // Reopen the SIGTERMed node's data dir in-process: every connect was
    // WAL-committed into the LSM engine before the daemon exited, so recovery
    // must come from the engine with zero WAL records replayed.
    core::PersistentNodeOptions options;
    options.state_engine = core::StateEngine::kPersistent;
    core::PersistentNode node(cluster.data_dir(1),
                              ledger::make_genesis("e29", 0x207fffff), options);
    EXPECT_GT(node.height(), 0u);
    EXPECT_TRUE(node.recovery().from_state_engine);
    EXPECT_EQ(node.recovery().wal_records_replayed, 0u);
    EXPECT_EQ(node.recovery().wal_bytes_truncated, 0u);
}
