// Tests for the leader-based and alternative-proof consensus family: PoS stake
// lotteries, PoET wait certificates, the ordering service, PBFT (normal case,
// crash faults, view change, equivocating primary), and Bitcoin-NG.
#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "consensus/bitcoinng.hpp"
#include "consensus/ordering.hpp"
#include "consensus/pbft.hpp"
#include "consensus/poet.hpp"
#include "consensus/pos.hpp"
#include "crypto/sha256.hpp"
#include "ledger/difficulty.hpp"

namespace {

using namespace dlt;
using namespace dlt::consensus;
using namespace dlt::ledger;

// --- PoS -----------------------------------------------------------------------------

StakeDistribution three_stakers() {
    return StakeDistribution({
        Staker{crypto::PrivateKey::from_seed("s0").address(), 50 * kCoin},
        Staker{crypto::PrivateKey::from_seed("s1").address(), 30 * kCoin},
        Staker{crypto::PrivateKey::from_seed("s2").address(), 20 * kCoin},
    });
}

TEST(Pos, OwnerOfRespectsBoundaries) {
    const auto dist = three_stakers();
    EXPECT_EQ(dist.owner_of(0), 0u);
    EXPECT_EQ(dist.owner_of(50 * kCoin - 1), 0u);
    EXPECT_EQ(dist.owner_of(50 * kCoin), 1u);
    EXPECT_EQ(dist.owner_of(80 * kCoin - 1), 1u);
    EXPECT_EQ(dist.owner_of(80 * kCoin), 2u);
    EXPECT_EQ(dist.owner_of(100 * kCoin - 1), 2u);
}

TEST(Pos, LeaderSelectionIsDeterministic) {
    const auto dist = three_stakers();
    const Hash256 seed = crypto::sha256(to_bytes("epoch-1"));
    for (std::uint64_t slot = 0; slot < 20; ++slot)
        EXPECT_EQ(slot_leader(seed, slot, dist), slot_leader(seed, slot, dist));
}

TEST(Pos, WinsProportionalToStake) {
    const auto dist = three_stakers();
    const Hash256 seed = crypto::sha256(to_bytes("fairness"));
    std::map<std::size_t, int> wins;
    const int slots = 20000;
    for (int slot = 0; slot < slots; ++slot) ++wins[slot_leader(seed, slot, dist)];
    EXPECT_NEAR(wins[0] / double(slots), 0.5, 0.02);
    EXPECT_NEAR(wins[1] / double(slots), 0.3, 0.02);
    EXPECT_NEAR(wins[2] / double(slots), 0.2, 0.02);
}

TEST(Pos, ForgeAndVerify) {
    const auto dist = three_stakers();
    const Hash256 seed = crypto::sha256(to_bytes("chain"));
    const Block genesis = make_genesis("pos", easy_bits(1));
    const std::uint64_t slot = 3;
    const std::size_t leader = slot_leader(seed, slot, dist);

    const Block block = forge_block(genesis, slot, leader, seed, dist, 10.0);
    EXPECT_TRUE(verify_stake_proof(block.header, seed, dist));

    // A non-leader cannot forge.
    const std::size_t imposter = (leader + 1) % dist.size();
    EXPECT_THROW(forge_block(genesis, slot, imposter, seed, dist, 10.0),
                 ValidationError);

    // Forged proposer swap fails verification.
    Block tampered = block;
    tampered.header.proposer = dist.at(imposter).address;
    EXPECT_FALSE(verify_stake_proof(tampered.header, seed, dist));
}

TEST(Pos, EffortComparisonIsDrastic) {
    const auto effort = compare_effort(32, 100);
    // E5: PoW at 2^32 expected hashes vs one lottery hash per peer.
    EXPECT_GT(effort.hashes_per_block_pow / effort.hashes_per_block_pos, 1e6);
}

// --- PoET ----------------------------------------------------------------------------

TEST(Poet, DrawIsDeterministicAndVerifiable) {
    const Hash256 seed = crypto::sha256(to_bytes("sgx"));
    const WaitCertificate cert = poet_draw(seed, 5, 3, 10.0);
    EXPECT_TRUE(verify_wait_certificate(cert, seed, 10.0));
    WaitCertificate forged = cert;
    forged.wait_seconds *= 0.5; // claim a shorter wait
    EXPECT_FALSE(verify_wait_certificate(forged, seed, 10.0));
}

TEST(Poet, WinnerIsUniformAcrossPeers) {
    const Hash256 seed = crypto::sha256(to_bytes("fair-poet"));
    const std::uint32_t peers = 10;
    std::map<std::uint32_t, int> wins;
    const int rounds = 20000;
    for (int round = 0; round < rounds; ++round)
        ++wins[poet_round_winner(seed, round, peers, 10.0)];
    for (std::uint32_t p = 0; p < peers; ++p)
        EXPECT_NEAR(wins[p] / double(rounds), 0.1, 0.015) << "peer " << p;
}

TEST(Poet, RoundDurationShrinksWithMorePeers) {
    const Hash256 seed = crypto::sha256(to_bytes("duration"));
    double mean_small = 0, mean_large = 0;
    const int rounds = 2000;
    for (int r = 0; r < rounds; ++r) {
        mean_small += poet_round_duration(seed, r, 4, 10.0);
        mean_large += poet_round_duration(seed, r, 64, 10.0);
    }
    mean_small /= rounds;
    mean_large /= rounds;
    // Min of n exponentials has mean mean_wait/n.
    EXPECT_NEAR(mean_small, 10.0 / 4, 0.4);
    EXPECT_NEAR(mean_large, 10.0 / 64, 0.05);
}

// --- Ordering service -------------------------------------------------------------------

Transaction dummy_tx(std::uint64_t i) {
    Transaction tx;
    tx.kind = TxKind::kRecord;
    tx.nonce = i;
    tx.data = to_bytes("payload-" + std::to_string(i));
    return tx;
}

TEST(Ordering, BatchBySizeDeliversEverywhere) {
    OrderingParams params;
    params.peer_count = 5;
    params.batch_size = 10;
    OrderingService svc(params, 1);
    for (std::uint64_t i = 0; i < 25; ++i) svc.submit(dummy_tx(i));
    svc.run_for(10.0);

    EXPECT_TRUE(svc.ledgers_identical());
    const auto& ledger = svc.ledger_of(0);
    ASSERT_EQ(ledger.size(), 3u); // 10 + 10 + 5 (timeout batch)
    EXPECT_EQ(ledger[0].txs.size(), 10u);
    EXPECT_EQ(ledger[2].txs.size(), 5u);
}

TEST(Ordering, PartialBatchCutByTimer) {
    OrderingParams params;
    params.batch_size = 100;
    params.batch_interval = 0.5;
    OrderingService svc(params, 2);
    svc.submit(dummy_tx(0));
    svc.run_for(2.0);
    ASSERT_EQ(svc.ledger_of(0).size(), 1u);
    EXPECT_EQ(svc.ledger_of(0)[0].txs.size(), 1u);
}

TEST(Ordering, SequenceNumbersAreDense) {
    OrderingParams params;
    params.batch_size = 5;
    OrderingService svc(params, 3);
    for (std::uint64_t i = 0; i < 50; ++i) svc.submit(dummy_tx(i));
    svc.run_for(5.0);
    const auto& ledger = svc.ledger_of(1);
    for (std::size_t i = 0; i < ledger.size(); ++i)
        EXPECT_EQ(ledger[i].sequence, i + 1);
}

TEST(Ordering, RotatingLeaderUsesAllOrderers) {
    OrderingParams params;
    params.peer_count = 4;
    params.mode = OrdererMode::kRotatingLeader;
    params.batch_size = 2;
    OrderingService svc(params, 4);
    for (std::uint64_t i = 0; i < 40; ++i) svc.submit(dummy_tx(i));
    svc.run_for(10.0);

    std::map<std::uint32_t, int> by_orderer;
    for (const auto& block : svc.ledger_of(0)) ++by_orderer[block.orderer];
    EXPECT_EQ(by_orderer.size(), 4u);
    EXPECT_TRUE(svc.ledgers_identical());
}

TEST(Ordering, NoForksEver) {
    OrderingParams params;
    params.peer_count = 6;
    params.batch_size = 7;
    OrderingService svc(params, 5);
    for (std::uint64_t i = 0; i < 200; ++i) svc.submit(dummy_tx(i));
    svc.run_for(30.0);
    EXPECT_TRUE(svc.ledgers_identical());
    std::size_t total = 0;
    for (const auto& block : svc.ledger_of(0)) total += block.txs.size();
    EXPECT_EQ(total, 200u);
}

// --- PBFT ---------------------------------------------------------------------------------

PbftConfig small_cluster() {
    PbftConfig config;
    config.f = 1; // n = 4
    config.batch_size = 10;
    config.batch_interval = 0.1;
    config.view_change_timeout = 3.0;
    return config;
}

TEST(Pbft, CommitsRequestsInOrder) {
    PbftCluster cluster(small_cluster(), 1);
    for (int i = 0; i < 30; ++i) cluster.submit(to_bytes("op-" + std::to_string(i)));
    cluster.run_for(10.0);

    EXPECT_EQ(cluster.executed_requests(0), 30u);
    EXPECT_TRUE(cluster.logs_consistent());
    EXPECT_EQ(cluster.max_view(), 0u); // no view change in the happy path
    const auto& log = cluster.log_of(0);
    ASSERT_FALSE(log.empty());
    for (std::size_t i = 0; i < log.size(); ++i) EXPECT_EQ(log[i].sequence, i + 1);
}

TEST(Pbft, AllReplicasExecuteTheSame) {
    PbftCluster cluster(small_cluster(), 2);
    for (int i = 0; i < 50; ++i) cluster.submit(to_bytes("req" + std::to_string(i)));
    cluster.run_for(15.0);
    for (std::uint32_t r = 1; r < cluster.replica_count(); ++r)
        EXPECT_EQ(cluster.executed_requests(r), cluster.executed_requests(0));
    EXPECT_TRUE(cluster.logs_consistent());
}

TEST(Pbft, ToleratesOneCrashedBackup) {
    PbftCluster cluster(small_cluster(), 3);
    cluster.set_fault(2, PbftFault::kCrashed); // backup, not primary (view 0 -> 0)
    for (int i = 0; i < 20; ++i) cluster.submit(to_bytes("r" + std::to_string(i)));
    cluster.run_for(10.0);
    EXPECT_EQ(cluster.executed_requests(0), 20u);
    EXPECT_TRUE(cluster.logs_consistent());
}

TEST(Pbft, CrashedPrimaryTriggersViewChangeAndRecovers) {
    PbftCluster cluster(small_cluster(), 4);
    cluster.set_fault(0, PbftFault::kCrashed); // primary of view 0
    for (int i = 0; i < 15; ++i) cluster.submit(to_bytes("r" + std::to_string(i)));
    cluster.run_for(30.0);

    EXPECT_GE(cluster.max_view(), 1u); // a view change happened
    EXPECT_EQ(cluster.executed_requests(1), 15u);
    EXPECT_TRUE(cluster.logs_consistent());
}

TEST(Pbft, EquivocatingPrimaryCannotSplitTheCluster) {
    PbftCluster cluster(small_cluster(), 5);
    cluster.set_fault(0, PbftFault::kEquivocating);
    for (int i = 0; i < 12; ++i) cluster.submit(to_bytes("r" + std::to_string(i)));
    cluster.run_for(40.0);

    // Progress resumed under a new (honest) primary, and no divergence.
    EXPECT_TRUE(cluster.logs_consistent());
    EXPECT_GE(cluster.max_view(), 1u);
    EXPECT_EQ(cluster.executed_requests(1), 12u);
}

TEST(Pbft, TwoCrashesWithFOneStallsButStaysConsistent) {
    // f=1 tolerates one fault; two crashed replicas leave only 2 of 4 — below
    // the 2f+1 quorum, so nothing can commit, but safety must hold.
    PbftCluster cluster(small_cluster(), 6);
    cluster.set_fault(2, PbftFault::kCrashed);
    cluster.set_fault(3, PbftFault::kCrashed);
    for (int i = 0; i < 10; ++i) cluster.submit(to_bytes("r" + std::to_string(i)));
    cluster.run_for(30.0);
    EXPECT_EQ(cluster.executed_requests(0), 0u);
    EXPECT_TRUE(cluster.logs_consistent());
}

TEST(Pbft, LargerClusterCommits) {
    PbftConfig config = small_cluster();
    config.f = 2; // n = 7
    PbftCluster cluster(config, 7);
    for (int i = 0; i < 40; ++i) cluster.submit(to_bytes("r" + std::to_string(i)));
    cluster.run_for(15.0);
    EXPECT_EQ(cluster.executed_requests(0), 40u);
    EXPECT_TRUE(cluster.logs_consistent());
}

TEST(Pbft, LatencyIsNetworkBoundNotBlockBound) {
    PbftCluster cluster(small_cluster(), 8);
    for (int i = 0; i < 10; ++i) cluster.submit(to_bytes("r" + std::to_string(i)));
    cluster.run_for(10.0);
    const auto latency = cluster.mean_commit_latency();
    ASSERT_TRUE(latency.has_value());
    // Three message rounds at ~50 ms per hop plus batch wait << 1 s — orders of
    // magnitude below PoW confirmation (600 s).
    EXPECT_LT(*latency, 2.0);
}

TEST(Pbft, QuorumSplittingPartitionStallsThenRecoversAfterHeal) {
    // E22's PBFT side: a 2|2 split of an f=1 cluster leaves both sides below
    // the 2f+1 quorum. Nothing may commit during the cut (liveness loss), and
    // safety must hold; after the heal the retried view changes must restore
    // liveness and every pending request commits consistently.
    PbftCluster cluster(small_cluster(), 9);
    cluster.network().partition("cut", {{0, 1}, {2, 3}});
    for (int i = 0; i < 10; ++i) cluster.submit(to_bytes("r" + std::to_string(i)));
    cluster.run_for(30.0);
    for (std::uint32_t r = 0; r < cluster.replica_count(); ++r)
        EXPECT_EQ(cluster.executed_requests(r), 0u) << "replica " << r;
    EXPECT_TRUE(cluster.logs_consistent());
    EXPECT_GT(cluster.traffic().messages_partitioned, 0u);

    cluster.network().heal("cut");
    cluster.run_for(60.0);
    for (std::uint32_t r = 0; r < cluster.replica_count(); ++r)
        EXPECT_EQ(cluster.executed_requests(r), 10u) << "replica " << r;
    EXPECT_TRUE(cluster.logs_consistent());
    // The stalled view-0 primary was voted out while timers expired in vain.
    EXPECT_GE(cluster.max_view(), 1u);
}

TEST(Pbft, FaultPlanDrivesPartitionOnSchedule) {
    // Same scenario via a declarative FaultPlan instead of manual calls.
    PbftCluster cluster(small_cluster(), 10);
    net::FaultPlan plan;
    plan.cut(1.0, "cut", {{0, 1}, {2, 3}}).heal(25.0, "cut");
    cluster.network().apply(plan);
    cluster.run_for(2.0); // let the scheduled cut take effect before submitting
    for (int i = 0; i < 8; ++i) cluster.submit(to_bytes("r" + std::to_string(i)));
    cluster.run_for(18.0);
    EXPECT_EQ(cluster.executed_requests(0), 0u); // still cut at t=20
    cluster.run_for(60.0);
    for (std::uint32_t r = 0; r < cluster.replica_count(); ++r)
        EXPECT_EQ(cluster.executed_requests(r), 8u) << "replica " << r;
    EXPECT_TRUE(cluster.logs_consistent());
}

// --- Bitcoin-NG -----------------------------------------------------------------------------

TEST(BitcoinNg, ThroughputFarExceedsKeyBlockRate) {
    BitcoinNgParams params;
    params.key_block_interval = 600.0;
    params.microblock_interval = 1.0;
    params.tx_rate = 40.0;
    BitcoinNgSimulation sim(params, 1);
    sim.start();
    sim.run_for(3600);

    // Nakamoto at the same interval and ~2000 tx/block serializes ~3.3 tps;
    // NG keeps up with the offered load instead.
    EXPECT_GT(sim.throughput_tps(), 30.0);
    EXPECT_GT(sim.stats().microblocks, sim.stats().key_blocks);
}

TEST(BitcoinNg, InclusionLatencyTracksMicroblockInterval) {
    BitcoinNgParams params;
    params.microblock_interval = 0.5;
    params.tx_rate = 20.0;
    BitcoinNgSimulation sim(params, 2);
    sim.start();
    sim.run_for(3600);
    const auto latency = sim.mean_inclusion_latency();
    ASSERT_TRUE(latency.has_value());
    EXPECT_LT(*latency, 5.0); // far below the 600 s key-block interval
}

TEST(BitcoinNg, LeaderSwitchesHappen) {
    BitcoinNgParams params;
    params.key_block_interval = 100.0;
    BitcoinNgSimulation sim(params, 3);
    sim.start();
    sim.run_for(100.0 * 50);
    EXPECT_GT(sim.stats().key_blocks, 20u);
    EXPECT_GT(sim.stats().leader_switches, 5u);
}

} // namespace
