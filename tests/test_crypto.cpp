// Unit + property tests for the crypto module: SHA-256/RIPEMD-160/HMAC known
// vectors, U256 arithmetic properties, secp256k1 curve laws, and ECDSA
// sign/verify round trips including RFC-6979 determinism.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "crypto/hmac.hpp"
#include "crypto/keys.hpp"
#include "crypto/ripemd160.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sigcache.hpp"
#include "crypto/uint256.hpp"

namespace {

using namespace dlt;
using namespace dlt::crypto;
namespace ec = dlt::crypto::secp256k1;

// --- SHA-256 (FIPS 180-4 vectors) -----------------------------------------------

TEST(Sha256, EmptyString) {
    EXPECT_EQ(sha256(Bytes{}).hex(),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(sha256(to_bytes("abc")).hex(),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(sha256(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")).hex(),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
    Sha256 ctx;
    const Bytes chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) ctx.update(chunk);
    EXPECT_EQ(ctx.finalize().hex(),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
    Rng rng(1);
    Bytes data(300);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    for (const std::size_t split : {0ul, 1ul, 63ul, 64ul, 65ul, 150ul, 299ul}) {
        Sha256 ctx;
        ctx.update(ByteView{data.data(), split});
        ctx.update(ByteView{data.data() + split, data.size() - split});
        EXPECT_EQ(ctx.finalize(), sha256(data)) << "split=" << split;
    }
}

TEST(Sha256, DoubleSha) {
    // sha256d("hello") cross-checked against Bitcoin tooling.
    EXPECT_EQ(sha256d(to_bytes("hello")).hex(),
              "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50");
}

TEST(Sha256, TaggedHashSeparatesDomains) {
    const Bytes msg = to_bytes("payload");
    EXPECT_NE(tagged_hash("a", msg), tagged_hash("b", msg));
    EXPECT_NE(tagged_hash("a", msg), sha256(msg));
}

// --- SHA-256 backend dispatch (SHA-NI vs scalar) --------------------------------

/// Force the scalar backend for one scope, restoring auto-dispatch even when an
/// assertion fails mid-test.
struct ScopedScalarSha {
    ScopedScalarSha() { sha256_force_scalar(true); }
    ~ScopedScalarSha() { sha256_force_scalar(false); }
};

TEST(Sha256Backend, ScalarAndDispatchedAgreeOnAllLengths) {
    // On CPUs without SHA-NI both runs use the scalar transform and the test
    // is a tautology; with it, every boundary length cross-checks the
    // hand-written intrinsics against the portable implementation.
    Rng rng(7);
    for (const std::size_t len :
         {0ul, 1ul, 31ul, 55ul, 56ul, 63ul, 64ul, 65ul, 127ul, 128ul, 129ul, 1000ul}) {
        Bytes data(len);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
        Hash256 scalar_digest;
        {
            ScopedScalarSha forced;
            scalar_digest = sha256(data);
        }
        EXPECT_EQ(sha256(data), scalar_digest) << "len=" << len;
    }
}

TEST(Sha256Backend, DoubleShaAgreesAcrossBackends) {
    Rng rng(8);
    Bytes data(200);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    Hash256 scalar_digest;
    {
        ScopedScalarSha forced;
        scalar_digest = sha256d(data);
    }
    EXPECT_EQ(sha256d(data), scalar_digest);
}

TEST(Sha256Backend, FastPathsMatchComposedDefinitions) {
    Rng rng(9);
    std::uint8_t block[64];
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
    const ByteView view{block, 64};

    // sha256_64 / sha256d_64 are specialized shapes of the generic functions.
    EXPECT_EQ(sha256_64(block), sha256(view));
    EXPECT_EQ(sha256d_64(block), sha256(sha256(view).view()));
    EXPECT_EQ(sha256d_64(block), sha256d(view));

    // hash_pair(l, r) is sha256(l || r) — the Merkle inner-node rule.
    Hash256 left, right;
    for (std::size_t i = 0; i < 32; ++i) {
        left.data[i] = block[i];
        right.data[i] = block[32 + i];
    }
    EXPECT_EQ(hash_pair(left, right), sha256_64(block));

    // The fast paths also agree across backends.
    Hash256 scalar_digest;
    {
        ScopedScalarSha forced;
        scalar_digest = sha256d_64(block);
    }
    EXPECT_EQ(sha256d_64(block), scalar_digest);
}

// --- RIPEMD-160 (official vectors) ----------------------------------------------

TEST(Ripemd160, Empty) {
    EXPECT_EQ(ripemd160(Bytes{}).hex(), "9c1185a5c5e9fc54612808977ee8f548b2258d31");
}

TEST(Ripemd160, Abc) {
    EXPECT_EQ(ripemd160(to_bytes("abc")).hex(),
              "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc");
}

TEST(Ripemd160, Alphabet) {
    EXPECT_EQ(ripemd160(to_bytes("abcdefghijklmnopqrstuvwxyz")).hex(),
              "f71c27109c692c1b56bbdceb5b9d2865b3708dbc");
}

TEST(Ripemd160, LongVector) {
    EXPECT_EQ(
        ripemd160(to_bytes(
                      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"))
            .hex(),
        "b0e20b6e3116640286ed3a87a5713079b21f5189");
}

// --- HMAC-SHA256 (RFC 4231 vectors) ----------------------------------------------

TEST(Hmac, Rfc4231Case1) {
    const Bytes key(20, 0x0b);
    EXPECT_EQ(hmac_sha256(key, to_bytes("Hi There")).hex(),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
    EXPECT_EQ(hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?")).hex(),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231LongKey) {
    const Bytes key(131, 0xaa);
    EXPECT_EQ(hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size Key - "
                                        "Hash Key First"))
                  .hex(),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, SplitMatchesJoined) {
    const Bytes key = to_bytes("key");
    const Bytes a = to_bytes("part-one|");
    const Bytes b = to_bytes("part-two");
    Bytes joined = a;
    append(joined, b);
    EXPECT_EQ(hmac_sha256(key, a, b), hmac_sha256(key, joined));
}

// --- U256 -----------------------------------------------------------------------

TEST(U256, HexRoundTrip) {
    const U256 v = U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
    EXPECT_EQ(v.hex(), "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
}

TEST(U256, ShortHexIsLeftPadded) {
    EXPECT_EQ(U256::from_hex("ff"), U256(255));
}

TEST(U256, AddCarryPropagates) {
    const U256 max = U256::max();
    bool carry = false;
    const U256 sum = max.add(U256::one(), &carry);
    EXPECT_TRUE(carry);
    EXPECT_TRUE(sum.is_zero());
}

TEST(U256, SubBorrow) {
    bool borrow = false;
    const U256 diff = U256::zero().sub(U256::one(), &borrow);
    EXPECT_TRUE(borrow);
    EXPECT_EQ(diff, U256::max());
}

TEST(U256, AddSubInverse) {
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const U256 a(rng.next(), rng.next(), rng.next(), rng.next());
        const U256 b(rng.next(), rng.next(), rng.next(), rng.next());
        EXPECT_EQ((a + b) - b, a);
    }
}

TEST(U256, ShiftInverse) {
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        const U256 a(rng.next(), rng.next(), rng.next(), 0);
        const unsigned n = static_cast<unsigned>(rng.uniform(64));
        EXPECT_EQ((a << n) >> n, a);
    }
}

TEST(U256, MulWideMatchesSmall) {
    const U256 a(0xFFFFFFFFFFFFFFFFull);
    const U256 b(0x100);
    const auto wide = a.mul_wide(b);
    EXPECT_TRUE(wide.hi.is_zero());
    EXPECT_EQ(wide.lo, U256(0xFFFFFFFFFFFFFF00ull, 0xFF, 0, 0));
}

TEST(U256, DivModIdentity) {
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const U256 a(rng.next(), rng.next(), rng.next(), rng.next());
        const U256 b(rng.next(), rng.next(), 0, 0);
        if (b.is_zero()) continue;
        const auto dm = a.divmod(b);
        EXPECT_LT(dm.remainder, b);
        // a == q*b + r
        EXPECT_EQ(dm.quotient.mul_wide(b).lo + dm.remainder, a);
    }
}

TEST(U256, ModWideMatchesDirect) {
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        const U256 a(rng.next(), rng.next(), rng.next(), rng.next());
        const U256 m(rng.next() | 1, rng.next(), rng.next(), rng.next());
        const U256::Wide w{a, U256::zero()}; // hi = 0 means value == a
        EXPECT_EQ(mod_wide(w, m), a % m);
    }
}

TEST(U256, HighestBit) {
    EXPECT_EQ(U256::zero().highest_bit(), -1);
    EXPECT_EQ(U256::one().highest_bit(), 0);
    EXPECT_EQ((U256::one() << 200).highest_bit(), 200);
}

// --- secp256k1 --------------------------------------------------------------------

TEST(Secp256k1, GeneratorOnCurve) { EXPECT_TRUE(ec::is_on_curve(ec::generator())); }

TEST(Secp256k1, KnownMultiples) {
    // 2*G, standard test vector.
    const ec::Point two_g = ec::multiply(U256(2), ec::generator());
    EXPECT_EQ(two_g.x.hex(),
              "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
    EXPECT_EQ(two_g.y.hex(),
              "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Secp256k1, MultiplyByOrderGivesInfinity) {
    const ec::Point p = ec::multiply(ec::group_order(), ec::generator());
    EXPECT_TRUE(p.infinity);
}

TEST(Secp256k1, AdditionCommutes) {
    const ec::Point a = ec::multiply(U256(123456789), ec::generator());
    const ec::Point b = ec::multiply(U256(987654321), ec::generator());
    EXPECT_EQ(ec::add(a, b), ec::add(b, a));
}

TEST(Secp256k1, AdditionMatchesScalarSum) {
    const ec::Point a = ec::multiply(U256(1111), ec::generator());
    const ec::Point b = ec::multiply(U256(2222), ec::generator());
    EXPECT_EQ(ec::add(a, b), ec::multiply(U256(3333), ec::generator()));
}

TEST(Secp256k1, NegateGivesInverse) {
    const ec::Point a = ec::multiply(U256(42), ec::generator());
    const ec::Point sum = ec::add(a, ec::negate(a));
    EXPECT_TRUE(sum.infinity);
}

TEST(Secp256k1, CompressedRoundTrip) {
    Rng rng(11);
    for (int i = 0; i < 10; ++i) {
        const PrivateKey priv = PrivateKey::generate(rng);
        const ec::Point p = priv.public_key().point();
        const Bytes enc = ec::encode_compressed(p);
        ASSERT_EQ(enc.size(), 33u);
        EXPECT_EQ(ec::decode_compressed(enc), p);
    }
}

TEST(Secp256k1, DecodeRejectsGarbage) {
    Bytes bad(33, 0x02);
    // x = 0x0202...02 may or may not be on curve; flip to a definitely-bad prefix.
    bad[0] = 0x05;
    EXPECT_THROW(ec::decode_compressed(bad), CryptoError);
    EXPECT_THROW(ec::decode_compressed(Bytes(32, 0x02)), CryptoError);
}

TEST(Secp256k1, FieldInverse) {
    Rng rng(13);
    for (int i = 0; i < 20; ++i) {
        const U256 a(rng.next() | 1, rng.next(), rng.next(), 0);
        EXPECT_EQ(ec::fe_mul(a, ec::fe_inv(a)), U256::one());
    }
}

TEST(Secp256k1, ScalarInverse) {
    Rng rng(15);
    for (int i = 0; i < 20; ++i) {
        const U256 a(rng.next() | 1, rng.next(), 0, 0);
        EXPECT_EQ(ec::sc_mul(a, ec::sc_inv(a)), U256::one());
    }
}

TEST(Secp256k1, SqrtOfSquare) {
    Rng rng(17);
    for (int i = 0; i < 20; ++i) {
        const U256 a(rng.next(), rng.next(), rng.next(), 0);
        const U256 sq = ec::fe_sqr(a);
        const auto root = ec::fe_sqrt(sq);
        ASSERT_TRUE(root.has_value());
        // root is ±a
        const bool matches = *root == a || ec::fe_add(*root, a).is_zero() ||
                             *root == ec::fe_sub(U256::zero(), a);
        EXPECT_TRUE(matches);
    }
}

// --- ECDSA ------------------------------------------------------------------------

TEST(Ecdsa, SignVerifyRoundTrip) {
    Rng rng(19);
    for (int i = 0; i < 8; ++i) {
        const PrivateKey priv = PrivateKey::generate(rng);
        const Hash256 msg = sha256(to_bytes("message " + std::to_string(i)));
        const auto sig = priv.sign(msg);
        EXPECT_TRUE(priv.public_key().verify(msg, sig));
    }
}

TEST(Ecdsa, RejectsWrongMessage) {
    const PrivateKey priv = PrivateKey::from_seed("alice");
    const auto sig = priv.sign(sha256(to_bytes("pay bob 10")));
    EXPECT_FALSE(priv.public_key().verify(sha256(to_bytes("pay bob 1000")), sig));
}

TEST(Ecdsa, RejectsWrongKey) {
    const PrivateKey alice = PrivateKey::from_seed("alice");
    const PrivateKey eve = PrivateKey::from_seed("eve");
    const Hash256 msg = sha256(to_bytes("hello"));
    EXPECT_FALSE(eve.public_key().verify(msg, alice.sign(msg)));
}

TEST(Ecdsa, DeterministicNonces) {
    const PrivateKey priv = PrivateKey::from_seed("rfc6979");
    const Hash256 msg = sha256(to_bytes("sample"));
    EXPECT_EQ(priv.sign(msg), priv.sign(msg));
}

TEST(Ecdsa, DifferentMessagesDifferentNonces) {
    const PrivateKey priv = PrivateKey::from_seed("rfc6979");
    const U256 k1 = ec::rfc6979_nonce(priv.secret(), sha256(to_bytes("m1")));
    const U256 k2 = ec::rfc6979_nonce(priv.secret(), sha256(to_bytes("m2")));
    EXPECT_NE(k1, k2);
}

TEST(Ecdsa, LowSNormalization) {
    Rng rng(23);
    const U256 half_order = ec::group_order() >> 1;
    for (int i = 0; i < 8; ++i) {
        const PrivateKey priv = PrivateKey::generate(rng);
        const auto sig = priv.sign(sha256(to_bytes("m" + std::to_string(i))));
        EXPECT_LE(sig.s, half_order);
    }
}

TEST(Ecdsa, SignatureEncodingRoundTrip) {
    const PrivateKey priv = PrivateKey::from_seed("encoding");
    const auto sig = priv.sign(sha256(to_bytes("x")));
    const auto decoded = ec::Signature::decode(sig.encode());
    EXPECT_EQ(decoded, sig);
}

TEST(Ecdsa, MalleatedSignatureRejected) {
    const PrivateKey priv = PrivateKey::from_seed("malleability");
    const Hash256 msg = sha256(to_bytes("tx"));
    auto sig = priv.sign(msg);
    sig.s = ec::group_order() - sig.s; // high-s twin
    // The high-s twin still satisfies the curve equation but our verifier accepts
    // it (standard ECDSA); wallets enforce low-s at the ledger validation layer.
    // Here we only check tampering with r breaks the signature:
    auto bad = priv.sign(msg);
    bad.r = ec::sc_add(bad.r, U256::one());
    EXPECT_FALSE(priv.public_key().verify(msg, bad));
}

TEST(Ecdsa, ZeroSignatureRejected) {
    const PrivateKey priv = PrivateKey::from_seed("zeros");
    const Hash256 msg = sha256(to_bytes("x"));
    EXPECT_FALSE(priv.public_key().verify(msg, ec::Signature{U256::zero(), U256::zero()}));
}

// --- Keys / addresses ---------------------------------------------------------------

TEST(Keys, AddressIsHash160OfPubkey) {
    const PrivateKey priv = PrivateKey::from_seed("addr");
    const PublicKey pub = priv.public_key();
    EXPECT_EQ(pub.address(), hash160(pub.encode()));
}

TEST(Keys, DistinctSeedsDistinctAddresses) {
    EXPECT_NE(PrivateKey::from_seed("a").address(), PrivateKey::from_seed("b").address());
}

TEST(Keys, FromSeedIsStable) {
    EXPECT_EQ(PrivateKey::from_seed("stable").secret(),
              PrivateKey::from_seed("stable").secret());
}

TEST(Keys, RejectsOutOfRangeSecret) {
    EXPECT_THROW(PrivateKey(U256::zero()), CryptoError);
    EXPECT_THROW(PrivateKey(ec::group_order()), CryptoError);
}

// --- Scalar multiplication cross-checks (wNAF / fixed-base comb) --------------------

// Textbook double-and-add over the public affine API, as an independent oracle
// for the wNAF and comb-table fast paths.
ec::Point ref_multiply(U256 k, ec::Point p) {
    ec::Point acc; // infinity
    while (!k.is_zero()) {
        if (k.bit(0)) acc = ec::add(acc, p);
        p = ec::add(p, p);
        k = k >> 1;
    }
    return acc;
}

TEST(Secp256k1, MultiplyMatchesRepeatedAddition) {
    // Q != G so multiply() takes the generic wNAF path, not the comb table.
    const ec::Point q = ec::add(ec::generator(), ec::generator());
    ec::Point acc; // infinity
    for (std::uint64_t k = 1; k <= 40; ++k) {
        acc = ec::add(acc, q);
        EXPECT_EQ(ec::multiply(U256(k), q), acc) << "k=" << k;
    }
}

TEST(Secp256k1, FixedBaseMatchesDoubleAndAdd) {
    for (const char* seed : {"comb-a", "comb-b", "comb-c"}) {
        const U256 k = ec::sc_reduce(U256::from_hash(sha256(to_bytes(seed))));
        EXPECT_EQ(ec::multiply(k, ec::generator()),
                  ref_multiply(k, ec::generator()))
            << seed;
    }
}

TEST(Secp256k1, WnafMatchesDoubleAndAddOnRandomScalars) {
    const ec::Point q = ec::multiply(U256(7), ec::generator());
    for (const char* seed : {"wnaf-a", "wnaf-b", "wnaf-c"}) {
        const U256 k = ec::sc_reduce(U256::from_hash(sha256(to_bytes(seed))));
        EXPECT_EQ(ec::multiply(k, q), ref_multiply(k, q)) << seed;
    }
}

TEST(Secp256k1, OrderMinusOneNegates) {
    // n-1 is all-high nibbles in wNAF terms: exercises negative digits and the
    // full depth of the comb table.
    const U256 n_minus_1 = ec::group_order() - U256::one();
    EXPECT_EQ(ec::multiply(n_minus_1, ec::generator()),
              ec::negate(ec::generator()));
    const ec::Point q = ec::multiply(U256(5), ec::generator());
    EXPECT_EQ(ec::multiply(n_minus_1, q), ec::negate(q));
}

TEST(Secp256k1, DoubleMultiplyMatchesSeparateMultiplies) {
    const ec::Point q = ec::multiply(U256(11), ec::generator());
    const U256 u1 = ec::sc_reduce(U256::from_hash(sha256(to_bytes("dm-u1"))));
    const U256 u2 = ec::sc_reduce(U256::from_hash(sha256(to_bytes("dm-u2"))));
    EXPECT_EQ(ec::double_multiply(u1, u2, q),
              ec::add(ec::multiply(u1, ec::generator()), ec::multiply(u2, q)));
}

// --- Signature cache ----------------------------------------------------------------

Hash256 cache_key_for(unsigned i) {
    return sha256(to_bytes("sigcache-key-" + std::to_string(i)));
}

TEST(SigCache, LookupMissThenHit) {
    SigCache cache(8);
    const Hash256 key = cache_key_for(0);
    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.insert(key, true);
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(*hit);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(SigCache, StoresNegativeOutcomes) {
    SigCache cache(8);
    const Hash256 key = cache_key_for(1);
    cache.insert(key, false);
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(*hit);
}

TEST(SigCache, DuplicateInsertIsIgnored) {
    SigCache cache(8);
    const Hash256 key = cache_key_for(2);
    cache.insert(key, true);
    cache.insert(key, true);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
}

// Keys that all land in stripe 0, so the per-stripe FIFO order is observable
// (eviction is independent per stripe since the cache was lock-striped).
Hash256 stripe0_key_for(unsigned i) {
    for (unsigned nonce = 0;; ++nonce) {
        const Hash256 h = sha256(
            to_bytes("sigcache-stripe-" + std::to_string(i) + "-" + std::to_string(nonce)));
        if (SigCache::stripe_index(h) == 0) return h;
    }
}

TEST(SigCache, EvictsOldestInsertionFirstWithinStripe) {
    // Capacity 3 * kStripes gives each stripe room for exactly 3 entries.
    SigCache cache(3 * SigCache::kStripes);
    ASSERT_EQ(cache.stripe_capacity(), 3u);
    for (unsigned i = 0; i < 3; ++i) cache.insert(stripe0_key_for(i), true);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // A fourth same-stripe insertion evicts key 0 (the stripe's oldest).
    cache.insert(stripe0_key_for(3), true);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(cache.lookup(stripe0_key_for(0)).has_value());
    EXPECT_TRUE(cache.lookup(stripe0_key_for(1)).has_value());
    EXPECT_TRUE(cache.lookup(stripe0_key_for(2)).has_value());
    EXPECT_TRUE(cache.lookup(stripe0_key_for(3)).has_value());

    // The next eviction takes key 1: FIFO order survives the ring wrap.
    cache.insert(stripe0_key_for(4), true);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_FALSE(cache.lookup(stripe0_key_for(1)).has_value());
    EXPECT_TRUE(cache.lookup(stripe0_key_for(4)).has_value());

    // A key in a different stripe doesn't disturb stripe 0's occupancy.
    Hash256 other = cache_key_for(99);
    other.data[0] = 0x01; // stripe 1
    cache.insert(other, true);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_EQ(cache.size(), 4u);
}

TEST(SigCache, CachedVerifyMatchesDirectVerify) {
    SigCache& cache = SigCache::global();
    cache.clear();
    cache.reset_stats();

    const PrivateKey priv = PrivateKey::from_seed("sigcache-verify");
    const Hash256 msg = sha256(to_bytes("cached message"));
    const Bytes pubkey = priv.public_key().encode();
    const Bytes sig = priv.sign(msg).encode();

    EXPECT_TRUE(verify_signature_cached(pubkey, msg, sig));
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_TRUE(verify_signature_cached(pubkey, msg, sig)); // second call hits
    EXPECT_EQ(cache.stats().hits, 1u);

    // A wrong message is rejected, and the rejection is cached too.
    const Hash256 other = sha256(to_bytes("some other message"));
    EXPECT_FALSE(verify_signature_cached(pubkey, other, sig));
    EXPECT_FALSE(verify_signature_cached(pubkey, other, sig));
    EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(SigCache, MalformedInputsVerifyFalseWithoutThrowing) {
    SigCache& cache = SigCache::global();
    cache.clear();
    cache.reset_stats();

    const Hash256 msg = sha256(to_bytes("garbage"));
    const Bytes bad_pubkey(33, 0xAB); // 0xAB is not a valid SEC1 prefix
    const Bytes bad_sig(64, 0x00);
    EXPECT_FALSE(verify_signature_cached(bad_pubkey, msg, bad_sig));
    EXPECT_FALSE(verify_signature_cached(bad_pubkey, msg, bad_sig));
    EXPECT_EQ(cache.stats().hits, 1u); // the negative outcome was cached
}

} // namespace
