// Tests for the parallel validation engine: the thread pool, parallel_for,
// the CheckQueue (protocol edge cases, failure positions, re-entrancy,
// teardown mid-batch), the striped sigcache under concurrent load, and — most
// importantly — serial/parallel equivalence: every observable outcome
// (validation verdicts, Merkle/MPT/IAVL roots, virtual-time simulation
// results) must be bit-identical at any worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/checkqueue.hpp"
#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "consensus/nakamoto.hpp"
#include "consensus/ordering.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sigcache.hpp"
#include "datastruct/iavl.hpp"
#include "datastruct/merkle.hpp"
#include "datastruct/mpt.hpp"
#include "ledger/block.hpp"
#include "ledger/validation.hpp"

namespace {

using namespace dlt;

/// RAII guard: set the global pool's worker count for one test, restore serial
/// afterwards so tests are independent of execution order.
struct GlobalWorkers {
    explicit GlobalWorkers(std::size_t workers) {
        ThreadPool::set_global_workers(workers);
    }
    ~GlobalWorkers() { ThreadPool::set_global_workers(0); }
};

// --- ThreadPool ----------------------------------------------------------------------

TEST(ThreadPool, ZeroWorkersRunsInline) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.worker_count(), 0u);
    bool ran = false;
    pool.submit([&] { ran = true; });
    EXPECT_TRUE(ran); // inline: completed before submit returned
}

TEST(ThreadPool, WorkersDrainTheQueue) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.worker_count(), 3u);
    std::atomic<int> count{0};
    std::promise<void> done;
    const int kTasks = 64;
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&] {
            if (count.fetch_add(1) + 1 == kTasks) done.set_value();
        });
    done.get_future().wait();
    EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPool, OnWorkerThreadFlag) {
    EXPECT_FALSE(ThreadPool::on_worker_thread());
    ThreadPool pool(1);
    std::promise<bool> seen;
    pool.submit([&] { seen.set_value(ThreadPool::on_worker_thread()); });
    EXPECT_TRUE(seen.get_future().get());
    EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ThreadPool, SetGlobalWorkersRoundTrip) {
    GlobalWorkers guard(2);
    EXPECT_EQ(ThreadPool::global_workers(), 2u);
    EXPECT_EQ(ThreadPool::global().worker_count(), 2u);
    ThreadPool::set_global_workers(0);
    EXPECT_EQ(ThreadPool::global_workers(), 0u);
}

// --- parallel_for --------------------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    for (const std::size_t workers : {std::size_t{0}, std::size_t{3}}) {
        ThreadPool pool(workers);
        const std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        parallel_for(pool, 0, n, [&](std::size_t i) { ++hits[i]; }, /*grain=*/7);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " workers " << workers;
    }
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
    ThreadPool pool(2);
    int calls = 0;
    parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesTheFirstException) {
    ThreadPool pool(2);
    EXPECT_THROW(
        parallel_for(pool, 0, 100,
                     [](std::size_t i) {
                         if (i == 42) throw std::runtime_error("boom");
                     }),
        std::runtime_error);
}

TEST(ParallelFor, NestedCallFromWorkerDegradesToSerialWithoutDeadlock) {
    // A parallel_for issued from inside a pool worker must not submit helper
    // tasks (they would queue behind the very task that is waiting on them).
    // With one worker this deadlocks unless the nested call degrades to a
    // serial loop — so the test passing at all is the property under test.
    ThreadPool pool(1);
    std::atomic<int> inner{0};
    std::promise<void> done;
    pool.submit([&] {
        parallel_for(pool, 0, 100, [&](std::size_t) { ++inner; });
        done.set_value();
    });
    ASSERT_EQ(done.get_future().wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "nested parallel_for deadlocked";
    EXPECT_EQ(inner.load(), 100);
}

// --- CheckQueue ----------------------------------------------------------------------

using FnCheck = std::function<bool()>;

TEST(CheckQueue, EmptyBatchIsVacuouslyTrue) {
    ThreadPool pool(2);
    CheckQueue<FnCheck> queue(pool);
    EXPECT_TRUE(queue.complete()); // nothing added at all
    queue.add({});                 // explicitly empty batch
    EXPECT_TRUE(queue.complete());
}

TEST(CheckQueue, BatchSmallerThanWorkerCount) {
    ThreadPool pool(8);
    CheckQueue<FnCheck> queue(pool, /*grain=*/1);
    std::atomic<int> ran{0};
    std::vector<FnCheck> checks;
    for (int i = 0; i < 3; ++i)
        checks.push_back([&ran] {
            ++ran;
            return true;
        });
    queue.add(std::move(checks));
    EXPECT_TRUE(queue.complete());
    EXPECT_EQ(ran.load(), 3);
}

TEST(CheckQueue, AllPassingChecksRunExactlyOnce) {
    ThreadPool pool(3);
    CheckQueue<FnCheck> queue(pool, /*grain=*/8);
    const std::size_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    std::vector<FnCheck> checks;
    for (std::size_t i = 0; i < n; ++i)
        checks.push_back([&hits, i] {
            ++hits[i];
            return true;
        });
    queue.add(std::move(checks));
    EXPECT_TRUE(queue.complete());
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(CheckQueue, FailingCheckAtEveryPositionFailsTheBatch) {
    ThreadPool pool(2);
    CheckQueue<FnCheck> queue(pool, /*grain=*/3);
    const std::size_t n = 24;
    for (std::size_t fail_at = 0; fail_at < n; ++fail_at) {
        std::vector<FnCheck> checks;
        for (std::size_t i = 0; i < n; ++i)
            checks.push_back([i, fail_at] { return i != fail_at; });
        queue.add(std::move(checks));
        EXPECT_FALSE(queue.complete()) << "failure at position " << fail_at;
    }
    // The queue resets after each complete(): a clean batch still passes.
    queue.add({FnCheck{[] { return true; }}});
    EXPECT_TRUE(queue.complete());
}

TEST(CheckQueue, ThrowingCheckCountsAsFailed) {
    ThreadPool pool(2);
    CheckQueue<FnCheck> queue(pool);
    std::vector<FnCheck> checks;
    for (int i = 0; i < 8; ++i) checks.push_back([] { return true; });
    checks.push_back([]() -> bool { throw std::runtime_error("escaped"); });
    queue.add(std::move(checks));
    EXPECT_FALSE(queue.complete());
}

TEST(CheckQueue, ReentrantUseFromACheckIsRejected) {
    ThreadPool pool(2);
    CheckQueue<FnCheck> queue(pool);
    std::atomic<int> add_rejected{0};
    std::atomic<int> complete_rejected{0};
    std::vector<FnCheck> checks;
    checks.push_back([&] {
        try {
            queue.add({FnCheck{[] { return true; }}});
        } catch (const std::logic_error&) {
            ++add_rejected;
        }
        return true;
    });
    checks.push_back([&] {
        try {
            (void)queue.complete();
        } catch (const std::logic_error&) {
            ++complete_rejected;
        }
        return true;
    });
    queue.add(std::move(checks));
    EXPECT_TRUE(queue.complete()); // rejections were caught inside the checks
    EXPECT_EQ(add_rejected.load(), 1);
    EXPECT_EQ(complete_rejected.load(), 1);
}

TEST(CheckQueue, TeardownMidBatchIsSafe) {
    // Destroy the queue while a batch is in flight and never call complete():
    // the destructor must drain or skip the remaining checks without touching
    // freed memory (the checks capture a counter that outlives the queue).
    std::atomic<int> ran{0};
    {
        ThreadPool pool(3);
        CheckQueue<FnCheck> queue(pool, /*grain=*/2);
        std::vector<FnCheck> checks;
        for (int i = 0; i < 64; ++i)
            checks.push_back([&ran] {
                ++ran;
                return true;
            });
        queue.add(std::move(checks));
        // No complete(): ~CheckQueue then ~ThreadPool run while helpers may
        // still be mid-chunk.
    }
    EXPECT_LE(ran.load(), 64);
}

// --- SigCache under concurrency ------------------------------------------------------

TEST(SigCacheParallel, ConcurrentHammerStaysConsistent) {
    crypto::SigCache cache(256);
    const int kThreads = 4;
    const int kOps = 4000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&cache, t] {
            for (int i = 0; i < kOps; ++i) {
                const Hash256 key =
                    crypto::sha256(to_bytes("hammer-" + std::to_string(t) + "-" +
                                            std::to_string(i % 300)));
                if (const auto hit = cache.lookup(key)) {
                    // Outcomes are keyed deterministically: a hit must agree.
                    EXPECT_EQ(*hit, (i % 300) % 2 == 0);
                } else {
                    cache.insert(key, (i % 300) % 2 == 0);
                }
            }
        });
    for (auto& th : threads) th.join();

    EXPECT_LE(cache.size(), cache.capacity());
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses,
              static_cast<std::uint64_t>(kThreads) * kOps);
    EXPECT_GT(stats.insertions, 0u);
}

// --- Serial/parallel validation equivalence ------------------------------------------

ledger::Block signed_block(std::size_t tx_count) {
    static const std::vector<crypto::PrivateKey> signers = [] {
        std::vector<crypto::PrivateKey> keys;
        for (int i = 0; i < 4; ++i)
            keys.push_back(
                crypto::PrivateKey::from_seed("par/signer/" + std::to_string(i)));
        return keys;
    }();
    ledger::Block block;
    block.txs.push_back(ledger::make_coinbase(crypto::Address{}, 50, 1));
    for (std::size_t i = 0; i < tx_count; ++i) {
        ledger::Transaction tx;
        tx.kind = ledger::TxKind::kRecord;
        tx.nonce = i;
        tx.data = Bytes(32, static_cast<std::uint8_t>(i));
        tx.sign_with(signers[i % signers.size()]);
        block.txs.push_back(std::move(tx));
    }
    block.header.height = 1;
    block.header.merkle_root = block.compute_merkle_root();
    return block;
}

TEST(ParallelValidation, BlockVerdictMatchesSerial) {
    const ledger::Block good = signed_block(24);
    ledger::Block bad = signed_block(24);
    bad.txs[7].account_signature[10] ^= 0x01;
    bad.txs[7].invalidate_txid_cache();
    bad.header.merkle_root = bad.compute_merkle_root();

    const ledger::ValidationRules rules; // kFull
    for (const std::size_t workers : {std::size_t{0}, std::size_t{3}}) {
        GlobalWorkers guard(workers);
        crypto::SigCache::global().clear();
        EXPECT_NO_THROW(ledger::check_block_structure(good, rules))
            << "workers " << workers;
        crypto::SigCache::global().clear();
        EXPECT_THROW(ledger::check_block_structure(bad, rules), ValidationError)
            << "workers " << workers;
    }
}

TEST(ParallelValidation, MultiInputTransactionMatchesSerial) {
    const auto key = crypto::PrivateKey::from_seed("par/multi-input");
    ledger::Transaction tx;
    tx.kind = ledger::TxKind::kTransfer;
    for (std::uint32_t i = 0; i < 8; ++i) {
        ledger::TxInput in;
        in.prevout.txid = crypto::sha256(to_bytes("prev-" + std::to_string(i)));
        in.prevout.index = i;
        tx.inputs.push_back(std::move(in));
    }
    tx.outputs.push_back(ledger::TxOutput{100, key.address()});
    tx.sign_with(key);

    ledger::Transaction tampered = tx;
    tampered.inputs[5].signature[0] ^= 0x01;
    tampered.invalidate_txid_cache();

    for (const std::size_t workers : {std::size_t{0}, std::size_t{3}}) {
        GlobalWorkers guard(workers);
        crypto::SigCache::global().clear();
        EXPECT_TRUE(tx.verify_signatures()) << "workers " << workers;
        crypto::SigCache::global().clear();
        EXPECT_FALSE(tampered.verify_signatures()) << "workers " << workers;
    }
}

TEST(ParallelValidation, VerifyBatchSignatures) {
    GlobalWorkers guard(3);
    const ledger::Block block = signed_block(12);

    crypto::SigCache::global().clear();
    EXPECT_TRUE(ledger::verify_batch_signatures(block.txs));
    EXPECT_TRUE(ledger::verify_batch_signatures({})); // vacuous

    std::vector<ledger::Transaction> one_bad = block.txs;
    one_bad[3].account_signature[0] ^= 0x01;
    one_bad[3].invalidate_txid_cache();
    crypto::SigCache::global().clear();
    EXPECT_FALSE(ledger::verify_batch_signatures(one_bad));

    // A structurally unsigned transaction fails without throwing.
    ledger::Transaction unsigned_tx;
    unsigned_tx.kind = ledger::TxKind::kRecord;
    EXPECT_FALSE(ledger::verify_batch_signatures({unsigned_tx}));
}

// --- Ordering with signature verification --------------------------------------------

TEST(OrderingVerify, RejectsBadBatchesAndKeepsSequencing) {
    GlobalWorkers guard(3);
    crypto::SigCache::global().clear();
    const auto key = crypto::PrivateKey::from_seed("ordering/signer");

    const auto signed_record = [&key](std::uint64_t i) {
        ledger::Transaction tx;
        tx.kind = ledger::TxKind::kRecord;
        tx.nonce = i;
        tx.data = to_bytes("payload-" + std::to_string(i));
        tx.sign_with(key);
        return tx;
    };

    consensus::OrderingParams params;
    params.peer_count = 3;
    params.batch_size = 4;
    params.verify_signatures = true;
    consensus::OrderingService svc(params, 11);

    // Two good batches, one batch with a tampered signature, one more good.
    for (std::uint64_t i = 0; i < 8; ++i) svc.submit(signed_record(i));
    for (std::uint64_t i = 8; i < 12; ++i) {
        auto tx = signed_record(i);
        if (i == 9) {
            tx.account_signature[4] ^= 0x01;
            tx.invalidate_txid_cache();
        }
        svc.submit(tx);
    }
    for (std::uint64_t i = 12; i < 16; ++i) svc.submit(signed_record(i));
    svc.run_for(10.0);

    EXPECT_EQ(svc.rejected_batches(), 1u);
    EXPECT_TRUE(svc.ledgers_identical());
    const auto& ledger = svc.ledger_of(0);
    ASSERT_EQ(ledger.size(), 3u); // sequences 1, 2, 4 — 3 was discarded
    EXPECT_EQ(ledger[0].sequence, 1u);
    EXPECT_EQ(ledger[1].sequence, 2u);
    EXPECT_EQ(ledger[2].sequence, 4u);
}

// --- Virtual-time determinism across worker counts -----------------------------------

struct SimFingerprint {
    Hash256 tip;
    std::uint64_t height = 0;
    std::uint64_t mined = 0;
    std::uint64_t reorgs = 0;
    std::uint64_t events = 0;

    friend bool operator==(const SimFingerprint&, const SimFingerprint&) = default;
};

SimFingerprint run_nakamoto(std::size_t workers) {
    GlobalWorkers guard(workers);
    consensus::NakamotoParams params;
    params.node_count = 6;
    params.block_interval = 15.0;
    params.validation.sig_mode = ledger::SigCheckMode::kFull;
    consensus::NakamotoNetwork net(params, 2026);
    net.start();

    // Signed transactions so full ECDSA validation (the code path that fans
    // out to the pool) runs inside the simulation.
    const auto key = crypto::PrivateKey::from_seed("determinism/signer");
    for (std::uint64_t i = 0; i < 30; ++i) {
        net.run_for(15.0);
        ledger::Transaction tx;
        tx.kind = ledger::TxKind::kRecord;
        tx.nonce = i;
        tx.data = Bytes(40, static_cast<std::uint8_t>(i));
        tx.declared_fee = 10;
        tx.sign_with(key);
        net.submit_transaction(tx, static_cast<net::NodeId>(i % params.node_count));
    }
    net.run_for(120.0);
    return SimFingerprint{net.tip_of(0), net.height_of(0), net.stats().blocks_mined,
                          net.stats().reorgs, net.scheduler().events_processed()};
}

TEST(Determinism, NakamotoRunIsIdenticalAtAnyWorkerCount) {
    // The discrete-event scheduler is single-threaded by design; only
    // host-side crypto fans out. Every simulation observable — tip hash,
    // height, mining/reorg counters, even the number of scheduler events —
    // must match bit-for-bit between a serial and a parallel run.
    const SimFingerprint serial = run_nakamoto(0);
    const SimFingerprint parallel = run_nakamoto(3);
    EXPECT_EQ(serial, parallel);
    EXPECT_GT(serial.height, 0u);
}

// --- Parallel data-structure hashing matches serial ----------------------------------

TEST(ParallelHashing, MerkleRootMatchesSerial) {
    // 2048 leaves crosses the kParallelPairs threshold in merkle.cpp.
    std::vector<Hash256> leaves(2048);
    for (std::size_t i = 0; i < leaves.size(); ++i)
        leaves[i] = crypto::sha256(to_bytes("leaf-" + std::to_string(i)));

    Hash256 serial_root;
    {
        GlobalWorkers guard(0);
        serial_root = datastruct::merkle_root(leaves);
    }
    {
        GlobalWorkers guard(7);
        EXPECT_EQ(datastruct::merkle_root(leaves), serial_root);
    }
}

TEST(ParallelHashing, MptRootMatchesSerial) {
    const auto build = [] {
        datastruct::MerklePatriciaTrie trie;
        for (int i = 0; i < 400; ++i)
            trie.put(to_bytes("account/" + std::to_string(i)),
                     to_bytes("balance-" + std::to_string(i * 7)));
        return trie;
    };
    datastruct::MerklePatriciaTrie serial = build();
    datastruct::MerklePatriciaTrie parallel = build();

    Hash256 serial_root;
    {
        GlobalWorkers guard(0);
        serial_root = serial.root_hash();
    }
    {
        GlobalWorkers guard(7);
        EXPECT_EQ(parallel.root_hash(), serial_root);
    }
}

TEST(ParallelHashing, IavlRootMatchesSerial) {
    const auto build = [] {
        datastruct::IavlTree tree;
        for (int i = 0; i < 400; ++i)
            tree.set(to_bytes("key/" + std::to_string(i)),
                     to_bytes("value-" + std::to_string(i * 13)));
        return tree;
    };
    datastruct::IavlTree serial = build();
    datastruct::IavlTree parallel = build();

    Hash256 serial_root;
    {
        GlobalWorkers guard(0);
        serial_root = serial.root_hash();
    }
    {
        GlobalWorkers guard(7);
        EXPECT_EQ(parallel.root_hash(), serial_root);
    }
}

} // namespace
