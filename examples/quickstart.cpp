// Quickstart: spin up a simulated Nakamoto (PoW + gossip) network, mine a few
// blocks, send a signed payment, and watch it confirm. Start here.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "consensus/nakamoto.hpp"
#include "crypto/keys.hpp"

using namespace dlt;
using namespace dlt::consensus;
using namespace dlt::ledger;

int main() {
    std::printf("dcschain quickstart\n===================\n\n");

    // 1. Configure a small public proof-of-work network: 8 peers, one block a
    //    minute expected, gossip over a random overlay. Everything runs on a
    //    simulated clock, so "minutes" pass in milliseconds.
    NakamotoParams params;
    params.node_count = 8;
    params.block_interval = 60.0;
    params.validation.sig_mode = SigCheckMode::kFull; // verify real ECDSA
    NakamotoNetwork net(params, /*seed=*/2024);

    std::printf("Starting %zu mining peers (block interval %.0f s)...\n",
                net.node_count(), params.block_interval);
    net.start();

    // 2. Let the chain grow so the first miner has spendable coins.
    net.run_for(60.0 * 12);
    std::printf("After 12 simulated minutes: height %llu, %llu blocks mined, "
                "converged: %s\n",
                static_cast<unsigned long long>(net.height_of(0)),
                static_cast<unsigned long long>(net.stats().blocks_mined),
                net.converged() ? "yes" : "not yet");

    // 3. Build a real signed payment from miner 0's coinbase reward to Alice.
    const auto miner_key = crypto::PrivateKey::from_seed("nakamoto/miner/0");
    const auto alice = crypto::PrivateKey::from_seed("alice");

    const auto coins = net.utxo_of(0).coins_of(net.miner_address(0));
    if (coins.empty()) {
        std::printf("Miner 0 has no confirmed coins yet; rerun with more time.\n");
        return 1;
    }
    const Amount amount = coins[0].second.value - 1000; // leave 1000 units as fee
    Transaction payment =
        make_transfer({coins[0].first}, {TxOutput{amount, alice.address()}});
    payment.declared_fee = 1000;
    payment.sign_with(miner_key);
    const Hash256 txid = payment.txid();

    std::printf("\nSubmitting payment %s...\n  %lld units -> alice, fee 1000\n",
                txid.hex().substr(0, 16).c_str(), static_cast<long long>(amount));
    net.submit_transaction(payment, 0);

    // 4. Wait for confirmations.
    net.run_for(60.0 * 8);
    if (const auto confs = net.confirmations_of(txid)) {
        std::printf("Confirmed with %llu confirmations.\n",
                    static_cast<unsigned long long>(*confs));
    } else {
        std::printf("Still in the mempool; mine longer for confirmation.\n");
    }
    std::printf("Alice's balance at peer 0: %lld units\n",
                static_cast<long long>(net.utxo_of(0).balance_of(alice.address())));

    // 5. Inspect the ledger the way Fig. 1 draws it.
    std::printf("\nFinal chain (last 5 blocks at peer 0):\n");
    const auto chain = net.canonical_chain();
    const std::size_t start = chain.size() > 5 ? chain.size() - 5 : 0;
    for (std::size_t i = start; i < chain.size(); ++i) {
        const auto& b = chain[i];
        std::printf("  height %4llu  %s  txs=%zu\n",
                    static_cast<unsigned long long>(b.header.height),
                    b.hash().hex().substr(0, 16).c_str(), b.txs.size());
    }
    std::printf("\nStale blocks seen: %zu (branches that lost the race)\n",
                net.stale_blocks());
    return 0;
}
