// Cross-chain exchange (paper §5.2: blockchain middleware for "cross-platform
// cryptocurrency exchanges", citing Herlihy's atomic cross-chain swaps).
// Alice holds coins on chain A, Bob on chain B; they discover each other via
// the identity registry and swap atomically with hashed-timelock contracts —
// no exchange operator, no counterparty risk. Also shows the refund path when
// a counterparty walks away.
#include <cstdio>

#include "app/identity.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "scaling/atomicswap.hpp"

using namespace dlt;
using namespace dlt::scaling;

int main() {
    std::printf("Atomic cross-chain exchange\n===========================\n\n");

    // Two independent ledgers with their own clocks.
    HtlcChain gold("gold-chain");
    HtlcChain silver("silver-chain");

    // Identity middleware: traders publish their keys under readable names.
    app::IdentityRegistry registry;
    const auto alice_key = crypto::PrivateKey::from_seed("xchg/alice");
    const auto bob_key = crypto::PrivateKey::from_seed("xchg/bob");
    registry.register_name("alice", alice_key);
    registry.register_name("bob", bob_key);
    const auto alice = *registry.resolve("alice");
    const auto bob = *registry.resolve("bob");
    std::printf("identities registered: alice -> %s..., bob -> %s...\n",
                alice.hex().substr(0, 12).c_str(), bob.hex().substr(0, 12).c_str());

    gold.credit(alice, 100);   // alice owns 100 gold
    silver.credit(bob, 2500);  // bob owns 2500 silver

    // --- Happy path: 100 gold <-> 2500 silver --------------------------------------
    std::printf("\n[1] swap 100 gold for 2500 silver\n");
    const Bytes secret = to_bytes("alice-knows-this");
    const auto outcome = execute_swap(gold, silver, alice, bob, 100, 2500, secret,
                                      /*base_timeout=*/600.0);
    std::printf("  swap %s\n", outcome.completed ? "completed" : "FAILED");
    std::printf("  gold:   alice=%lld bob=%lld\n",
                static_cast<long long>(gold.balance_of(alice)),
                static_cast<long long>(gold.balance_of(bob)));
    std::printf("  silver: alice=%lld bob=%lld\n",
                static_cast<long long>(silver.balance_of(alice)),
                static_cast<long long>(silver.balance_of(bob)));
    std::printf("  secret revealed on silver-chain: %s\n",
                silver.revealed_preimage(outcome.htlc_b) ? "yes (public)" : "no");

    // --- Abort path: Bob locks, Alice disappears ------------------------------------
    std::printf("\n[2] aborted swap: alice never claims\n");
    gold.credit(alice, 50);
    silver.credit(bob, 1000); // bob re-funds his side for the second trade
    const Bytes secret2 = to_bytes("never-used");
    const auto hashlock = swap_hashlock(secret2);
    const auto a_id = gold.lock(alice, bob, 50, hashlock, gold.now() + 1200.0);
    const auto b_id = silver.lock(bob, alice, 1000, hashlock, silver.now() + 600.0);
    std::printf("  both sides locked; alice walks away...\n");

    silver.advance_time(601.0);
    silver.refund(b_id);
    gold.advance_time(1201.0);
    gold.refund(a_id);
    std::printf("  after timelocks: bob recovered %lld silver, alice recovered "
                "%lld gold — atomicity holds in both directions\n",
                static_cast<long long>(silver.balance_of(bob)),
                static_cast<long long>(gold.balance_of(alice)));

    // --- Why the timeout asymmetry matters -------------------------------------------
    std::printf("\n[3] why alice's timelock is 2x bob's: after alice claims on\n"
                "    silver (revealing the secret), bob still has a full window\n"
                "    to claim on gold before alice could refund out from under\n"
                "    him. Equal timelocks would let the secret holder race the\n"
                "    clock.\n");
    return 0;
}
