// dlt-node: run one PersistentNode-backed consensus replica as an OS process,
// speaking framed TCP to its peers — the deployment mode of experiment E29.
//
//   dlt-node --id 1 --data /tmp/n1 --listen 127.0.0.1:9001 \
//            --peer 0=127.0.0.1:9000 --peer 2=127.0.0.1:9002 \
//            --rpc-port 8001 --engine nakamoto --nodes 3 --interval 1.0
//
// On startup it prints one machine-readable line:
//   READY id=<id> listen=<port> rpc=<port> height=<recovered height>
// then serves until SIGTERM/SIGINT (or a shutdown RPC), shuts down cleanly
// (WAL already durable; sockets closed; threads joined), and exits 0.
// Worker threads for parallel validation come from DLT_THREADS, exactly like
// every other binary in this repo.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/node_daemon.hpp"

namespace {

dlt::core::NodeDaemon* g_daemon = nullptr;

void on_signal(int) {
    if (g_daemon != nullptr) g_daemon->request_stop();
}

[[noreturn]] void usage(const std::string& problem) {
    std::cerr << "dlt-node: " << problem << "\n"
              << "usage: dlt-node --id N --data DIR [--listen HOST:PORT]\n"
              << "  [--peer ID=HOST:PORT]... [--rpc-port P] [--engine nakamoto|pbft]\n"
              << "  [--nodes N] [--interval SECONDS] [--seed N] [--state mem|lsm]\n"
              << "  [--chain-tag TAG] [--sync-interval SECONDS]\n";
    std::exit(2);
}

std::pair<std::string, std::uint16_t> split_host_port(const std::string& s) {
    const auto colon = s.rfind(':');
    if (colon == std::string::npos) usage("expected HOST:PORT, got " + s);
    return {s.substr(0, colon),
            static_cast<std::uint16_t>(std::stoul(s.substr(colon + 1)))};
}

} // namespace

int main(int argc, char** argv) {
    dlt::core::NodeDaemonConfig config;
    config.replica.state_engine = dlt::core::StateEngine::kPersistent;
    bool have_id = false, have_data = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--id") {
            config.transport.local_id =
                static_cast<std::uint32_t>(std::stoul(next()));
            have_id = true;
        } else if (arg == "--data") {
            config.replica.data_dir = next();
            have_data = true;
        } else if (arg == "--listen") {
            const auto [host, port] = split_host_port(next());
            config.transport.listen_host = host;
            config.transport.listen_port = port;
        } else if (arg == "--peer") {
            const std::string spec = next();
            const auto eq = spec.find('=');
            if (eq == std::string::npos) usage("expected ID=HOST:PORT, got " + spec);
            dlt::net::transport::TcpPeer peer;
            peer.id = static_cast<std::uint32_t>(std::stoul(spec.substr(0, eq)));
            const auto [host, port] = split_host_port(spec.substr(eq + 1));
            peer.host = host;
            peer.port = port;
            config.transport.peers.push_back(std::move(peer));
        } else if (arg == "--rpc-port") {
            config.rpc_port = static_cast<std::uint16_t>(std::stoul(next()));
        } else if (arg == "--engine") {
            const std::string engine = next();
            if (engine == "nakamoto")
                config.replica.engine = dlt::core::ReplicaEngine::kNakamoto;
            else if (engine == "pbft")
                config.replica.engine = dlt::core::ReplicaEngine::kPbft;
            else
                usage("unknown engine " + engine);
        } else if (arg == "--nodes") {
            config.replica.node_count =
                static_cast<std::uint32_t>(std::stoul(next()));
        } else if (arg == "--interval") {
            config.replica.block_interval = std::stod(next());
        } else if (arg == "--seed") {
            config.replica.seed = std::stoull(next());
        } else if (arg == "--state") {
            const std::string state = next();
            if (state == "mem")
                config.replica.state_engine = dlt::core::StateEngine::kInMemory;
            else if (state == "lsm")
                config.replica.state_engine = dlt::core::StateEngine::kPersistent;
            else
                usage("unknown state engine " + state);
        } else if (arg == "--chain-tag") {
            config.replica.chain_tag = next();
        } else if (arg == "--sync-interval") {
            config.replica.sync_interval = std::stod(next());
        } else {
            usage("unknown option " + arg);
        }
    }
    if (!have_id) usage("--id is required");
    if (!have_data) usage("--data is required");
    const std::uint32_t node_id = config.transport.local_id;

    try {
        dlt::core::NodeDaemon daemon(std::move(config));
        g_daemon = &daemon;
        struct sigaction sa{};
        sa.sa_handler = on_signal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);

        daemon.start();
        std::cout << "READY id=" << node_id
                  << " listen=" << daemon.listen_port()
                  << " rpc=" << daemon.rpc_port()
                  << " height=" << daemon.replica().height() << "\n"
                  << std::flush;
        daemon.wait();
        g_daemon = nullptr;
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "dlt-node: fatal: " << e.what() << "\n";
        return 1;
    }
}
