// Off-chain scaling (paper §5.2/§5.4, the Lightning network): open channels
// once on-chain, stream hundreds of signed micro-payments instantly, route
// through intermediaries, settle once. Shows the on-chain/off-chain accounting
// that makes "offloading transactions outside the blockchain" attractive.
#include <cstdio>

#include "common/rng.hpp"
#include "scaling/channels.hpp"

using namespace dlt;
using namespace dlt::scaling;

int main() {
    std::printf("Off-chain payment channels (Lightning-style)\n"
                "============================================\n\n");

    ChannelNetwork net;
    const auto alice = net.add_node("alice");
    const auto hub = net.add_node("hub");
    const auto bob = net.add_node("bob");
    const auto carol = net.add_node("carol");

    // Topology: alice -- hub -- bob, hub -- carol.
    net.open_channel(alice, hub, 100'000, 100'000);
    net.open_channel(hub, bob, 100'000, 100'000);
    net.open_channel(hub, carol, 100'000, 100'000);
    std::printf("Opened %zu channels (%llu on-chain funding txs)\n",
                net.channel_count(),
                static_cast<unsigned long long>(net.onchain_tx_count()));

    // Direct and routed payments.
    std::printf("\nalice pays bob 500 via the hub: ");
    if (const auto hops = net.route_payment(alice, bob, 500))
        std::printf("routed over %zu hops, instantly final\n", *hops);

    std::printf("alice pays carol 250 via the hub: ");
    if (const auto hops = net.route_payment(alice, carol, 250))
        std::printf("routed over %zu hops\n", *hops);

    // A streaming micropayment session: alice pays bob 1 unit 300 times.
    Rng rng(55);
    int streamed = 0;
    for (int i = 0; i < 300; ++i)
        if (net.route_payment(alice, bob, 1)) ++streamed;
    std::printf("streamed %d micropayments alice->bob (all signed, all "
                "instant)\n",
                streamed);

    // Liquidity exhaustion is a real routing constraint.
    std::printf("\nTrying to route 200000 (more than any channel's liquidity): ");
    std::printf("%s\n", net.route_payment(alice, bob, 200'000) ? "routed?!"
                                                               : "no route — "
                                                                 "capacity bound");

    // Settle everything.
    const std::size_t settlements = net.settle_all();
    std::printf("\nSettled %zu channels on-chain.\n", settlements);
    std::printf("  total on-chain transactions : %llu (opens + closes)\n",
                static_cast<unsigned long long>(net.onchain_tx_count()));
    std::printf("  total off-chain payments    : %llu\n",
                static_cast<unsigned long long>(net.offchain_payment_count()));
    std::printf("  off-chain per on-chain      : %.1f\n",
                static_cast<double>(net.offchain_payment_count()) /
                    static_cast<double>(net.onchain_tx_count()));

    std::printf("\nFinal settled balances:\n");
    const char* names[] = {"alice", "hub", "bob", "carol"};
    for (std::size_t i = 0; i < 4; ++i)
        std::printf("  %-6s %lld\n", names[i],
                    static_cast<long long>(net.settled_balance(i)));
    return 0;
}
