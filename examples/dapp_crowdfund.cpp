// Blockchain 2.0 — decentralized applications (paper §3.2). Deploys the paper's
// §2.5 HelloWorld contract (gas for setGreeting, free say()) and then a full
// crowdfunding DApp with donations, goal tracking, claim, and refunds — all in
// MiniSol compiled to the gas-metered VM.
#include <cstdio>

#include "contract/engine.hpp"
#include "contract/stdlib.hpp"
#include "crypto/keys.hpp"

using namespace dlt;
using namespace dlt::contract;
using ledger::kCoin;

namespace {

void show_receipt(const char* label, const Receipt& r) {
    std::printf("  %-28s status=%-9s gas=%-7llu fee=%lld\n", label,
                vm_status_name(r.status), static_cast<unsigned long long>(r.gas_used),
                static_cast<long long>(r.fee_paid));
}

} // namespace

int main() {
    std::printf("Blockchain 2.0: smart-contract DApps\n"
                "====================================\n\n");

    WorldState world;
    ContractEngine engine(world);
    engine.set_time(100);

    const Address owner = crypto::PrivateKey::from_seed("dapp/owner").address();
    const Address donor1 = crypto::PrivateKey::from_seed("dapp/donor1").address();
    const Address donor2 = crypto::PrivateKey::from_seed("dapp/donor2").address();
    const Address miner = crypto::PrivateKey::from_seed("dapp/miner").address();
    for (const auto& who : {owner, donor1, donor2}) world.credit(who, 100 * kCoin);

    // --- The paper's HelloWorld (§2.5) -------------------------------------------
    std::printf("HelloWorld (the paper's Solidity example in MiniSol):\n");
    const auto hello = compile(stdlib::hello_world_source());
    const auto d_hello = engine.deploy(hello, owner, {Word(0xC0FFEE)}, 0, 1'000'000,
                                       1, miner);
    show_receipt("deploy + init(greeting)", d_hello);

    const auto set = engine.call(d_hello.contract, "setGreeting", {Word(0xBEEF)},
                                 donor1, 0, 100'000, 1, miner);
    show_receipt("setGreeting (costs gas)", set);

    const auto say = engine.view(d_hello.contract, "say", {}, donor2);
    std::printf("  %-28s status=%-9s gas=0       fee=0   -> greeting=0x%llx\n",
                "say (constant, free)", vm_status_name(say.status),
                static_cast<unsigned long long>(say.return_value->low64()));

    // --- Crowdfund DApp -------------------------------------------------------------
    std::printf("\nCrowdfund campaign: goal 10 coins, deadline t=1000\n");
    const auto crowdfund = compile(stdlib::crowdfund_source());
    const auto campaign = engine.deploy(
        crowdfund, owner, {Word(10 * kCoin), Word(1000)}, 0, 2'000'000, 1, miner);
    show_receipt("deploy Crowdfund", campaign);
    const Address fund = campaign.contract;

    show_receipt("donor1 donates 6 coins",
                 engine.call(fund, "donate", {}, donor1, 6 * kCoin, 100'000, 1, miner));
    show_receipt("donor2 donates 3 coins",
                 engine.call(fund, "donate", {}, donor2, 3 * kCoin, 100'000, 1, miner));

    auto raised = engine.view(fund, "totalRaised", {}, owner);
    std::printf("  raised so far: %.1f coins\n",
                static_cast<double>(raised.return_value->low64()) / kCoin);

    // Premature claim fails (goal not reached).
    show_receipt("owner claims early (reverts)",
                 engine.call(fund, "claim", {}, owner, 0, 100'000, 1, miner));

    show_receipt("donor1 tops up 2 coins",
                 engine.call(fund, "donate", {}, donor1, 2 * kCoin, 100'000, 1, miner));
    raised = engine.view(fund, "totalRaised", {}, owner);
    std::printf("  raised now: %.1f coins (goal met)\n",
                static_cast<double>(raised.return_value->low64()) / kCoin);

    const ledger::Amount owner_before = world.balance_of(owner);
    show_receipt("owner claims (succeeds)",
                 engine.call(fund, "claim", {}, owner, 0, 100'000, 1, miner));
    std::printf("  owner gained %.1f coins\n",
                static_cast<double>(world.balance_of(owner) - owner_before) / kCoin);

    // Events emitted along the way.
    std::printf("\nEvent log (%zu events):\n", world.event_log().size());
    for (const auto& logged : world.event_log()) {
        const char* name = logged.event.topic == event_topic("Donated")   ? "Donated"
                           : logged.event.topic == event_topic("Claimed") ? "Claimed"
                                                                          : "other";
        std::printf("  %-8s value=%.1f coins\n", name,
                    static_cast<double>(logged.event.value.low64()) / kCoin);
    }

    // --- Refund path on a second, failing campaign --------------------------------
    std::printf("\nSecond campaign misses its goal; donors refund after the "
                "deadline:\n");
    const auto failing = engine.deploy(crowdfund, owner,
                                       {Word(50 * kCoin), Word(2000)}, 0, 2'000'000,
                                       1, miner);
    engine.call(failing.contract, "donate", {}, donor2, 4 * kCoin, 100'000, 1, miner);
    engine.set_time(3000); // past the deadline
    const ledger::Amount donor2_before = world.balance_of(donor2);
    show_receipt("donor2 refunds",
                 engine.call(failing.contract, "refund", {}, donor2, 0, 100'000, 1,
                             miner));
    std::printf("  donor2 recovered %.1f coins (minus gas)\n",
                static_cast<double>(world.balance_of(donor2) - donor2_before) / kCoin);

    std::printf("\nMiner earned %lld in gas fees across the session.\n",
                static_cast<long long>(world.balance_of(miner)));
    return 0;
}
