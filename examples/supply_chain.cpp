// Blockchain 3.0 — pervasive consortium application (paper §3.3), touching all
// six layers of the Fig. 3 stack:
//   Application: the §5.1 use-case template + feasibility recommendation
//   Modeling:    a BPMN-lite shipping workflow
//   Contract:    the workflow compiled to MiniSol and deployed
//   System:      the recommended ordering-service consensus, measured
//   Data:        confidential pricing in a multi-channel privacy domain
//   Network:     the simulated consortium network underneath the orderer
#include <cstdio>

#include "app/usecase.hpp"
#include "consensus/ordering.hpp"
#include "contract/engine.hpp"
#include "core/dcs.hpp"
#include "core/experiment.hpp"
#include "crypto/keys.hpp"
#include "model/workflow.hpp"
#include "privacy/multichannel.hpp"

using namespace dlt;

int main() {
    std::printf("Blockchain 3.0: supply-chain consortium\n"
                "=======================================\n\n");

    // --- Application layer: requirements -> recommendation ------------------------
    const app::UseCase uc = app::supply_chain_usecase();
    std::printf("[application] use case '%s' (%s)\n  intent: %s\n", uc.name.c_str(),
                app::generation_name(uc.generation), uc.intent.c_str());
    const app::Recommendation rec = app::recommend(uc);
    std::printf("  recommended: %s, %s\n",
                core::consensus_kind_name(rec.spec.consensus),
                rec.spec.openness == core::Openness::kPublic ? "public"
                                                             : "permissioned");
    for (const auto& reason : rec.rationale) std::printf("    - %s\n", reason.c_str());

    // --- System + network layers: measure the recommended spec ---------------------
    core::Workload load;
    load.tx_rate = uc.performance.expected_tps;
    load.duration = 60.0;
    auto spec = rec.spec;
    const auto metrics = core::run_experiment(spec, load, 33);
    const auto dcs = core::score_dcs(spec, metrics);
    std::printf("\n[system] measured on the simulated consortium network: "
                "%.0f tps (required %.0f), latency %.3f s\n  DCS: %s\n",
                metrics.throughput_tps, uc.performance.expected_tps,
                metrics.mean_confirmation_latency.value_or(-1),
                core::describe(dcs).c_str());

    // --- Modeling layer: the shipping workflow ------------------------------------
    model::WorkflowModel wf("Shipping", 4, 2);
    wf.label_state(0, "Produced");
    wf.label_state(1, "Validated");
    wf.label_state(2, "Shipped");
    wf.label_state(3, "Received");
    wf.add_transition({"validate", 0, 1, 0});          // supplier validates
    wf.add_transition({"rejectToProduction", 1, 0, 0}); // XOR gateway: reject
    wf.add_transition({"ship", 1, 2, 0});
    wf.add_transition({"confirmReceipt", 2, 3, 1});    // customer confirms
    std::printf("\n[modeling] workflow '%s': %zu states, %zu transitions, "
                "valid: %s\n",
                wf.name().c_str(), wf.state_count(), wf.transitions().size(),
                wf.validate().empty() ? "yes" : "no");

    // --- Contract layer: compile and enforce on-chain ------------------------------
    const std::string source = wf.to_minisol();
    const auto compiled = contract::compile(source);
    std::printf("\n[contract] generated MiniSol contract: %zu bytes of bytecode, "
                "%zu functions\n",
                compiled.bytecode.size(), compiled.functions.size());

    contract::WorldState world;
    contract::ContractEngine engine(world);
    const auto supplier = crypto::PrivateKey::from_seed("sc/supplier").address();
    const auto customer = crypto::PrivateKey::from_seed("sc/customer").address();
    const auto orderer = crypto::PrivateKey::from_seed("sc/orderer").address();
    world.credit(supplier, 10 * ledger::kCoin);
    world.credit(customer, 10 * ledger::kCoin);

    const auto deployed = engine.deploy(
        compiled, supplier,
        {contract::address_to_word(supplier), contract::address_to_word(customer)},
        0, 2'000'000, 1, orderer);
    const auto process = deployed.contract;

    auto step = [&](const char* task, const crypto::Address& who) {
        const auto r = engine.call(process, task, {}, who, 0, 100'000, 1, orderer);
        const auto state = engine.view(process, "currentState", {}, supplier);
        std::printf("  %-18s by %-8s -> %-9s state=%llu (%s)\n", task,
                    who == supplier ? "supplier" : "customer",
                    contract::vm_status_name(r.status),
                    static_cast<unsigned long long>(state.return_value->low64()),
                    wf.state_label(static_cast<std::size_t>(
                                       state.return_value->low64()))
                        .c_str());
    };
    step("ship", supplier);            // out of order: reverts
    step("validate", customer);        // wrong role: reverts
    step("validate", supplier);
    step("ship", supplier);
    step("confirmReceipt", customer);
    const auto complete = engine.view(process, "isComplete", {}, supplier);
    std::printf("  process complete: %s\n",
                complete.return_value->is_zero() ? "no" : "yes");

    // --- Data layer: confidential terms in a privacy domain ------------------------
    privacy::MultiChannelLedger channels(34);
    channels.create_channel("pricing", {supplier, customer});
    const auto anchor =
        channels.submit("pricing", supplier, to_bytes("unit price: 120; rebate 3%"));
    std::printf("\n[data] confidential pricing recorded in channel 'pricing' "
                "(seq %llu); public anchor commitment: %s...\n",
                static_cast<unsigned long long>(anchor.sequence),
                anchor.commitment.digest.hex().substr(0, 16).c_str());
    try {
        channels.read("pricing", orderer);
        std::printf("  ERROR: orderer read confidential channel!\n");
    } catch (const ValidationError&) {
        std::printf("  non-member (orderer) denied access to channel data — "
                    "isolation holds.\n");
    }
    const auto& opening = channels.opening_for("pricing", 1, supplier);
    std::printf("  auditor verification via opened commitment: %s\n",
                privacy::verify_opening(anchor.commitment, opening) ? "verified"
                                                                    : "FAILED");

    std::printf("\nAll six layers exercised: application, modeling, contract, "
                "system, data, network.\n");
    return 0;
}
