// Blockchain 1.0 — cryptocurrency (paper §3.1). A fuller wallet scenario:
// multiple users exchanging signed UTXO payments, an SPV light client verifying
// a payment with only headers + a Merkle proof (Fig. 2), and the confirmation-
// depth security table a merchant would consult (§2.4).
#include <cstdio>

#include "consensus/attack.hpp"
#include "consensus/nakamoto.hpp"
#include "crypto/keys.hpp"
#include "datastruct/merkle.hpp"

using namespace dlt;
using namespace dlt::consensus;
using namespace dlt::ledger;

int main() {
    std::printf("Blockchain 1.0: cryptocurrency wallets and SPV\n"
                "==============================================\n\n");

    NakamotoParams params;
    params.node_count = 8;
    params.block_interval = 60.0;
    params.validation.sig_mode = SigCheckMode::kFull;
    NakamotoNetwork net(params, 31);
    net.start();
    net.run_for(60.0 * 15);

    const auto miner_key = crypto::PrivateKey::from_seed("nakamoto/miner/0");
    const auto alice = crypto::PrivateKey::from_seed("wallet/alice");
    const auto bob = crypto::PrivateKey::from_seed("wallet/bob");

    // --- Payment chain: miner -> alice -> bob ------------------------------------
    const auto miner_coins = net.utxo_of(0).coins_of(net.miner_address(0));
    if (miner_coins.empty()) {
        std::printf("no spendable coins; increase warm-up time\n");
        return 1;
    }
    Transaction to_alice = make_transfer(
        {miner_coins[0].first},
        {TxOutput{miner_coins[0].second.value - 1000, alice.address()}});
    to_alice.declared_fee = 1000;
    to_alice.sign_with(miner_key);
    net.submit_transaction(to_alice, 0);
    net.run_for(60.0 * 6);

    const Amount alice_balance = net.utxo_of(0).balance_of(alice.address());
    std::printf("alice received %lld units (%.2f coins)\n",
                static_cast<long long>(alice_balance),
                static_cast<double>(alice_balance) / kCoin);

    Transaction to_bob = make_transfer(
        {OutPoint{to_alice.txid(), 0}},
        {TxOutput{alice_balance / 2, bob.address()},
         TxOutput{alice_balance - alice_balance / 2 - 500, alice.address()}});
    to_bob.declared_fee = 500;
    to_bob.sign_with(alice);
    net.submit_transaction(to_bob, 2);
    net.run_for(60.0 * 6);
    std::printf("alice paid bob; balances now alice=%lld bob=%lld\n",
                static_cast<long long>(net.utxo_of(0).balance_of(alice.address())),
                static_cast<long long>(net.utxo_of(0).balance_of(bob.address())));

    // A forged spend (eve signing alice's coins) is rejected by every peer.
    {
        const auto eve = crypto::PrivateKey::from_seed("wallet/eve");
        Transaction theft = make_transfer({OutPoint{to_bob.txid(), 0}},
                                          {TxOutput{kCoin, eve.address()}});
        theft.sign_with(eve); // wrong key for bob's output
        std::printf("forged signature valid? %s\n",
                    theft.verify_signatures() ? "yes" : "yes (but wrong key)");
        // The signature itself verifies against eve's pubkey, but validation
        // requires the pubkey to hash to the spent output's address:
        const auto spent = net.utxo_of(0).lookup(OutPoint{to_bob.txid(), 0});
        const bool address_matches =
            spent && crypto::PublicKey::decode(theft.inputs[0].pubkey).address() ==
                         spent->recipient;
        std::printf("pubkey matches spent output's address? %s -> theft %s\n",
                    address_matches ? "yes" : "no",
                    address_matches ? "POSSIBLE (bug!)" : "rejected");
    }

    // --- SPV verification (Fig. 2) -------------------------------------------------
    std::printf("\nSPV light client check of the alice->bob payment:\n");
    const auto chain = net.canonical_chain();
    const Hash256 want = to_bob.txid();
    bool proven = false;
    for (const auto& block : chain) {
        const auto txids = block.txids();
        for (std::size_t i = 0; i < txids.size(); ++i) {
            if (txids[i] != want) continue;
            const datastruct::MerkleTree tree(txids);
            const auto proof = tree.prove(i);
            const Hash256 derived = datastruct::merkle_root_from_proof(want, proof);
            std::printf("  block height %llu: proof %zu steps (%zu bytes) vs "
                        "%zu-tx block; root match: %s\n",
                        static_cast<unsigned long long>(block.header.height),
                        proof.steps.size(), proof.size_bytes(), block.txs.size(),
                        derived == block.header.merkle_root ? "yes" : "NO");
            proven = derived == block.header.merkle_root;
        }
    }
    if (!proven) std::printf("  payment not yet confirmed\n");

    // --- Merchant confirmation policy (§2.4) ---------------------------------------
    std::printf("\nHow many confirmations should a merchant wait for?\n");
    std::printf("  attacker-share  z=1       z=3       z=6\n");
    for (const double q : {0.05, 0.15, 0.30}) {
        std::printf("  %.2f            %.6f  %.6f  %.6f\n", q,
                    attacker_success_probability(q, 1),
                    attacker_success_probability(q, 3),
                    attacker_success_probability(q, 6));
    }
    std::printf("\nAt 51%%+: %.1f (certain rewrite) — the immutability boundary.\n",
                attacker_success_probability(0.51, 6));
    return 0;
}
